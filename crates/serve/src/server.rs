//! The serving engine: a deterministic discrete-event simulation of N
//! replicated accelerator instances behind one bounded host queue and one
//! shared PCIe link, with per-instance resident-story caches.
//!
//! # Execution phases
//!
//! A serve separates *numeric* work from *orchestration*:
//!
//! 1. **Story dedup.** Requests are grouped by `(task, story digest)`; each
//!    distinct story is written into memory exactly once
//!    ([`Accelerator::write_story`]), however many questions the trace asks
//!    about it.
//! 2. **Query simulation.** Every request's query pipeline runs against its
//!    resident story ([`Accelerator::answer_query`]) — on the worker pool
//!    in the parallel engine, inline in the serial engine. Results are
//!    accumulated in request order either way.
//! 3. **Event loop.** A sequential merge on integer-picosecond
//!    [`SimTime`] with a submission-order tie-break replays arrivals,
//!    link grants and completions. Each instance models its story cache as
//!    an LRU of digests; whether a dispatch hits is decided here, because
//!    it depends on which instance the scheduler picked.
//!
//! # Determinism
//!
//! Two properties are load-bearing and pinned by the test suite:
//!
//! * **Thread independence.** The numeric phase is index-ordered and
//!   `MANN_THREADS`-invariant, and the event loop is sequential with a
//!   total order on `(time, seq)` — so the whole serve replays
//!   byte-identically for any worker count, and the parallel engine's
//!   [`ServeReport`] equals the serial engine's bit for bit.
//! * **Orchestration purity.** Answers, cycle counts and comparisons come
//!   from the same split pipeline a standalone [`Accelerator::run`] would
//!   execute; a cache hit changes *when and where* a story is written,
//!   never what the inference computes.

use std::collections::{BinaryHeap, HashMap, VecDeque};

use mann_core::TaskSuite;
use mann_hw::{
    story_digest, AccelConfig, Accelerator, ClockDomain, Cycles, InferenceRun, LinkArbiter, LruSet,
    MemIndexConfig, PcieLink, PowerModel, ResidentStory, SimTime, DEFAULT_STORY_CACHE,
};
use mann_ith::HopPrune;
use mann_store::WalRecord;
use serde::{Deserialize, Serialize};

use crate::faults::{FaultConfig, FaultPlan, FaultReport};
use crate::numeric::{NumericHealth, NumericPolicy};
use crate::report::{
    answers_digest, BatchReport, CacheReport, HopPruneReport, IndexReport, InstanceReport,
    LatencySummary, LinkReport, ServeReport,
};
use crate::request::{Completion, Export, Rejection, Request, RequestTimestamps};
use crate::scheduler::{InstanceView, Scheduler};
use crate::store::{DurabilityReport, WalConfig};
use crate::trace::ArrivalTrace;
use crate::SchedulePolicy;

/// How the numeric phase of a serve executes. Both engines produce
/// byte-identical [`ServeReport`]s; the parallel engine exists to use the
/// worker pool, the serial engine to prove it changes nothing.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum EngineMode {
    /// Single-threaded reference: stories and queries simulate inline, in
    /// request order.
    Serial,
    /// Stories and queries simulate on the `MANN_THREADS` worker pool,
    /// claimed in any order, accumulated in request order.
    #[default]
    Parallel,
}

/// An unrecognized engine name (CLI flag or `MANN_SERVE_ENGINE`). Invalid
/// values are rejected rather than silently falling back to the default —
/// `MANN_SERVE_ENGINE=paralel` should fail loudly, not quietly serve with
/// the default engine.
#[derive(Debug, Clone, PartialEq, Eq, thiserror::Error)]
#[error("invalid engine mode {value:?}: expected one of `serial`, `parallel`")]
pub struct EngineModeError {
    /// The rejected input.
    pub value: String,
}

impl EngineMode {
    /// Parses a CLI-style engine name.
    ///
    /// # Errors
    ///
    /// Returns [`EngineModeError`] for anything but `serial`/`parallel`.
    pub fn parse(s: &str) -> Result<Self, EngineModeError> {
        match s {
            "serial" => Ok(Self::Serial),
            "parallel" => Ok(Self::Parallel),
            _ => Err(EngineModeError {
                value: s.to_owned(),
            }),
        }
    }

    /// Engine from the `MANN_SERVE_ENGINE` environment variable, falling
    /// back to the default (parallel) when unset.
    ///
    /// # Errors
    ///
    /// Returns [`EngineModeError`] when the variable is set to an
    /// unrecognized value.
    pub fn from_env() -> Result<Self, EngineModeError> {
        match std::env::var("MANN_SERVE_ENGINE") {
            Err(_) => Ok(Self::default()),
            Ok(v) => Self::parse(&v),
        }
    }
}

impl std::fmt::Display for EngineMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Serial => write!(f, "serial"),
            Self::Parallel => write!(f, "parallel"),
        }
    }
}

/// Serving-layer configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServeConfig {
    /// Replicated accelerator instances sharing the link.
    pub instances: usize,
    /// Host queue capacity; arrivals beyond it are rejected.
    pub queue_capacity: usize,
    /// Max requests dispatched to one instance and not yet computed
    /// (1 computing + the rest buffered in its input FIFO).
    pub inflight_limit: usize,
    /// Max story uploads packed into one link grant (batching amortizes
    /// the per-transfer driver latency).
    pub upload_batch: usize,
    /// Resident stories each instance keeps (LRU; 0 disables caching).
    pub story_cache: usize,
    /// Instance-selection policy.
    pub policy: SchedulePolicy,
    /// Numeric-phase execution engine.
    pub engine: EngineMode,
    /// Fabric clock of every instance.
    pub clock: ClockDomain,
    /// Shared host-link model.
    pub pcie: PcieLink,
    /// Per-instance power model.
    pub power: PowerModel,
    /// Load each task's calibrated thresholds (ITH early exit).
    pub use_ith: bool,
    /// Probe output rows in silhouette order when ITH is on.
    pub use_ordering: bool,
    /// Fault-injection campaign; [`FaultConfig::none`] (the default)
    /// injects nothing and leaves the serve path byte-identical.
    pub faults: FaultConfig,
    /// What to do with per-inference numeric-event flags; the default
    /// ([`NumericPolicy::Ignore`]) leaves the serve path byte-identical.
    pub numeric_policy: NumericPolicy,
    /// Max queries sharing one resident story drained into a single fused
    /// compute group; 0 or 1 disables batching and leaves the serve path
    /// byte-identical.
    pub batch_window: usize,
    /// Adaptive hop pruning on every instance's datapath; the default
    /// (off) leaves the serve path byte-identical.
    pub hop_prune: HopPrune,
    /// Candidate-generation index in front of every instance's MEM
    /// module; the default (off) leaves the serve path byte-identical.
    pub mem_index: MemIndexConfig,
    /// Cluster hook: when set, a watchdog-detected stranded request is
    /// handed back to the caller in [`ServeOutcome::exports`] (with its
    /// handoff time) instead of being re-queued locally, so a cluster can
    /// re-dispatch it on the story's replica shard. Off by default —
    /// standalone recovery stays local and byte-identical to before the
    /// cluster layer existed.
    pub failover_export: bool,
    /// Write-ahead-log configuration. When enabled, the serve collects
    /// the durable journal ([`ServeOutcome::wal_records`]) for the store
    /// driver to persist; the event loop itself stays I/O-free and
    /// byte-identical, and the default (off) leaves even the collection
    /// path untouched.
    pub wal: WalConfig,
    /// Cluster hook: fail-stop the whole node at this instant. The event
    /// loop halts at the cut, unfinished busy time is rolled back, and
    /// every request not fully drained by then is handed back in
    /// [`ServeOutcome::exports`] for the cluster to re-route via
    /// `route_live` (requires `failover_export`). The WAL cut is
    /// naturally consistent: a completion that never drained is never
    /// journaled. `None` (the default) schedules nothing and consumes no
    /// event sequence numbers, so the serve path stays byte-identical.
    pub fail_stop: Option<SimTime>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            instances: 2,
            queue_capacity: 64,
            inflight_limit: 2,
            upload_batch: 4,
            story_cache: DEFAULT_STORY_CACHE,
            policy: SchedulePolicy::default(),
            engine: EngineMode::default(),
            clock: ClockDomain::default(),
            pcie: PcieLink::default(),
            power: PowerModel::default(),
            use_ith: false,
            use_ordering: true,
            faults: FaultConfig::none(),
            numeric_policy: NumericPolicy::default(),
            batch_window: 0,
            hop_prune: HopPrune::default(),
            mem_index: MemIndexConfig::default(),
            failover_export: false,
            wal: WalConfig::default(),
            fail_stop: None,
        }
    }
}

impl ServeConfig {
    /// Checks structural validity.
    ///
    /// # Errors
    ///
    /// Returns a description of the first invalid field.
    pub fn validate(&self) -> Result<(), String> {
        if self.instances == 0 {
            return Err("need at least one accelerator instance".into());
        }
        if self.queue_capacity == 0 {
            return Err("host queue capacity must be positive".into());
        }
        if self.inflight_limit == 0 {
            return Err("inflight limit must be positive".into());
        }
        if self.upload_batch == 0 {
            return Err("upload batch must be positive".into());
        }
        self.faults.validate().map_err(|e| e.to_string())?;
        self.wal.validate()?;
        if let Some(t) = self.fail_stop {
            if t == SimTime::ZERO {
                return Err("fail_stop at time zero would serve nothing".into());
            }
            if !self.failover_export {
                return Err(
                    "fail_stop requires failover_export: a fail-stopped node's stranded \
                     requests only survive by being handed back to the cluster"
                        .into(),
                );
            }
        }
        if self.faults.node_kills > 0 && !self.wal.enabled {
            return Err(
                "node_kills require the write-ahead log (set `wal`, --wal-dir, or MANN_WAL): \
                 a killed node can only be recovered by replaying its journal"
                    .into(),
            );
        }
        Ok(())
    }
}

/// Everything a served trace produces.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServeOutcome {
    /// Completed requests, in request-id order.
    pub completions: Vec<Completion>,
    /// Rejected requests, in arrival order.
    pub rejections: Vec<Rejection>,
    /// Requests admitted but later dropped by the fault campaign (retry
    /// exhaustion); empty without an active campaign.
    pub sheds: Vec<Request>,
    /// Stranded requests handed off for cross-shard failover, in
    /// request-id order; always empty unless `failover_export` is set.
    pub exports: Vec<Export>,
    /// The durable journal of this serve (story admissions, evictions,
    /// completions) in canonical `(stamp, kind, id)` order; always empty
    /// unless `wal.enabled` is set. The store driver persists these — the
    /// serve itself never touches the filesystem.
    pub wal_records: Vec<WalRecord>,
    /// The aggregate report.
    pub report: ServeReport,
}

/// A multi-tenant server over a trained suite.
///
/// One [`Accelerator`] is loaded per task (the tenant's bitstream +
/// weights); the configured number of *instances* are scheduling replicas
/// of that loadout. Because replicas are numerically identical, the server
/// computes each distinct story and each request's query once, and lets the
/// event loop treat instances as timing resources with story residency.
#[derive(Debug)]
pub struct Server<'a> {
    suite: &'a TaskSuite,
    accels: Vec<Accelerator>,
    /// Aggressive-ITH loadouts for degraded-mode answers; empty unless
    /// the fault campaign enables overload degradation.
    deg_accels: Vec<Accelerator>,
    config: ServeConfig,
}

/// Event-queue entry; total order = (time, scheduling sequence).
struct Entry {
    time: SimTime,
    seq: u64,
    event: Event,
}

enum Event {
    Arrival(usize),
    LinkDone(u64),
    /// `epoch` is the instance's crash epoch at compute start; a crash
    /// bumps the epoch so this event is recognized as stale and dropped.
    ComputeDone {
        instance: usize,
        req: usize,
        epoch: u64,
    },
    /// Fault-campaign events (never scheduled without an active plan).
    Crash(usize),
    InstanceUp(usize),
    Watchdog(usize),
    Seu(usize),
    /// Whole-node fail-stop (never scheduled without `fail_stop` set):
    /// halts the event loop at the cut.
    FailStop,
}

impl PartialEq for Entry {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl Eq for Entry {}
impl PartialOrd for Entry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Entry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // BinaryHeap is a max-heap; reverse for earliest-first.
        (other.time, other.seq).cmp(&(self.time, self.seq))
    }
}

enum LinkJob {
    /// `epoch` is the target's crash epoch at dispatch; if the instance
    /// crashed while the payload was on the wire, delivery is void.
    Upload {
        instance: usize,
        reqs: Vec<usize>,
        epoch: u64,
    },
    Drain {
        req: usize,
    },
}

#[derive(Debug, Default, Clone)]
struct Inst {
    inflight: usize,
    free_at: SimTime,
    ready: VecDeque<usize>,
    /// The fused compute group currently on the fabric (empty = idle;
    /// a single entry without batching).
    computing: Vec<usize>,
    busy: SimTime,
    completed: u64,
    cache_hits: u64,
    /// Crashed and cooling down; invisible to the scheduler (0 credits).
    down: bool,
    /// Bumped on every crash; stale events carry the old value.
    epoch: u64,
}

/// Per-request numeric results, shared by both engines.
struct NumericPhase {
    /// One entry per distinct `(task, story)` pair, in first-seen order.
    stories: Vec<ResidentStory>,
    /// Story index of each request.
    story_of: Vec<usize>,
    /// Scheduling key of each request (task-mixed story digest).
    keys: Vec<u64>,
    /// Hit-form query run of each request.
    queries: Vec<InferenceRun>,
    /// Miss-form (full) run of each request; equals `Accelerator::run`.
    miss_runs: Vec<InferenceRun>,
    hit_durations: Vec<SimTime>,
    miss_durations: Vec<SimTime>,
    hit_bytes: Vec<u64>,
    miss_bytes: Vec<u64>,
    /// Aggressive-ITH forms of `queries`/`miss_runs` and their compute
    /// times; empty unless the campaign enables overload degradation.
    deg_queries: Vec<InferenceRun>,
    deg_miss_runs: Vec<InferenceRun>,
    deg_hit_durations: Vec<SimTime>,
    deg_miss_durations: Vec<SimTime>,
}

impl<'a> Server<'a> {
    /// Loads every task of `suite` under `config`.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid or the suite is empty.
    pub fn new(suite: &'a TaskSuite, config: ServeConfig) -> Self {
        config
            .validate()
            .unwrap_or_else(|e| panic!("invalid serve config: {e}"));
        assert!(!suite.tasks.is_empty(), "server needs at least one task");
        let accels = suite
            .tasks
            .iter()
            .map(|t| {
                Accelerator::new(
                    t.model.clone(),
                    AccelConfig {
                        clock: config.clock,
                        pcie: config.pcie,
                        power: config.power,
                        ith: config.use_ith.then(|| t.ith.clone()),
                        use_ordering: config.use_ordering,
                        hop_prune: config.hop_prune,
                        mem_index: config.mem_index,
                        ..AccelConfig::default()
                    },
                )
            })
            .collect();
        // Degraded mode forces ITH on with every threshold lowered by the
        // configured margin — earlier early-exit, cheaper, less accurate.
        let deg_accels = if config.faults.degrade_depth > 0 {
            suite
                .tasks
                .iter()
                .map(|t| {
                    Accelerator::new(
                        t.model.clone(),
                        AccelConfig {
                            clock: config.clock,
                            pcie: config.pcie,
                            power: config.power,
                            ith: Some(t.ith.degraded(config.faults.degrade_margin)),
                            use_ordering: config.use_ordering,
                            hop_prune: config.hop_prune,
                            mem_index: config.mem_index,
                            ..AccelConfig::default()
                        },
                    )
                })
                .collect()
        } else {
            Vec::new()
        };
        Self {
            suite,
            accels,
            deg_accels,
            config,
        }
    }

    /// The active configuration.
    pub fn config(&self) -> &ServeConfig {
        &self.config
    }

    /// The accelerator loadout for tenant `task_idx`.
    pub fn accelerator(&self, task_idx: usize) -> &Accelerator {
        &self.accels[task_idx]
    }

    /// One-time cost of shipping every tenant's weights to every instance
    /// over the (serial) link — paid before traffic starts, reported as
    /// `setup_s`, not folded into per-request latency.
    pub fn setup_time_s(&self) -> f64 {
        let per_instance: f64 = self
            .accels
            .iter()
            .map(|a| self.config.pcie.model_upload_time_s(a.model_bytes()))
            .sum();
        per_instance * self.config.instances as f64
    }

    fn sample_of(&self, req: &crate::Request) -> &mann_babi::EncodedSample {
        &self.suite.tasks[req.task_idx].test_set[req.sample_idx]
    }

    /// Simulates every distinct story once and every query once, per the
    /// configured engine. Output is index-ordered and engine-invariant.
    fn numeric_phase(&self, trace: &ArrivalTrace) -> NumericPhase {
        let n = trace.requests.len();

        // Group requests by (task, story digest), first-seen order.
        let mut story_ids: HashMap<(usize, u64), usize> = HashMap::new();
        let mut story_req: Vec<usize> = Vec::new();
        let mut story_of = Vec::with_capacity(n);
        let mut keys = Vec::with_capacity(n);
        for (i, r) in trace.requests.iter().enumerate() {
            let digest = story_digest(self.sample_of(r));
            // Mix the tenant index in so equal digests of different tasks
            // (different embeddings!) never alias in the residency model.
            keys.push(digest ^ (r.task_idx as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15));
            let next = story_req.len();
            let sid = *story_ids.entry((r.task_idx, digest)).or_insert_with(|| {
                story_req.push(i);
                next
            });
            story_of.push(sid);
        }

        let workers = match self.config.engine {
            EngineMode::Serial => 1,
            EngineMode::Parallel => mann_core::parallel::worker_threads(n.max(story_req.len())),
        };
        let stories: Vec<ResidentStory> =
            mann_core::parallel::parallel_map_indexed(story_req.len(), workers, |s| {
                let r = &trace.requests[story_req[s]];
                self.accels[r.task_idx].write_story(self.sample_of(r))
            });
        // Identical requests — same (task, sample) — are bit-identical
        // inferences, so each distinct pair is simulated once and shared.
        // Repeated-story traces collapse to a handful of query runs.
        let mut query_ids: HashMap<(usize, usize), usize> = HashMap::new();
        let mut query_req: Vec<usize> = Vec::new();
        let mut query_of: Vec<usize> = Vec::with_capacity(n);
        for (i, r) in trace.requests.iter().enumerate() {
            let next = query_req.len();
            let qid = *query_ids
                .entry((r.task_idx, r.sample_idx))
                .or_insert_with(|| {
                    query_req.push(i);
                    next
                });
            query_of.push(qid);
        }
        let unique_queries: Vec<InferenceRun> =
            mann_core::parallel::parallel_map_indexed(query_req.len(), workers, |u| {
                let i = query_req[u];
                let r = &trace.requests[i];
                self.accels[r.task_idx].answer_query(&stories[story_of[i]], self.sample_of(r))
            });
        let unique_misses: Vec<InferenceRun> = query_req
            .iter()
            .enumerate()
            .map(|(u, &i)| {
                let r = &trace.requests[i];
                self.accels[r.task_idx].compose_uncached(
                    &stories[story_of[i]],
                    &unique_queries[u],
                    self.sample_of(r),
                )
            })
            .collect();
        let queries: Vec<InferenceRun> = query_of
            .iter()
            .map(|&q| unique_queries[q].clone())
            .collect();
        let miss_runs: Vec<InferenceRun> =
            query_of.iter().map(|&q| unique_misses[q].clone()).collect();

        // Degraded (aggressive-ITH) forms, simulated through the same
        // dedup so the phase stays engine- and thread-invariant.
        let (deg_queries, deg_miss_runs) = if self.deg_accels.is_empty() {
            (Vec::new(), Vec::new())
        } else {
            let unique_deg: Vec<InferenceRun> =
                mann_core::parallel::parallel_map_indexed(query_req.len(), workers, |u| {
                    let i = query_req[u];
                    let r = &trace.requests[i];
                    self.deg_accels[r.task_idx]
                        .answer_query(&stories[story_of[i]], self.sample_of(r))
                });
            let unique_deg_misses: Vec<InferenceRun> = query_req
                .iter()
                .enumerate()
                .map(|(u, &i)| {
                    let r = &trace.requests[i];
                    self.deg_accels[r.task_idx].compose_uncached(
                        &stories[story_of[i]],
                        &unique_deg[u],
                        self.sample_of(r),
                    )
                })
                .collect();
            (
                query_of.iter().map(|&q| unique_deg[q].clone()).collect(),
                query_of
                    .iter()
                    .map(|&q| unique_deg_misses[q].clone())
                    .collect(),
            )
        };

        let hit_durations = queries
            .iter()
            .map(|q| q.compute_time(self.config.clock))
            .collect();
        let miss_durations = miss_runs
            .iter()
            .map(|m| m.compute_time(self.config.clock))
            .collect();
        let deg_hit_durations = deg_queries
            .iter()
            .map(|q| q.compute_time(self.config.clock))
            .collect();
        let deg_miss_durations = deg_miss_runs
            .iter()
            .map(|m| m.compute_time(self.config.clock))
            .collect();
        let hit_bytes = trace
            .requests
            .iter()
            .map(|r| PcieLink::input_bytes(Accelerator::query_words(self.sample_of(r))))
            .collect();
        let miss_bytes = trace
            .requests
            .iter()
            .map(|r| PcieLink::input_bytes(Accelerator::input_words(self.sample_of(r))))
            .collect();
        NumericPhase {
            stories,
            story_of,
            keys,
            queries,
            miss_runs,
            hit_durations,
            miss_durations,
            hit_bytes,
            miss_bytes,
            deg_queries,
            deg_miss_runs,
            deg_hit_durations,
            deg_miss_durations,
        }
    }

    /// Serves `trace`, returning per-request completions, rejections and
    /// the aggregate report.
    ///
    /// # Panics
    ///
    /// Panics if a request references a task or sample outside the suite.
    pub fn serve(&self, trace: &ArrivalTrace) -> ServeOutcome {
        let n = trace.requests.len();
        for r in &trace.requests {
            assert!(
                r.task_idx < self.suite.tasks.len(),
                "request {} task out of range",
                r.id
            );
            assert!(
                r.sample_idx < self.suite.tasks[r.task_idx].test_set.len(),
                "request {} sample out of range",
                r.id
            );
        }

        // ----- numeric phase (engine-dependent, order-preserving) --------
        let num = self.numeric_phase(trace);

        // ----- fault plan (None = untouched serve path) ------------------
        let plan: Option<FaultPlan> = self.config.faults.is_active().then(|| {
            FaultPlan::materialize(&self.config.faults, trace.span(), self.config.instances)
                .unwrap_or_else(|e| panic!("invalid fault plan: {e}"))
        });

        // ----- event loop (sequential, integer time) --------------------
        let mut heap: BinaryHeap<Entry> = BinaryHeap::new();
        let mut seq = 0u64;
        for (i, r) in trace.requests.iter().enumerate() {
            heap.push(Entry {
                time: r.arrival,
                seq,
                event: Event::Arrival(i),
            });
            seq += 1;
        }
        // Fault events go on the heap after the arrivals so a zero-fault
        // campaign consumes exactly the same sequence numbers as no
        // campaign at all (byte-identity with the fault layer compiled in).
        if let Some(p) = &plan {
            for (k, &(t, _)) in p.crash_events().iter().enumerate() {
                heap.push(Entry {
                    time: t,
                    seq,
                    event: Event::Crash(k),
                });
                seq += 1;
            }
            for (k, &(t, _, _)) in p.seu_events().iter().enumerate() {
                heap.push(Entry {
                    time: t,
                    seq,
                    event: Event::Seu(k),
                });
                seq += 1;
            }
        }
        // The membership fail-stop goes on last for the same reason: a
        // `None` cut consumes no sequence numbers at all. Arrivals at the
        // cut instant still carry earlier seqs, so they are admitted (and
        // then stranded) deterministically.
        if let Some(t) = self.config.fail_stop {
            heap.push(Entry {
                time: t,
                seq,
                event: Event::FailStop,
            });
            seq += 1;
        }

        let mut queue: VecDeque<usize> = VecDeque::new();
        let mut insts = vec![Inst::default(); self.config.instances];
        let mut residency = vec![LruSet::new(self.config.story_cache); self.config.instances];
        let mut arb = LinkArbiter::new(self.config.pcie);
        let mut jobs: Vec<LinkJob> = Vec::new();
        let mut scheduler = Scheduler::new(self.config.policy);
        let mut ts = vec![RequestTimestamps::default(); n];
        let mut assigned = vec![usize::MAX; n];
        let mut hit = vec![false; n];
        let mut durations = vec![SimTime::ZERO; n];
        let mut rejections: Vec<Rejection> = Vec::new();
        let mut max_queue_depth = 0usize;
        let mut last_drain = SimTime::ZERO;
        let mut write_cycles_saved = 0u64;
        let mut upload_bytes_saved = 0u64;

        // ----- batched-compute accounting (inert with window 0/1) --------
        let batch_window = self.config.batch_window.max(1);
        let mut batch_groups = 0u64;
        let mut batch_fused = 0u64;
        let mut batched_requests = 0u64;
        let mut batch_hist: Vec<u64> = Vec::new();
        let mut batch_cycles_saved = 0u64;

        // ----- fault-campaign state (inert without a plan) ---------------
        let mut fr = FaultReport::default();
        // Per-request lifecycle flags.
        let mut done = vec![false; n];
        let mut shed = vec![false; n];
        let mut computed = vec![false; n];
        let mut deg = vec![false; n];
        let mut wd_armed = vec![false; n];
        let mut exported: Vec<Option<SimTime>> = vec![None; n];
        let mut dispatch_epoch = vec![0u64; n];
        let mut seu_pending: Vec<Option<SimTime>> = vec![None; n];
        // Per-link-job retry state (parallel to `jobs`).
        let mut attempts: Vec<u32> = Vec::new();
        let mut first_fail: Vec<Option<SimTime>> = Vec::new();
        // Crash instants by (instance, pre-crash epoch), for MTTR.
        let mut crash_at: HashMap<(usize, u64), SimTime> = HashMap::new();
        let mut mttr_link = (SimTime::ZERO, 0u64);
        let mut mttr_inst = (SimTime::ZERO, 0u64);
        let mut mttr_seu = (SimTime::ZERO, 0u64);

        // ----- durable journal (inert unless wal.enabled) ----------------
        let journal_on = self.config.wal.enabled;
        let mut wal_records: Vec<WalRecord> = Vec::new();
        // Evictions come back from the LRU as cache keys; map each key to
        // its (digest, task) pair for the journal. The key is
        // digest ^ task·MIX, so the map is total over everything this
        // trace can admit.
        let mut key_meta: HashMap<u64, (u64, u32)> = HashMap::new();
        // Quantized rows are identical for every request of a story —
        // extract once per story id, lazily, only for journaled misses.
        let mut wal_rows: Vec<Option<Vec<i32>>> = Vec::new();
        if journal_on {
            wal_rows.resize(num.stories.len(), None);
            for (i, r) in trace.requests.iter().enumerate() {
                key_meta.insert(
                    num.keys[i],
                    (num.stories[num.story_of[i]].digest(), r.task_idx as u32),
                );
            }
        }

        // Moves as many queued requests as credits allow onto the link.
        // Residency (hit or miss) is decided here, per dispatched request,
        // because it depends on the chosen instance's cache state.
        macro_rules! dispatch {
            ($now:expr) => {
                loop {
                    let Some(&head) = queue.front() else {
                        break;
                    };
                    let views: Vec<InstanceView> = insts
                        .iter()
                        .zip(&residency)
                        .map(|(inst, res)| InstanceView {
                            inflight: inst.inflight,
                            // A crashed instance advertises no credits, so
                            // the (unchanged) scheduler never picks it.
                            credits: if inst.down {
                                0
                            } else {
                                self.config.inflight_limit - inst.inflight
                            },
                            free_at: inst.free_at,
                            resident: res.contains(num.keys[head]),
                        })
                        .collect();
                    let Some(target) = scheduler.pick(&views) else {
                        break;
                    };
                    let credits = self.config.inflight_limit - insts[target].inflight;
                    let take = credits.min(self.config.upload_batch).min(queue.len());
                    let reqs: Vec<usize> = queue.drain(..take).collect();
                    let mut bytes = 0u64;
                    for &r in &reqs {
                        let admission = residency[target].admit(num.keys[r]);
                        hit[r] = admission.hit;
                        if journal_on {
                            if let Some(k) = admission.evicted {
                                let (d, t) = key_meta[&k];
                                wal_records.push(WalRecord::evict(d, t, $now.ps()));
                            }
                            if !admission.hit {
                                let sid = num.story_of[r];
                                let rows = wal_rows[sid]
                                    .get_or_insert_with(|| num.stories[sid].quantized_rows())
                                    .clone();
                                wal_records.push(WalRecord::story(
                                    num.stories[sid].digest(),
                                    trace.requests[r].task_idx as u32,
                                    $now.ps(),
                                    rows,
                                ));
                            }
                        }
                        if admission.scrubbed {
                            // A poisoned resident story: the digest check
                            // caught it, so this dispatch pays a full
                            // re-write (miss form) to repair it.
                            fr.scrubs += 1;
                            fr.scrub_cycles += num.stories[num.story_of[r]].phases().total().get();
                            seu_pending[r] = Some($now);
                        }
                        if admission.hit {
                            insts[target].cache_hits += 1;
                            write_cycles_saved +=
                                num.stories[num.story_of[r]].phases().total().get();
                            upload_bytes_saved += num.miss_bytes[r] - num.hit_bytes[r];
                            bytes += num.hit_bytes[r];
                            durations[r] = if deg[r] {
                                num.deg_hit_durations[r]
                            } else {
                                num.hit_durations[r]
                            };
                        } else {
                            bytes += num.miss_bytes[r];
                            durations[r] = if deg[r] {
                                num.deg_miss_durations[r]
                            } else {
                                num.miss_durations[r]
                            };
                        }
                        ts[r].dispatch = $now;
                        assigned[r] = target;
                        dispatch_epoch[r] = insts[target].epoch;
                        if let Some(p) = &plan {
                            let wd = p.config().watchdog_s;
                            if wd > 0.0 && !wd_armed[r] {
                                wd_armed[r] = true;
                                heap.push(Entry {
                                    time: $now + SimTime::from_s(wd),
                                    seq,
                                    event: Event::Watchdog(r),
                                });
                                seq += 1;
                            }
                        }
                    }
                    insts[target].inflight += take;
                    let id = jobs.len() as u64;
                    jobs.push(LinkJob::Upload {
                        instance: target,
                        reqs,
                        epoch: insts[target].epoch,
                    });
                    attempts.push(0);
                    first_fail.push(None);
                    arb.submit(id, bytes, take);
                }
            };
        }

        // Grants the head link job if the link is idle.
        macro_rules! grant {
            ($now:expr) => {
                if let Some(g) = arb.try_grant($now) {
                    match &jobs[g.id as usize] {
                        LinkJob::Upload { reqs, .. } => {
                            for &r in reqs {
                                ts[r].upload_start = g.start;
                            }
                        }
                        LinkJob::Drain { req } => ts[*req].drain_start = g.start,
                    }
                    heap.push(Entry {
                        time: g.end,
                        seq,
                        event: Event::LinkDone(g.id),
                    });
                    seq += 1;
                }
            };
        }

        // The numeric-phase run a request resolves to at compute time.
        // A macro (not a closure) so it can borrow `num` alongside the
        // mutable lifecycle state held by the enclosing loop.
        macro_rules! run_of {
            ($r:expr) => {
                match (hit[$r], deg[$r]) {
                    (true, false) => &num.queries[$r],
                    (false, false) => &num.miss_runs[$r],
                    (true, true) => &num.deg_queries[$r],
                    (false, true) => &num.deg_miss_runs[$r],
                }
            };
        }

        // Starts the next ready request if the instance's fabric is idle.
        // With a batch window > 1, the head request additionally drains
        // every FIFO'd request on the *same resident story* (up to the
        // window) into one fused compute group: the shared per-hop memory
        // stream and the shared output-search stream are paid once instead
        // of once per query, so the fused duration is the sum of the
        // per-query durations minus the deduplicated stream cycles.
        macro_rules! start_compute {
            ($i:expr, $now:expr) => {
                if insts[$i].computing.is_empty() {
                    if let Some(r) = insts[$i].ready.pop_front() {
                        let mut group = vec![r];
                        if batch_window > 1 {
                            let mut rest = VecDeque::new();
                            while let Some(q) = insts[$i].ready.pop_front() {
                                if group.len() < batch_window && num.keys[q] == num.keys[r] {
                                    group.push(q);
                                } else {
                                    rest.push_back(q);
                                }
                            }
                            insts[$i].ready = rest;
                            batch_groups += 1;
                            batched_requests += group.len() as u64;
                            if batch_hist.len() < group.len() {
                                batch_hist.resize(group.len(), 0);
                            }
                            batch_hist[group.len() - 1] += 1;
                        }
                        let mut total = SimTime::ZERO;
                        for &q in &group {
                            ts[q].compute_start = $now;
                            total += durations[q];
                        }
                        let fused = if group.len() > 1 {
                            batch_fused += 1;
                            // Same story => same per-hop stream cost; the
                            // batch pays max(hops) streams instead of
                            // sum(hops), and one output row stream instead
                            // of one per query.
                            let stream = run_of!(r).mem_stream_per_hop;
                            let hops: u64 =
                                group.iter().map(|&q| run_of!(q).hops_executed as u64).sum();
                            let max_hops = group
                                .iter()
                                .map(|&q| run_of!(q).hops_executed as u64)
                                .max()
                                .unwrap_or(0);
                            let outs: u64 =
                                group.iter().map(|&q| run_of!(q).out_stream_cycles).sum();
                            let max_out = group
                                .iter()
                                .map(|&q| run_of!(q).out_stream_cycles)
                                .max()
                                .unwrap_or(0);
                            let saved = stream * (hops - max_hops) + (outs - max_out);
                            batch_cycles_saved += saved;
                            total.saturating_sub(self.config.clock.sim_time(Cycles::new(saved)))
                        } else {
                            total
                        };
                        let end = $now + fused;
                        insts[$i].free_at = end;
                        insts[$i].busy += fused;
                        insts[$i].computing = group;
                        heap.push(Entry {
                            time: end,
                            seq,
                            event: Event::ComputeDone {
                                instance: $i,
                                req: r,
                                epoch: insts[$i].epoch,
                            },
                        });
                        seq += 1;
                    }
                }
            };
        }

        let mut halted_at: Option<SimTime> = None;
        while let Some(Entry {
            time: now, event, ..
        }) = heap.pop()
        {
            match event {
                Event::FailStop => {
                    // Whole-node fail-stop: the fabric, caches and host
                    // queue vanish at the cut. Roll back every instance's
                    // unfinished busy time (the killed compute never
                    // happened, same rule as a crash), then halt — the
                    // post-loop pass hands everything unfinished back to
                    // the cluster as exports.
                    for inst in insts.iter_mut() {
                        let unfinished = inst.free_at.saturating_sub(now);
                        inst.busy = inst.busy.saturating_sub(unfinished);
                        inst.free_at = now;
                        inst.computing.clear();
                        inst.ready.clear();
                        inst.inflight = 0;
                        inst.down = true;
                        inst.epoch += 1;
                    }
                    halted_at = Some(now);
                    break;
                }
                Event::Arrival(i) => {
                    if queue.len() >= self.config.queue_capacity {
                        rejections.push(Rejection {
                            request: trace.requests[i],
                            queue_depth: queue.len(),
                        });
                        if plan.is_some() {
                            fr.shed_overload += 1;
                        }
                    } else {
                        ts[i].enqueue = now;
                        queue.push_back(i);
                        max_queue_depth = max_queue_depth.max(queue.len());
                        if let Some(p) = &plan {
                            // Overload response: past the degrade depth,
                            // survivors are answered in aggressive-ITH
                            // degraded mode instead of being shed.
                            let depth = p.config().degrade_depth;
                            if depth > 0 && queue.len() >= depth {
                                deg[i] = true;
                                fr.degraded += 1;
                            }
                        }
                        dispatch!(now);
                        grant!(now);
                    }
                }
                Event::LinkDone(id) => {
                    let idx = id as usize;
                    let corrupted = plan.as_ref().is_some_and(|p| p.corrupts(id, attempts[idx]));
                    if corrupted {
                        let p = plan.as_ref().expect("corruption implies a campaign");
                        fr.link_corruptions += 1;
                        if first_fail[idx].is_none() {
                            first_fail[idx] = Some(now);
                        }
                        let attempt = attempts[idx];
                        if attempt < p.config().max_retries {
                            // CRC failure: hold the link through backoff and
                            // replay the whole transfer. Holding (rather than
                            // completing and resubmitting) keeps the FIFO
                            // order of every other pending transfer intact.
                            attempts[idx] += 1;
                            fr.retransmits += 1;
                            let g = arb.retransmit(id, now + p.backoff(attempt));
                            heap.push(Entry {
                                time: g.end,
                                seq,
                                event: Event::LinkDone(id),
                            });
                            seq += 1;
                        } else {
                            // Retry budget exhausted: payload undeliverable.
                            fr.retry_exhausted += 1;
                            arb.complete(id);
                            match &jobs[idx] {
                                LinkJob::Upload {
                                    instance,
                                    reqs,
                                    epoch,
                                } => {
                                    let (instance, epoch) = (*instance, *epoch);
                                    let reqs = reqs.clone();
                                    if insts[instance].epoch == epoch {
                                        // Target alive since dispatch: these
                                        // requests have no other copy in
                                        // flight, so they are shed.
                                        insts[instance].inflight -= reqs.len();
                                        for &r in &reqs {
                                            done[r] = true;
                                            shed[r] = true;
                                            fr.shed_link += 1;
                                        }
                                    }
                                    // Epoch mismatch: the instance crashed
                                    // while this payload was on the wire; its
                                    // requests are already stranded and the
                                    // watchdog re-dispatches them.
                                }
                                LinkJob::Drain { req } => {
                                    done[*req] = true;
                                    shed[*req] = true;
                                    fr.shed_link += 1;
                                }
                            }
                            dispatch!(now);
                            grant!(now);
                        }
                    } else {
                        if let Some(t0) = first_fail[idx].take() {
                            mttr_link.0 += now.saturating_sub(t0);
                            mttr_link.1 += 1;
                        }
                        arb.complete(id);
                        match &jobs[idx] {
                            LinkJob::Upload {
                                instance,
                                reqs,
                                epoch,
                            } => {
                                let (instance, epoch) = (*instance, *epoch);
                                let reqs = reqs.clone();
                                if insts[instance].epoch == epoch {
                                    debug_assert!(!insts[instance].down);
                                    for &r in &reqs {
                                        ts[r].upload_end = now;
                                        if let Some(t0) = seu_pending[r].take() {
                                            mttr_seu.0 += now.saturating_sub(t0);
                                            mttr_seu.1 += 1;
                                        }
                                    }
                                    insts[instance].ready.extend(reqs);
                                    start_compute!(instance, now);
                                }
                                // Stale epoch: the payload arrived at an
                                // instance that crashed after dispatch —
                                // delivery is void, the watchdog recovers
                                // the stranded requests.
                            }
                            LinkJob::Drain { req } => {
                                ts[*req].drain_end = now;
                                done[*req] = true;
                                last_drain = last_drain.max(now);
                            }
                        }
                        grant!(now);
                    }
                }
                Event::ComputeDone {
                    instance,
                    req,
                    epoch,
                } => {
                    if insts[instance].epoch == epoch {
                        debug_assert_eq!(insts[instance].computing.first(), Some(&req));
                        let group = std::mem::take(&mut insts[instance].computing);
                        insts[instance].inflight -= group.len();
                        for q in group {
                            ts[q].compute_end = now;
                            computed[q] = true;
                            insts[instance].completed += 1;
                            let id = jobs.len() as u64;
                            jobs.push(LinkJob::Drain { req: q });
                            attempts.push(0);
                            first_fail.push(None);
                            arb.submit(id, PcieLink::answer_bytes(), 1);
                        }
                        start_compute!(instance, now);
                        dispatch!(now);
                        grant!(now);
                    }
                    // Stale epoch: the instance crashed mid-compute; the
                    // result never materialized.
                }
                Event::Crash(k) => {
                    let p = plan.as_ref().expect("crash implies a campaign");
                    let (_, i) = p.crash_events()[k];
                    if !insts[i].down {
                        fr.crashes += 1;
                        crash_at.insert((i, insts[i].epoch), now);
                        insts[i].epoch += 1;
                        insts[i].down = true;
                        // Roll back the busy time of the killed (never
                        // finished) compute, drop FIFO'd work, and lose
                        // all resident stories (BRAM state is gone).
                        let unfinished = insts[i].free_at.saturating_sub(now);
                        insts[i].busy = insts[i].busy.saturating_sub(unfinished);
                        insts[i].free_at = now;
                        insts[i].computing.clear();
                        insts[i].ready.clear();
                        insts[i].inflight = 0;
                        residency[i].clear_resident();
                        heap.push(Entry {
                            time: now + SimTime::from_s(p.config().crash_cooldown_s),
                            seq,
                            event: Event::InstanceUp(i),
                        });
                        seq += 1;
                    }
                }
                Event::InstanceUp(i) => {
                    insts[i].down = false;
                    dispatch!(now);
                    grant!(now);
                }
                Event::Watchdog(r) => {
                    if !done[r] {
                        fr.watchdog_fires += 1;
                        let stranded = assigned[r] != usize::MAX
                            && !computed[r]
                            && insts[assigned[r]].epoch != dispatch_epoch[r];
                        if stranded {
                            // The instance crashed under this request:
                            // fail over to whatever replica the scheduler
                            // picks next (re-admission is capacity-exempt;
                            // the request was already admitted once).
                            fr.failovers += 1;
                            if let Some(&t0) = crash_at.get(&(assigned[r], dispatch_epoch[r])) {
                                mttr_inst.0 += now.saturating_sub(t0);
                                mttr_inst.1 += 1;
                            }
                            if self.config.failover_export {
                                // Cross-shard failover: hand the request
                                // back to the cluster, which re-dispatches
                                // it on the story's replica shard; this
                                // node is done with it.
                                done[r] = true;
                                exported[r] = Some(now);
                            } else {
                                assigned[r] = usize::MAX;
                                queue.push_front(r);
                                max_queue_depth = max_queue_depth.max(queue.len());
                                dispatch!(now);
                                grant!(now);
                            }
                        }
                        // Re-arm while the request is alive; the chain dies
                        // with `done` (which an export just set).
                        if !done[r] {
                            let p = plan.as_ref().expect("watchdog implies a campaign");
                            heap.push(Entry {
                                time: now + SimTime::from_s(p.config().watchdog_s),
                                seq,
                                event: Event::Watchdog(r),
                            });
                            seq += 1;
                        }
                    }
                }
                Event::Seu(k) => {
                    let p = plan.as_ref().expect("SEU implies a campaign");
                    let (_, i, pick) = p.seu_events()[k];
                    fr.seu_events += 1;
                    if !insts[i].down {
                        let keys = residency[i].keys();
                        if !keys.is_empty() {
                            let key = keys[(pick % keys.len() as u64) as usize];
                            residency[i].poison(key);
                        }
                    }
                }
            }
        }
        debug_assert!(
            halted_at.is_some() || queue.is_empty(),
            "event loop left work queued"
        );
        debug_assert!(
            halted_at.is_some() || (!arb.is_busy() && arb.pending_len() == 0),
            "link work stranded"
        );

        // ----- assemble outcome ----------------------------------------
        let rejected_ids: std::collections::HashSet<u64> =
            rejections.iter().map(|r| r.request.id).collect();
        if let Some(cut) = halted_at {
            // Fail-stop stranding: every request not fully drained by the
            // cut — queued, on the wire, computing, or not yet arrived —
            // is exported for the cluster to re-route. Rejections stay
            // rejections (they were bounced before the node died), so no
            // request is ever double-counted.
            queue.clear();
            for (i, r) in trace.requests.iter().enumerate() {
                if !done[i] && !shed[i] && exported[i].is_none() && !rejected_ids.contains(&r.id) {
                    done[i] = true;
                    exported[i] = Some(cut.max(r.arrival));
                }
            }
        }
        let sheds: Vec<Request> = trace
            .requests
            .iter()
            .enumerate()
            .filter(|&(i, _)| shed[i])
            .map(|(_, r)| *r)
            .collect();
        let exports: Vec<Export> = trace
            .requests
            .iter()
            .enumerate()
            .filter_map(|(i, r)| exported[i].map(|at| Export { request: *r, at }))
            .collect();
        let mut completions: Vec<Completion> = trace
            .requests
            .iter()
            .enumerate()
            .filter(|&(i, r)| !rejected_ids.contains(&r.id) && !shed[i] && exported[i].is_none())
            .map(|(i, r)| {
                debug_assert!(ts[i].is_monotone(), "request {} timeline broken", r.id);
                let run = match (hit[i], deg[i]) {
                    (true, false) => num.queries[i].clone(),
                    (false, false) => num.miss_runs[i].clone(),
                    (true, true) => num.deg_queries[i].clone(),
                    (false, true) => num.deg_miss_runs[i].clone(),
                };
                let correct = run.answer == self.sample_of(r).answer;
                Completion {
                    request: *r,
                    instance: assigned[i],
                    run,
                    timestamps: ts[i],
                    correct,
                    degraded: deg[i],
                    numeric_flagged: false,
                    failed_over: false,
                }
            })
            .collect();
        let numeric = self.apply_numeric_policy(&mut completions);

        // Journal completions only after the numeric policy has settled
        // the final answers, so replaying the WAL reproduces exactly what
        // was served. Canonical order makes the journal a pure function
        // of (suite, trace, config), independent of engine and threads.
        if journal_on {
            for c in &completions {
                wal_records.push(WalRecord::completion(
                    c.request.id,
                    c.run.answer as u32,
                    c.timestamps.drain_end.ps(),
                ));
            }
            wal_records.sort_by(|a, b| {
                (a.stamp_ps, a.kind, a.id, a.task, a.digest)
                    .cmp(&(b.stamp_ps, b.kind, b.id, b.task, b.digest))
            });
        }

        let cache_stats = residency.iter().map(|r| r.stats()).fold(
            mann_hw::CacheStats::default(),
            |mut acc, s| {
                acc += s;
                acc
            },
        );
        let cache = CacheReport {
            capacity: self.config.story_cache,
            unique_stories: num.stories.len(),
            hits: cache_stats.hits,
            misses: cache_stats.misses,
            evictions: cache_stats.evictions,
            hit_rate: cache_stats.hit_rate(),
            write_cycles_saved,
            upload_bytes_saved,
            write_energy_saved_j: self.config.power.active_energy_j(
                self.config.clock.freq_mhz(),
                self.config.clock.seconds(Cycles::new(write_cycles_saved)),
            ),
        };
        let batch = BatchReport {
            enabled: self.config.batch_window > 1,
            window: self.config.batch_window,
            groups: batch_groups,
            fused_groups: batch_fused,
            batched_requests,
            size_histogram: batch_hist,
            cycles_saved: batch_cycles_saved,
            energy_saved_j: self.config.power.active_energy_j(
                self.config.clock.freq_mhz(),
                self.config.clock.seconds(Cycles::new(batch_cycles_saved)),
            ),
        };

        if let Some(p) = &plan {
            fr.enabled = true;
            fr.plan_seed = p.config().seed;
            fr.retry_link_s = arb.retry_busy_time().as_s();
            fr.retry_energy_j = self
                .config
                .power
                .retry_energy_j(self.config.clock.freq_mhz(), fr.retry_link_s);
            fr.scrub_energy_j = self.config.power.active_energy_j(
                self.config.clock.freq_mhz(),
                self.config.clock.seconds(Cycles::new(fr.scrub_cycles)),
            );
            let mean = |(sum, count): (SimTime, u64)| {
                if count > 0 {
                    sum.as_s() / count as f64
                } else {
                    0.0
                }
            };
            fr.mttr_link_s = mean(mttr_link);
            fr.mttr_instance_s = mean(mttr_inst);
            fr.mttr_seu_s = mean(mttr_seu);
        }

        let report = self.build_report(
            trace,
            &completions,
            &rejections,
            &insts,
            &arb,
            cache,
            batch,
            last_drain,
            max_queue_depth,
            fr,
            numeric,
        );
        ServeOutcome {
            completions,
            rejections,
            sheds,
            exports,
            wal_records,
            report,
        }
    }

    /// Applies the configured [`NumericPolicy`] to the assembled
    /// completions — after the event loop, as a pure per-completion
    /// function of each run's numeric report, so the outcome is invariant
    /// across engines, thread counts and hit/miss paths.
    ///
    /// Under [`NumericPolicy::Failover`], a stressed completion's answer
    /// is replaced by the `f32` reference model's prediction and the
    /// re-run's compute cycles/energy are accounted in the returned
    /// [`NumericHealth`]. SEU scrubs never reach this accounting: a
    /// poisoned story is repaired in the event loop by re-writing the
    /// *same* numeric-phase story, so its events are counted once here
    /// regardless of how many scrubs the campaign forced.
    fn apply_numeric_policy(&self, completions: &mut [Completion]) -> NumericHealth {
        let policy = self.config.numeric_policy;
        let mut nh = NumericHealth::default();
        if policy == NumericPolicy::Ignore {
            return nh;
        }
        nh.enabled = true;
        nh.policy = policy.to_string();
        for c in completions {
            let st = c.run.numeric.total();
            nh.histogram.merge(&st);
            nh.vetoed += c.run.vetoes as u64;
            if !st.stressed() {
                continue;
            }
            c.numeric_flagged = true;
            nh.flagged += 1;
            if policy == NumericPolicy::Failover {
                let sample = self.sample_of(&c.request);
                let sw = self.suite.tasks[c.request.task_idx].model.predict(sample);
                c.failed_over = true;
                c.run.answer = sw;
                c.correct = sw == sample.answer;
                nh.failed_over += 1;
                nh.failover_cycles += c.run.cycles.get();
            }
        }
        nh.failover_energy_j = self.config.power.active_energy_j(
            self.config.clock.freq_mhz(),
            self.config.clock.seconds(Cycles::new(nh.failover_cycles)),
        );
        nh
    }

    #[allow(clippy::too_many_arguments)]
    fn build_report(
        &self,
        trace: &ArrivalTrace,
        completions: &[Completion],
        rejections: &[Rejection],
        insts: &[Inst],
        arb: &LinkArbiter,
        cache: CacheReport,
        batch: BatchReport,
        last_drain: SimTime,
        max_queue_depth: usize,
        fault: FaultReport,
        numeric: NumericHealth,
    ) -> ServeReport {
        let makespan_s = last_drain.as_s();
        let latencies: Vec<f64> = completions
            .iter()
            .map(|c| c.timestamps.latency().as_s())
            .collect();
        let mean_queue_wait_s = if completions.is_empty() {
            0.0
        } else {
            completions
                .iter()
                .map(|c| c.timestamps.queue_wait().as_s())
                .sum::<f64>()
                / completions.len() as f64
        };
        let instances: Vec<InstanceReport> = insts
            .iter()
            .enumerate()
            .map(|(i, inst)| {
                let busy_s = inst.busy.as_s();
                InstanceReport {
                    instance: i,
                    completed: inst.completed,
                    cache_hits: inst.cache_hits,
                    busy_s,
                    occupancy: if makespan_s > 0.0 {
                        (busy_s / makespan_s).clamp(0.0, 1.0)
                    } else {
                        0.0
                    },
                    energy_j: self.config.power.interval_energy_j(
                        self.config.clock.freq_mhz(),
                        busy_s,
                        makespan_s,
                        self.config.use_ith,
                    ),
                }
            })
            .collect();
        let total_energy_j = instances.iter().map(|i| i.energy_j).sum();
        let correct = completions.iter().filter(|c| c.correct).count();
        // Per-completion hop accounting: for a fixed story every hop of a
        // run spends the same addressing/read/controller cycles, so the
        // per-hop cost divides exactly and the saved-cycle figure is an
        // exact count, not an estimate.
        let mut prune = HopPruneReport {
            enabled: self.config.hop_prune.enabled,
            threshold: self.config.hop_prune.threshold,
            ..HopPruneReport::default()
        };
        for c in completions {
            prune.hops_executed += c.run.hops_executed as u64;
            prune.hops_saved += c.run.hops_saved as u64;
            prune.vetoes += c.run.prune_vetoes as u64;
            if c.run.hops_saved > 0 {
                prune.pruned_completions += 1;
                let hop_cycles =
                    (c.run.phases.addressing + c.run.phases.read + c.run.phases.controller).get();
                // With the candidate index armed, hops inside one run can
                // scan different candidate counts, so the per-hop figure
                // below is a mean rather than an exact per-hop cost.
                if !self.config.mem_index.enabled {
                    debug_assert_eq!(hop_cycles % c.run.hops_executed as u64, 0);
                }
                prune.cycles_saved +=
                    hop_cycles / c.run.hops_executed as u64 * c.run.hops_saved as u64;
            }
        }
        prune.energy_saved_j = self.config.power.active_energy_j(
            self.config.clock.freq_mhz(),
            self.config.clock.seconds(Cycles::new(prune.cycles_saved)),
        );
        // A disabled report stays `IndexReport::default()` (not a config
        // echo), so structs parsed from pre-index golden JSON — where the
        // key is absent and deserialization falls back to the default —
        // compare equal to freshly built ones.
        let mut index = IndexReport::default();
        if self.config.mem_index.enabled {
            index.enabled = true;
            index.k = self.config.mem_index.k;
            index.nprobe = self.config.mem_index.nprobe;
            index.band = self.config.mem_index.band;
            for c in completions {
                index.scanned_slots += c.run.index.scanned_slots;
                index.skipped_slots += c.run.index.skipped_slots;
                index.fallbacks += c.run.index.fallbacks;
                index.build_cycles += c.run.index.build_cycles;
                index.cycles_saved += c.run.index.cycles_saved;
            }
            index.energy_saved_j = self.config.power.active_energy_j(
                self.config.clock.freq_mhz(),
                self.config.clock.seconds(Cycles::new(index.cycles_saved)),
            );
        }
        ServeReport {
            requests: trace.requests.len(),
            completed: completions.len(),
            rejected: rejections.len(),
            accuracy: if completions.is_empty() {
                0.0
            } else {
                correct as f64 / completions.len() as f64
            },
            makespan_s,
            throughput_rps: if makespan_s > 0.0 {
                completions.len() as f64 / makespan_s
            } else {
                0.0
            },
            latency: LatencySummary::from_latencies(&latencies),
            mean_queue_wait_s,
            max_queue_depth,
            instances,
            link: LinkReport {
                grants: arb.grants(),
                bytes: arb.bytes_moved(),
                busy_s: arb.busy_time().as_s(),
                utilization: if makespan_s > 0.0 {
                    (arb.busy_time().as_s() / makespan_s).clamp(0.0, 1.0)
                } else {
                    0.0
                },
            },
            cache,
            phase_totals: completions.iter().map(|c| c.run.phases).sum(),
            speculated: completions.iter().filter(|c| c.run.speculated).count(),
            total_energy_j,
            setup_s: self.setup_time_s(),
            answers_digest: answers_digest(
                completions.iter().map(|c| (c.request.id, c.run.answer)),
            ),
            fault,
            numeric,
            batch,
            prune,
            index,
            // The durable driver (`crate::store`) patches this section in
            // after persisting the journal; the pure serve never fills it.
            durability: DurabilityReport::default(),
            fail_stopped: self.config.fail_stop.is_some(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TraceConfig;
    use mann_babi::TaskId;
    use mann_core::SuiteConfig;

    fn suite() -> TaskSuite {
        let cfg = SuiteConfig {
            tasks: vec![TaskId::SingleSupportingFact, TaskId::AgentMotivations],
            train_samples: 100,
            test_samples: 12,
            seed: 5,
            ..SuiteConfig::quick()
        };
        TaskSuite::build(&cfg)
    }

    fn trace(suite: &TaskSuite, requests: usize) -> ArrivalTrace {
        ArrivalTrace::generate(
            &TraceConfig {
                requests,
                seed: 11,
                mean_interarrival_s: 150e-6,
                ..TraceConfig::default()
            },
            suite,
        )
    }

    #[test]
    fn serves_every_request_with_monotone_timelines() {
        let s = suite();
        let server = Server::new(&s, ServeConfig::default());
        let t = trace(&s, 64);
        let out = server.serve(&t);
        assert_eq!(out.completions.len(), 64);
        assert!(out.rejections.is_empty());
        for c in &out.completions {
            assert!(c.timestamps.is_monotone());
            assert!(c.instance < server.config().instances);
            assert!(c.timestamps.latency() > SimTime::ZERO);
        }
        // Ids stay in order.
        assert!(out
            .completions
            .windows(2)
            .all(|w| w[0].request.id < w[1].request.id));
        let r = &out.report;
        assert_eq!(r.completed, 64);
        assert!(r.makespan_s > 0.0 && r.throughput_rps > 0.0);
        assert!(r.latency.p50_s <= r.latency.p99_s);
        assert!(r.total_energy_j > 0.0);
        assert!(r.setup_s > 0.0);
        assert_eq!(r.instances.len(), 2);
        // Both instances did work under shortest-queue at this load.
        assert!(r.instances.iter().all(|i| i.completed > 0));
        // Every drain crossed the link, plus at least one upload grant.
        assert!(r.link.grants > 64);
        assert!(r.link.utilization > 0.0 && r.link.utilization <= 1.0);
        // Cache accounting is coherent: every completion was admitted once.
        assert_eq!(r.cache.hits + r.cache.misses, 64);
        assert_eq!(
            r.instances.iter().map(|i| i.cache_hits).sum::<u64>(),
            r.cache.hits
        );
        // 24 test samples, 64 draws: repeats are certain, and with capacity
        // 16 per instance the cache must convert some into hits.
        assert!(r.cache.unique_stories <= 24);
        assert!(r.cache.hits > 0);
        assert!(r.cache.write_cycles_saved > 0);
        assert!(r.cache.upload_bytes_saved > 0);
        assert!(r.cache.write_energy_saved_j > 0.0);
    }

    #[test]
    fn serve_is_deterministic() {
        let s = suite();
        let server = Server::new(&s, ServeConfig::default());
        let t = trace(&s, 48);
        let a = server.serve(&t);
        let b = server.serve(&t);
        assert_eq!(a, b);
        assert_eq!(
            serde_json::to_string(&a.report).unwrap(),
            serde_json::to_string(&b.report).unwrap()
        );
    }

    #[test]
    fn serial_and_parallel_engines_agree_bit_for_bit() {
        let s = suite();
        let t = trace(&s, 48);
        let serve_with = |engine| {
            let server = Server::new(
                &s,
                ServeConfig {
                    engine,
                    ..ServeConfig::default()
                },
            );
            server.serve(&t)
        };
        let serial = serve_with(EngineMode::Serial);
        let parallel = serve_with(EngineMode::Parallel);
        assert_eq!(serial, parallel);
        assert_eq!(
            serde_json::to_string(&serial.report).unwrap(),
            serde_json::to_string(&parallel.report).unwrap()
        );
    }

    #[test]
    fn cache_off_matches_standalone_runs_exactly() {
        let s = suite();
        let server = Server::new(
            &s,
            ServeConfig {
                story_cache: 0,
                ..ServeConfig::default()
            },
        );
        let t = trace(&s, 32);
        let out = server.serve(&t);
        assert_eq!(out.report.cache.hits, 0);
        assert_eq!(out.report.cache.capacity, 0);
        for c in &out.completions {
            let sample = &s.tasks[c.request.task_idx].test_set[c.request.sample_idx];
            let direct = server.accelerator(c.request.task_idx).run(sample);
            assert_eq!(c.run, direct);
        }
    }

    #[test]
    fn cache_hits_change_write_phase_only() {
        let s = suite();
        let server = Server::new(&s, ServeConfig::default());
        let t = trace(&s, 64);
        let out = server.serve(&t);
        let hits = out.completions.iter().filter(|c| c.run.cache_hit).count();
        assert!(hits > 0, "no cache hits in a repeat-heavy trace");
        for c in &out.completions {
            let sample = &s.tasks[c.request.task_idx].test_set[c.request.sample_idx];
            let direct = server.accelerator(c.request.task_idx).run(sample);
            assert_eq!(c.run.answer, direct.answer);
            assert_eq!(c.run.comparisons, direct.comparisons);
            assert_eq!(c.run.phases.addressing, direct.phases.addressing);
            assert_eq!(c.run.phases.read, direct.phases.read);
            assert_eq!(c.run.phases.controller, direct.phases.controller);
            assert_eq!(c.run.phases.output, direct.phases.output);
            if c.run.cache_hit {
                assert!(c.run.phases.write < direct.phases.write);
                assert!(c.run.interface_s < direct.interface_s);
            } else {
                assert_eq!(c.run, direct);
            }
        }
    }

    #[test]
    fn story_affinity_beats_shortest_queue_on_hits() {
        let s = suite();
        // Few stories, many questions: residency matters.
        let t = ArrivalTrace::generate(
            &TraceConfig {
                requests: 96,
                seed: 17,
                mean_interarrival_s: 120e-6,
                story_pool: 3,
            },
            &s,
        );
        let serve_with = |policy| {
            let server = Server::new(
                &s,
                ServeConfig {
                    instances: 3,
                    story_cache: 2,
                    policy,
                    ..ServeConfig::default()
                },
            );
            server.serve(&t).report
        };
        let sq = serve_with(SchedulePolicy::ShortestQueue);
        let af = serve_with(SchedulePolicy::StoryAffinity);
        assert_eq!(sq.answers_digest, af.answers_digest);
        assert!(
            af.cache.hits > sq.cache.hits,
            "affinity hits {} !> shortest-queue hits {}",
            af.cache.hits,
            sq.cache.hits
        );
    }

    #[test]
    fn tiny_queue_rejects_under_burst() {
        let s = suite();
        let server = Server::new(
            &s,
            ServeConfig {
                instances: 1,
                queue_capacity: 2,
                ..ServeConfig::default()
            },
        );
        // A burst: everything arrives nearly at once.
        let t = ArrivalTrace::generate(
            &TraceConfig {
                requests: 40,
                seed: 3,
                mean_interarrival_s: 1e-9,
                ..TraceConfig::default()
            },
            &s,
        );
        let out = server.serve(&t);
        assert!(!out.rejections.is_empty(), "no backpressure under burst");
        assert_eq!(out.completions.len() + out.rejections.len(), 40);
        assert_eq!(out.report.rejected, out.rejections.len());
        for r in &out.rejections {
            assert_eq!(r.queue_depth, 2);
        }
        // Rejected ids are absent from completions.
        let done: std::collections::HashSet<u64> =
            out.completions.iter().map(|c| c.request.id).collect();
        assert!(out.rejections.iter().all(|r| !done.contains(&r.request.id)));
    }

    #[test]
    fn more_instances_reduce_tail_latency() {
        let s = suite();
        // A near-simultaneous burst on a fast link, so the fabric compute
        // time — not the shared-link serialization — is the bottleneck and
        // replication can actually help. Caching off keeps service times
        // instance-independent for a clean comparison.
        let t = ArrivalTrace::generate(
            &TraceConfig {
                requests: 96,
                seed: 13,
                mean_interarrival_s: 1e-9,
                ..TraceConfig::default()
            },
            &s,
        );
        let fast_link = mann_hw::PcieLink {
            bandwidth_bytes_per_s: 1.5e9,
            latency_per_transfer_s: 1e-6,
        };
        let serve = |instances: usize| {
            let server = Server::new(
                &s,
                ServeConfig {
                    instances,
                    queue_capacity: 256,
                    story_cache: 0,
                    pcie: fast_link,
                    ..ServeConfig::default()
                },
            );
            server.serve(&t).report
        };
        let one = serve(1);
        let four = serve(4);
        assert!(
            four.latency.p99_s < one.latency.p99_s,
            "p99 {} !< {} with 4x instances",
            four.latency.p99_s,
            one.latency.p99_s
        );
        assert!(
            four.makespan_s < 0.6 * one.makespan_s,
            "makespan {} !< 0.6 * {}",
            four.makespan_s,
            one.makespan_s
        );
        // Replication never changes an answer.
        assert_eq!(one.answers_digest, four.answers_digest);
    }

    #[test]
    fn caching_improves_throughput_under_story_reuse() {
        let s = suite();
        let t = ArrivalTrace::generate(
            &TraceConfig {
                requests: 128,
                seed: 23,
                mean_interarrival_s: 1e-9,
                story_pool: 4,
            },
            &s,
        );
        let serve_with = |story_cache| {
            let server = Server::new(
                &s,
                ServeConfig {
                    queue_capacity: 256,
                    story_cache,
                    policy: SchedulePolicy::StoryAffinity,
                    ..ServeConfig::default()
                },
            );
            server.serve(&t).report
        };
        let cold = serve_with(0);
        let warm = serve_with(8);
        assert_eq!(cold.answers_digest, warm.answers_digest);
        assert!(warm.cache.hits > 0);
        assert!(
            warm.makespan_s < cold.makespan_s,
            "warm {} !< cold {}",
            warm.makespan_s,
            cold.makespan_s
        );
    }

    #[test]
    fn policies_agree_on_answers_but_may_differ_in_timing() {
        let s = suite();
        let t = trace(&s, 48);
        let serve_with = |policy| {
            let server = Server::new(
                &s,
                ServeConfig {
                    instances: 3,
                    policy,
                    ..ServeConfig::default()
                },
            );
            server.serve(&t)
        };
        let rr = serve_with(SchedulePolicy::RoundRobin);
        let sq = serve_with(SchedulePolicy::ShortestQueue);
        let af = serve_with(SchedulePolicy::StoryAffinity);
        assert_eq!(rr.report.answers_digest, sq.report.answers_digest);
        assert_eq!(rr.report.completed, sq.report.completed);
        assert_eq!(sq.report.answers_digest, af.report.answers_digest);
    }

    #[test]
    fn empty_trace_yields_empty_report() {
        let s = suite();
        let server = Server::new(&s, ServeConfig::default());
        let t = ArrivalTrace {
            requests: Vec::new(),
            config: TraceConfig::default(),
        };
        let out = server.serve(&t);
        assert!(out.completions.is_empty());
        assert_eq!(out.report.makespan_s, 0.0);
        assert_eq!(out.report.total_energy_j, 0.0);
        assert_eq!(out.report.cache.hits + out.report.cache.misses, 0);
    }

    #[test]
    fn numeric_ignore_emits_no_key_and_flag_is_clean_at_babi_scale() {
        let s = suite();
        let t = trace(&s, 16);
        let out = Server::new(&s, ServeConfig::default()).serve(&t);
        assert!(!out.report.numeric.enabled);
        assert!(
            !serde_json::to_string(&out.report)
                .unwrap()
                .contains("\"numeric\""),
            "ignore policy must not emit the numeric key"
        );
        // A flag policy on the clean suite publishes the section but every
        // counter is zero and no answer moves.
        let flagged = Server::new(
            &s,
            ServeConfig {
                numeric_policy: NumericPolicy::Flag,
                ..ServeConfig::default()
            },
        )
        .serve(&t);
        let nh = &flagged.report.numeric;
        assert!(nh.enabled);
        assert_eq!(nh.policy, "flag");
        assert_eq!((nh.flagged, nh.vetoed, nh.failed_over), (0, 0, 0));
        assert!(nh.histogram.is_clean());
        assert_eq!(flagged.report.answers_digest, out.report.answers_digest);
        assert!(flagged.completions.iter().all(|c| !c.numeric_flagged));
    }

    #[test]
    fn failover_reroutes_stressed_completions_to_the_reference_model() {
        let s = suite().with_embedding_scale(f32::MAX);
        let t = trace(&s, 24);
        let serve_with = |numeric_policy| {
            Server::new(
                &s,
                ServeConfig {
                    use_ith: true,
                    numeric_policy,
                    ..ServeConfig::default()
                },
            )
            .serve(&t)
        };
        let flagged = serve_with(NumericPolicy::Flag);
        let nh = &flagged.report.numeric;
        assert!(nh.flagged > 0, "stress campaign produced no flags");
        assert!(nh.histogram.add_sat > 0 && nh.histogram.mul_sat > 0);
        assert!(nh.histogram.nan_boundary > 0, "±inf weights at load");
        assert_eq!(nh.failed_over, 0, "flag policy must not fail over");
        assert_eq!(nh.failover_cycles, 0);

        let failover = serve_with(NumericPolicy::Failover);
        let nf = &failover.report.numeric;
        assert_eq!(nf.flagged, nh.flagged, "same flags, different response");
        assert_eq!(nf.failed_over, nf.flagged);
        assert!(nf.failover_cycles > 0 && nf.failover_energy_j > 0.0);
        for c in &failover.completions {
            if c.failed_over {
                let sample = &s.tasks[c.request.task_idx].test_set[c.request.sample_idx];
                assert_eq!(
                    c.run.answer,
                    s.tasks[c.request.task_idx].model.predict(sample),
                    "failover answer must come from the f32 reference"
                );
                assert!(c.numeric_flagged);
            }
        }
    }

    #[test]
    fn numeric_health_is_engine_invariant_under_stress() {
        let s = suite().with_embedding_scale(f32::MAX);
        let t = trace(&s, 24);
        let serve_with = |engine| {
            Server::new(
                &s,
                ServeConfig {
                    engine,
                    use_ith: true,
                    numeric_policy: NumericPolicy::Failover,
                    ..ServeConfig::default()
                },
            )
            .serve(&t)
        };
        let serial = serve_with(EngineMode::Serial);
        let parallel = serve_with(EngineMode::Parallel);
        assert_eq!(serial, parallel);
        assert_eq!(
            serde_json::to_string(&serial.report).unwrap(),
            serde_json::to_string(&parallel.report).unwrap()
        );
    }

    #[test]
    fn seu_scrubs_do_not_double_count_numeric_events() {
        // An SEU-poisoned story is repaired by re-writing the *same*
        // numeric-phase story: the scrub costs cycles in the fault report,
        // but the story's saturation events are counted once per
        // completion either way.
        let s = suite().with_embedding_scale(f32::MAX);
        let t = trace(&s, 32);
        let serve_with = |faults| {
            Server::new(
                &s,
                ServeConfig {
                    numeric_policy: NumericPolicy::Flag,
                    faults,
                    ..ServeConfig::default()
                },
            )
            .serve(&t)
        };
        let clean = serve_with(FaultConfig::none());
        let seus = serve_with(FaultConfig {
            seed: 9,
            seus: 8,
            ..FaultConfig::none()
        });
        assert!(seus.report.fault.seu_events > 0);
        assert_eq!(
            clean.report.numeric, seus.report.numeric,
            "scrub re-writes leaked into the numeric section"
        );
    }

    /// A burst of same-story questions against one instance over a fast
    /// link: uploads outrun the fabric, the ready FIFO backs up, and the
    /// batcher has real groups to fuse.
    fn reuse_trace(s: &TaskSuite) -> ArrivalTrace {
        ArrivalTrace::generate(
            &TraceConfig {
                requests: 96,
                seed: 23,
                mean_interarrival_s: 1e-9,
                story_pool: 3,
            },
            s,
        )
    }

    fn batched_config(window: usize) -> ServeConfig {
        ServeConfig {
            queue_capacity: 256,
            story_cache: 4,
            // Deep input FIFOs: groups can only form from requests already
            // buffered behind the computing one.
            inflight_limit: 8,
            policy: SchedulePolicy::StoryAffinity,
            pcie: mann_hw::PcieLink {
                bandwidth_bytes_per_s: 1.5e9,
                latency_per_transfer_s: 1e-6,
            },
            batch_window: window,
            ..ServeConfig::default()
        }
    }

    #[test]
    fn batch_window_zero_and_one_are_byte_identical() {
        let s = suite();
        let t = reuse_trace(&s);
        let off = Server::new(&s, batched_config(0)).serve(&t);
        let one = Server::new(&s, batched_config(1)).serve(&t);
        assert_eq!(off.completions, one.completions);
        assert_eq!(off.rejections, one.rejections);
        // Window 0 and 1 differ only in the (disabled) config echo; the
        // emitted JSON must be byte-identical, and neither lever key may
        // appear with the levers off.
        let j0 = serde_json::to_string(&off.report).unwrap();
        let j1 = serde_json::to_string(&one.report).unwrap();
        assert!(!j0.contains("\"batch\""), "disabled batching emitted a key");
        assert!(!j0.contains("\"prune\""), "disabled pruning emitted a key");
        assert_eq!(j0, j1);
    }

    #[test]
    fn batched_compute_fuses_groups_without_changing_answers() {
        let s = suite();
        let t = reuse_trace(&s);
        let unbatched = Server::new(&s, batched_config(0)).serve(&t);
        let batched = Server::new(&s, batched_config(4)).serve(&t);
        let b = &batched.report.batch;
        assert!(b.enabled);
        assert_eq!(b.window, 4);
        assert!(b.fused_groups > 0, "burst trace formed no fused group");
        assert!(b.batched_requests > b.groups, "no group exceeded size 1");
        // The histogram partitions the groups and never exceeds the window.
        assert_eq!(b.size_histogram.iter().sum::<u64>(), b.groups);
        assert!(b.size_histogram.len() <= 4);
        let by_size: u64 = b
            .size_histogram
            .iter()
            .enumerate()
            .map(|(i, &n)| (i as u64 + 1) * n)
            .sum();
        assert_eq!(by_size, b.batched_requests);
        assert!(b.cycles_saved > 0 && b.energy_saved_j > 0.0);
        // Fusing dedups stream cycles; it never touches a datapath result.
        // (Write/control totals may drift: earlier compute completions
        // shift dispatch timing and with it the hit/miss split.)
        assert_eq!(
            unbatched.report.answers_digest,
            batched.report.answers_digest
        );
        let (u, f) = (unbatched.report.phase_totals, batched.report.phase_totals);
        assert_eq!(u.addressing, f.addressing);
        assert_eq!(u.read, f.read);
        assert_eq!(u.controller, f.controller);
        assert_eq!(u.output, f.output);
        assert_eq!(unbatched.report.accuracy, batched.report.accuracy);
        assert!(
            batched.report.makespan_s < unbatched.report.makespan_s,
            "batched {} !< unbatched {}",
            batched.report.makespan_s,
            unbatched.report.makespan_s
        );
    }

    #[test]
    fn batched_and_pruned_serve_is_engine_invariant() {
        let s = suite();
        let t = reuse_trace(&s);
        let serve_with = |engine| {
            Server::new(
                &s,
                ServeConfig {
                    engine,
                    hop_prune: HopPrune::with_threshold(0.5),
                    ..batched_config(4)
                },
            )
            .serve(&t)
        };
        let serial = serve_with(EngineMode::Serial);
        let parallel = serve_with(EngineMode::Parallel);
        assert_eq!(serial, parallel);
        assert_eq!(
            serde_json::to_string(&serial.report).unwrap(),
            serde_json::to_string(&parallel.report).unwrap()
        );
        let p = &serial.report.prune;
        assert!(p.enabled);
        assert!(p.hops_executed > 0);
        assert!(
            serde_json::to_string(&serial.report)
                .unwrap()
                .contains("\"prune\""),
            "enabled pruning must publish its section"
        );
    }

    #[test]
    fn disabled_index_emits_no_key_and_changes_nothing() {
        let s = suite();
        let t = trace(&s, 24);
        let off = Server::new(&s, ServeConfig::default()).serve(&t);
        assert!(!off.report.index.enabled);
        assert_eq!(off.report.index, IndexReport::default());
        assert!(
            !serde_json::to_string(&off.report)
                .unwrap()
                .contains("\"index\""),
            "disabled index emitted a key"
        );
        // An explicit `enabled: false` config is byte-identical to the
        // default: the index is inert until armed.
        let explicit = Server::new(
            &s,
            ServeConfig {
                mem_index: MemIndexConfig {
                    enabled: false,
                    k: 32,
                    nprobe: 4,
                    band: 0.5,
                },
                ..ServeConfig::default()
            },
        )
        .serve(&t);
        assert_eq!(off.completions, explicit.completions);
        assert_eq!(
            serde_json::to_string(&off.report).unwrap(),
            serde_json::to_string(&explicit.report).unwrap()
        );
    }

    #[test]
    fn indexed_serve_is_engine_invariant_and_publishes_counters() {
        let s = suite();
        let t = trace(&s, 32);
        let serve_with = |engine| {
            Server::new(
                &s,
                ServeConfig {
                    engine,
                    mem_index: MemIndexConfig::with_params(4, 2, 0.0),
                    ..ServeConfig::default()
                },
            )
            .serve(&t)
        };
        let serial = serve_with(EngineMode::Serial);
        let parallel = serve_with(EngineMode::Parallel);
        assert_eq!(serial, parallel);
        assert_eq!(
            serde_json::to_string(&serial.report).unwrap(),
            serde_json::to_string(&parallel.report).unwrap()
        );
        let i = &serial.report.index;
        assert!(i.enabled);
        assert_eq!((i.k, i.nprobe), (4, 2));
        assert!(i.build_cycles > 0, "no centroid construction charged");
        assert!(i.scanned_slots > 0);
        assert_eq!(
            i.scanned_slots + i.skipped_slots,
            serial
                .completions
                .iter()
                .map(|c| {
                    let sample = &s.tasks[c.request.task_idx].test_set[c.request.sample_idx];
                    (sample.sentences.len() * c.run.hops_executed) as u64
                })
                .sum::<u64>(),
            "scanned + skipped must partition story slots x hops"
        );
        assert!(
            serde_json::to_string(&serial.report)
                .unwrap()
                .contains("\"index\""),
            "armed index must publish its section"
        );
        let _ = serial.report.render();
    }

    #[test]
    fn full_fallback_index_matches_unindexed_answers_exactly() {
        let s = suite();
        let t = trace(&s, 24);
        let plain = Server::new(&s, ServeConfig::default()).serve(&t);
        // A huge band forces every hop back to the exact scan: answers,
        // comparisons and the digest are untouched; only timing moves.
        let fb = Server::new(
            &s,
            ServeConfig {
                mem_index: MemIndexConfig::with_params(4, 2, 1e9),
                ..ServeConfig::default()
            },
        )
        .serve(&t);
        assert_eq!(plain.report.answers_digest, fb.report.answers_digest);
        assert_eq!(plain.report.accuracy, fb.report.accuracy);
        let i = &fb.report.index;
        assert!(i.fallbacks > 0);
        assert_eq!(i.skipped_slots, 0, "fallback hops skip nothing");
        assert_eq!(i.cycles_saved, 0);
        for (p, f) in plain.completions.iter().zip(&fb.completions) {
            assert_eq!(p.run.answer, f.run.answer);
            assert_eq!(p.run.comparisons, f.run.comparisons);
        }
    }

    #[test]
    fn aggressive_pruning_prunes_every_unvetoed_completion() {
        let s = suite();
        let t = trace(&s, 24);
        // Attention sums to 1, so a tiny threshold fires on every hop
        // boundary: each completion either prunes or is vetoed.
        let out = Server::new(
            &s,
            ServeConfig {
                hop_prune: HopPrune::with_threshold(0.001),
                ..ServeConfig::default()
            },
        )
        .serve(&t);
        let p = &out.report.prune;
        assert!(p.hops_saved > 0, "aggressive threshold saved nothing");
        assert!(p.cycles_saved > 0 && p.energy_saved_j > 0.0);
        assert_eq!(
            p.pruned_completions + p.vetoes,
            out.report.completed as u64,
            "every completion must prune or veto at threshold 0.001"
        );
        // The render path covers the all-pruned shape without panicking.
        let _ = out.report.render();
    }

    #[test]
    fn single_request_campaign_has_degenerate_percentiles() {
        let s = suite();
        let t = trace(&s, 1);
        let out = Server::new(
            &s,
            ServeConfig {
                hop_prune: HopPrune::with_threshold(0.001),
                ..batched_config(8)
            },
        )
        .serve(&t);
        assert_eq!(out.report.completed, 1);
        let l = &out.report.latency;
        assert_eq!(l.p50_s, l.p99_s);
        assert_eq!(l.p50_s, l.max_s);
        assert!(l.p50_s > 0.0);
        // A lone request forms a group of one: nothing fused, nothing saved.
        assert_eq!(out.report.batch.fused_groups, 0);
        assert_eq!(out.report.batch.cycles_saved, 0);
        let _ = out.report.render();
    }

    #[test]
    #[should_panic(expected = "invalid serve config")]
    fn zero_instances_rejected() {
        let s = suite();
        let _ = Server::new(
            &s,
            ServeConfig {
                instances: 0,
                ..ServeConfig::default()
            },
        );
    }
}
