//! The serving engine: a deterministic discrete-event simulation of N
//! replicated accelerator instances behind one bounded host queue and one
//! shared PCIe link.
//!
//! # Determinism
//!
//! Two properties are load-bearing and pinned by the test suite:
//!
//! * **Thread independence.** The numeric work (every request's
//!   [`InferenceRun`]) is precomputed on the work-stealing pool of
//!   `mann_core::parallel` — claimed in any order, accumulated in request
//!   order — so the inputs to the event loop are identical for any
//!   `MANN_THREADS`. The event loop itself is sequential, with integer
//!   picosecond timestamps and a submission-order tie-break, so the whole
//!   serve replays byte-identically for any worker count.
//! * **Orchestration purity.** The server only *schedules*; answers,
//!   logits, cycle counts and comparisons come from the same
//!   [`Accelerator::run`] a standalone pipeline would call. Serving on 1 or
//!   100 instances cannot change a single numeric result.

use std::collections::{BinaryHeap, VecDeque};

use mann_core::TaskSuite;
use mann_hw::{
    AccelConfig, Accelerator, ClockDomain, InferenceRun, LinkArbiter, PcieLink, PowerModel, SimTime,
};
use serde::{Deserialize, Serialize};

use crate::report::{answers_digest, InstanceReport, LatencySummary, LinkReport, ServeReport};
use crate::request::{Completion, Rejection, RequestTimestamps};
use crate::scheduler::{InstanceView, Scheduler};
use crate::trace::ArrivalTrace;
use crate::SchedulePolicy;

/// Serving-layer configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServeConfig {
    /// Replicated accelerator instances sharing the link.
    pub instances: usize,
    /// Host queue capacity; arrivals beyond it are rejected.
    pub queue_capacity: usize,
    /// Max requests dispatched to one instance and not yet computed
    /// (1 computing + the rest buffered in its input FIFO).
    pub inflight_limit: usize,
    /// Max story uploads packed into one link grant (batching amortizes
    /// the per-transfer driver latency).
    pub upload_batch: usize,
    /// Instance-selection policy.
    pub policy: SchedulePolicy,
    /// Fabric clock of every instance.
    pub clock: ClockDomain,
    /// Shared host-link model.
    pub pcie: PcieLink,
    /// Per-instance power model.
    pub power: PowerModel,
    /// Load each task's calibrated thresholds (ITH early exit).
    pub use_ith: bool,
    /// Probe output rows in silhouette order when ITH is on.
    pub use_ordering: bool,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            instances: 2,
            queue_capacity: 64,
            inflight_limit: 2,
            upload_batch: 4,
            policy: SchedulePolicy::default(),
            clock: ClockDomain::default(),
            pcie: PcieLink::default(),
            power: PowerModel::default(),
            use_ith: false,
            use_ordering: true,
        }
    }
}

impl ServeConfig {
    /// Checks structural validity.
    ///
    /// # Errors
    ///
    /// Returns a description of the first invalid field.
    pub fn validate(&self) -> Result<(), String> {
        if self.instances == 0 {
            return Err("need at least one accelerator instance".into());
        }
        if self.queue_capacity == 0 {
            return Err("host queue capacity must be positive".into());
        }
        if self.inflight_limit == 0 {
            return Err("inflight limit must be positive".into());
        }
        if self.upload_batch == 0 {
            return Err("upload batch must be positive".into());
        }
        Ok(())
    }
}

/// Everything a served trace produces.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServeOutcome {
    /// Completed requests, in request-id order.
    pub completions: Vec<Completion>,
    /// Rejected requests, in arrival order.
    pub rejections: Vec<Rejection>,
    /// The aggregate report.
    pub report: ServeReport,
}

/// A multi-tenant server over a trained suite.
///
/// One [`Accelerator`] is loaded per task (the tenant's bitstream +
/// weights); the configured number of *instances* are scheduling replicas
/// of that loadout. Because replicas are numerically identical, the server
/// computes each request's [`InferenceRun`] once and lets the event loop
/// treat instances as pure timing resources.
#[derive(Debug)]
pub struct Server<'a> {
    suite: &'a TaskSuite,
    accels: Vec<Accelerator>,
    config: ServeConfig,
}

/// Event-queue entry; total order = (time, scheduling sequence).
struct Entry {
    time: SimTime,
    seq: u64,
    event: Event,
}

enum Event {
    Arrival(usize),
    LinkDone(u64),
    ComputeDone { instance: usize, req: usize },
}

impl PartialEq for Entry {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl Eq for Entry {}
impl PartialOrd for Entry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Entry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // BinaryHeap is a max-heap; reverse for earliest-first.
        (other.time, other.seq).cmp(&(self.time, self.seq))
    }
}

enum LinkJob {
    Upload { instance: usize, reqs: Vec<usize> },
    Drain { req: usize },
}

#[derive(Debug, Default, Clone)]
struct Inst {
    inflight: usize,
    free_at: SimTime,
    ready: VecDeque<usize>,
    computing: Option<usize>,
    busy: SimTime,
    completed: u64,
}

impl<'a> Server<'a> {
    /// Loads every task of `suite` under `config`.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid or the suite is empty.
    pub fn new(suite: &'a TaskSuite, config: ServeConfig) -> Self {
        config
            .validate()
            .unwrap_or_else(|e| panic!("invalid serve config: {e}"));
        assert!(!suite.tasks.is_empty(), "server needs at least one task");
        let accels = suite
            .tasks
            .iter()
            .map(|t| {
                Accelerator::new(
                    t.model.clone(),
                    AccelConfig {
                        clock: config.clock,
                        pcie: config.pcie,
                        power: config.power,
                        ith: config.use_ith.then(|| t.ith.clone()),
                        use_ordering: config.use_ordering,
                        ..AccelConfig::default()
                    },
                )
            })
            .collect();
        Self {
            suite,
            accels,
            config,
        }
    }

    /// The active configuration.
    pub fn config(&self) -> &ServeConfig {
        &self.config
    }

    /// The accelerator loadout for tenant `task_idx`.
    pub fn accelerator(&self, task_idx: usize) -> &Accelerator {
        &self.accels[task_idx]
    }

    /// One-time cost of shipping every tenant's weights to every instance
    /// over the (serial) link — paid before traffic starts, reported as
    /// `setup_s`, not folded into per-request latency.
    pub fn setup_time_s(&self) -> f64 {
        let per_instance: f64 = self
            .accels
            .iter()
            .map(|a| self.config.pcie.model_upload_time_s(a.model_bytes()))
            .sum();
        per_instance * self.config.instances as f64
    }

    /// Serves `trace`, returning per-request completions, rejections and
    /// the aggregate report.
    ///
    /// # Panics
    ///
    /// Panics if a request references a task or sample outside the suite.
    pub fn serve(&self, trace: &ArrivalTrace) -> ServeOutcome {
        let n = trace.requests.len();
        for r in &trace.requests {
            assert!(
                r.task_idx < self.suite.tasks.len(),
                "request {} task out of range",
                r.id
            );
            assert!(
                r.sample_idx < self.suite.tasks[r.task_idx].test_set.len(),
                "request {} sample out of range",
                r.id
            );
        }

        // ----- numeric phase (parallel, order-preserving) ---------------
        let runs: Vec<InferenceRun> = mann_core::parallel::parallel_map_indexed(
            n,
            mann_core::parallel::worker_threads(n),
            |i| {
                let r = &trace.requests[i];
                let sample = &self.suite.tasks[r.task_idx].test_set[r.sample_idx];
                self.accels[r.task_idx].run(sample)
            },
        );
        let durations: Vec<SimTime> = runs
            .iter()
            .map(|run| run.compute_time(self.config.clock))
            .collect();
        let upload_bytes: Vec<u64> = trace
            .requests
            .iter()
            .map(|r| {
                let sample = &self.suite.tasks[r.task_idx].test_set[r.sample_idx];
                PcieLink::input_bytes(Accelerator::input_words(sample))
            })
            .collect();

        // ----- event loop (sequential, integer time) --------------------
        let mut heap: BinaryHeap<Entry> = BinaryHeap::new();
        let mut seq = 0u64;
        for (i, r) in trace.requests.iter().enumerate() {
            heap.push(Entry {
                time: r.arrival,
                seq,
                event: Event::Arrival(i),
            });
            seq += 1;
        }

        let mut queue: VecDeque<usize> = VecDeque::new();
        let mut insts = vec![Inst::default(); self.config.instances];
        let mut arb = LinkArbiter::new(self.config.pcie);
        let mut jobs: Vec<LinkJob> = Vec::new();
        let mut scheduler = Scheduler::new(self.config.policy);
        let mut ts = vec![RequestTimestamps::default(); n];
        let mut assigned = vec![usize::MAX; n];
        let mut rejections: Vec<Rejection> = Vec::new();
        let mut max_queue_depth = 0usize;
        let mut last_drain = SimTime::ZERO;

        // Moves as many queued requests as credits allow onto the link.
        macro_rules! dispatch {
            ($now:expr) => {
                loop {
                    if queue.is_empty() {
                        break;
                    }
                    let views: Vec<InstanceView> = insts
                        .iter()
                        .map(|inst| InstanceView {
                            inflight: inst.inflight,
                            credits: self.config.inflight_limit - inst.inflight,
                            free_at: inst.free_at,
                        })
                        .collect();
                    let Some(target) = scheduler.pick(&views) else {
                        break;
                    };
                    let credits = self.config.inflight_limit - insts[target].inflight;
                    let take = credits.min(self.config.upload_batch).min(queue.len());
                    let reqs: Vec<usize> = queue.drain(..take).collect();
                    let bytes: u64 = reqs.iter().map(|&r| upload_bytes[r]).sum();
                    for &r in &reqs {
                        ts[r].dispatch = $now;
                        assigned[r] = target;
                    }
                    insts[target].inflight += take;
                    let id = jobs.len() as u64;
                    jobs.push(LinkJob::Upload {
                        instance: target,
                        reqs,
                    });
                    arb.submit(id, bytes, take);
                }
            };
        }

        // Grants the head link job if the link is idle.
        macro_rules! grant {
            ($now:expr) => {
                if let Some(g) = arb.try_grant($now) {
                    match &jobs[g.id as usize] {
                        LinkJob::Upload { reqs, .. } => {
                            for &r in reqs {
                                ts[r].upload_start = g.start;
                            }
                        }
                        LinkJob::Drain { req } => ts[*req].drain_start = g.start,
                    }
                    heap.push(Entry {
                        time: g.end,
                        seq,
                        event: Event::LinkDone(g.id),
                    });
                    seq += 1;
                }
            };
        }

        // Starts the next ready request if the instance's fabric is idle.
        macro_rules! start_compute {
            ($i:expr, $now:expr) => {
                if insts[$i].computing.is_none() {
                    if let Some(r) = insts[$i].ready.pop_front() {
                        ts[r].compute_start = $now;
                        let end = $now + durations[r];
                        insts[$i].free_at = end;
                        insts[$i].busy += durations[r];
                        insts[$i].computing = Some(r);
                        heap.push(Entry {
                            time: end,
                            seq,
                            event: Event::ComputeDone {
                                instance: $i,
                                req: r,
                            },
                        });
                        seq += 1;
                    }
                }
            };
        }

        while let Some(Entry {
            time: now, event, ..
        }) = heap.pop()
        {
            match event {
                Event::Arrival(i) => {
                    if queue.len() >= self.config.queue_capacity {
                        rejections.push(Rejection {
                            request: trace.requests[i],
                            queue_depth: queue.len(),
                        });
                    } else {
                        ts[i].enqueue = now;
                        queue.push_back(i);
                        max_queue_depth = max_queue_depth.max(queue.len());
                        dispatch!(now);
                        grant!(now);
                    }
                }
                Event::LinkDone(id) => {
                    arb.complete(id);
                    match &jobs[id as usize] {
                        LinkJob::Upload { instance, reqs } => {
                            let instance = *instance;
                            for &r in reqs {
                                ts[r].upload_end = now;
                            }
                            let reqs = reqs.clone();
                            insts[instance].ready.extend(reqs);
                            start_compute!(instance, now);
                        }
                        LinkJob::Drain { req } => {
                            ts[*req].drain_end = now;
                            last_drain = last_drain.max(now);
                        }
                    }
                    grant!(now);
                }
                Event::ComputeDone { instance, req } => {
                    ts[req].compute_end = now;
                    insts[instance].computing = None;
                    insts[instance].inflight -= 1;
                    insts[instance].completed += 1;
                    let id = jobs.len() as u64;
                    jobs.push(LinkJob::Drain { req });
                    arb.submit(id, PcieLink::answer_bytes(), 1);
                    start_compute!(instance, now);
                    dispatch!(now);
                    grant!(now);
                }
            }
        }
        debug_assert!(queue.is_empty(), "event loop left work queued");
        debug_assert!(
            !arb.is_busy() && arb.pending_len() == 0,
            "link work stranded"
        );

        // ----- assemble outcome ----------------------------------------
        let rejected_ids: std::collections::HashSet<u64> =
            rejections.iter().map(|r| r.request.id).collect();
        let completions: Vec<Completion> = trace
            .requests
            .iter()
            .enumerate()
            .filter(|(_, r)| !rejected_ids.contains(&r.id))
            .map(|(i, r)| {
                debug_assert!(ts[i].is_monotone(), "request {} timeline broken", r.id);
                let sample = &self.suite.tasks[r.task_idx].test_set[r.sample_idx];
                Completion {
                    request: *r,
                    instance: assigned[i],
                    run: runs[i].clone(),
                    timestamps: ts[i],
                    correct: runs[i].answer == sample.answer,
                }
            })
            .collect();

        let report = self.build_report(
            trace,
            &completions,
            &rejections,
            &insts,
            &arb,
            last_drain,
            max_queue_depth,
        );
        ServeOutcome {
            completions,
            rejections,
            report,
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn build_report(
        &self,
        trace: &ArrivalTrace,
        completions: &[Completion],
        rejections: &[Rejection],
        insts: &[Inst],
        arb: &LinkArbiter,
        last_drain: SimTime,
        max_queue_depth: usize,
    ) -> ServeReport {
        let makespan_s = last_drain.as_s();
        let latencies: Vec<f64> = completions
            .iter()
            .map(|c| c.timestamps.latency().as_s())
            .collect();
        let mean_queue_wait_s = if completions.is_empty() {
            0.0
        } else {
            completions
                .iter()
                .map(|c| c.timestamps.queue_wait().as_s())
                .sum::<f64>()
                / completions.len() as f64
        };
        let instances: Vec<InstanceReport> = insts
            .iter()
            .enumerate()
            .map(|(i, inst)| {
                let busy_s = inst.busy.as_s();
                InstanceReport {
                    instance: i,
                    completed: inst.completed,
                    busy_s,
                    occupancy: if makespan_s > 0.0 {
                        (busy_s / makespan_s).clamp(0.0, 1.0)
                    } else {
                        0.0
                    },
                    energy_j: self.config.power.interval_energy_j(
                        self.config.clock.freq_mhz(),
                        busy_s,
                        makespan_s,
                        self.config.use_ith,
                    ),
                }
            })
            .collect();
        let total_energy_j = instances.iter().map(|i| i.energy_j).sum();
        let correct = completions.iter().filter(|c| c.correct).count();
        ServeReport {
            requests: trace.requests.len(),
            completed: completions.len(),
            rejected: rejections.len(),
            accuracy: if completions.is_empty() {
                0.0
            } else {
                correct as f64 / completions.len() as f64
            },
            makespan_s,
            throughput_rps: if makespan_s > 0.0 {
                completions.len() as f64 / makespan_s
            } else {
                0.0
            },
            latency: LatencySummary::from_latencies(&latencies),
            mean_queue_wait_s,
            max_queue_depth,
            instances,
            link: LinkReport {
                grants: arb.grants(),
                bytes: arb.bytes_moved(),
                busy_s: arb.busy_time().as_s(),
                utilization: if makespan_s > 0.0 {
                    (arb.busy_time().as_s() / makespan_s).clamp(0.0, 1.0)
                } else {
                    0.0
                },
            },
            phase_totals: completions.iter().map(|c| c.run.phases).sum(),
            speculated: completions.iter().filter(|c| c.run.speculated).count(),
            total_energy_j,
            setup_s: self.setup_time_s(),
            answers_digest: answers_digest(
                completions.iter().map(|c| (c.request.id, c.run.answer)),
            ),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TraceConfig;
    use mann_babi::TaskId;
    use mann_core::SuiteConfig;

    fn suite() -> TaskSuite {
        let cfg = SuiteConfig {
            tasks: vec![TaskId::SingleSupportingFact, TaskId::AgentMotivations],
            train_samples: 100,
            test_samples: 12,
            seed: 5,
            ..SuiteConfig::quick()
        };
        TaskSuite::build(&cfg)
    }

    fn trace(suite: &TaskSuite, requests: usize) -> ArrivalTrace {
        ArrivalTrace::generate(
            &TraceConfig {
                requests,
                seed: 11,
                mean_interarrival_s: 150e-6,
            },
            suite,
        )
    }

    #[test]
    fn serves_every_request_with_monotone_timelines() {
        let s = suite();
        let server = Server::new(&s, ServeConfig::default());
        let t = trace(&s, 64);
        let out = server.serve(&t);
        assert_eq!(out.completions.len(), 64);
        assert!(out.rejections.is_empty());
        for c in &out.completions {
            assert!(c.timestamps.is_monotone());
            assert!(c.instance < server.config().instances);
            assert!(c.timestamps.latency() > SimTime::ZERO);
        }
        // Ids stay in order.
        assert!(out
            .completions
            .windows(2)
            .all(|w| w[0].request.id < w[1].request.id));
        let r = &out.report;
        assert_eq!(r.completed, 64);
        assert!(r.makespan_s > 0.0 && r.throughput_rps > 0.0);
        assert!(r.latency.p50_s <= r.latency.p99_s);
        assert!(r.total_energy_j > 0.0);
        assert!(r.setup_s > 0.0);
        assert_eq!(r.instances.len(), 2);
        // Both instances did work under shortest-queue at this load.
        assert!(r.instances.iter().all(|i| i.completed > 0));
        // Every drain crossed the link, plus at least one upload grant.
        assert!(r.link.grants > 64);
        assert!(r.link.utilization > 0.0 && r.link.utilization <= 1.0);
    }

    #[test]
    fn serve_is_deterministic() {
        let s = suite();
        let server = Server::new(&s, ServeConfig::default());
        let t = trace(&s, 48);
        let a = server.serve(&t);
        let b = server.serve(&t);
        assert_eq!(a, b);
        assert_eq!(
            serde_json::to_string(&a.report).unwrap(),
            serde_json::to_string(&b.report).unwrap()
        );
    }

    #[test]
    fn tiny_queue_rejects_under_burst() {
        let s = suite();
        let server = Server::new(
            &s,
            ServeConfig {
                instances: 1,
                queue_capacity: 2,
                ..ServeConfig::default()
            },
        );
        // A burst: everything arrives nearly at once.
        let t = ArrivalTrace::generate(
            &TraceConfig {
                requests: 40,
                seed: 3,
                mean_interarrival_s: 1e-9,
            },
            &s,
        );
        let out = server.serve(&t);
        assert!(!out.rejections.is_empty(), "no backpressure under burst");
        assert_eq!(out.completions.len() + out.rejections.len(), 40);
        assert_eq!(out.report.rejected, out.rejections.len());
        for r in &out.rejections {
            assert_eq!(r.queue_depth, 2);
        }
        // Rejected ids are absent from completions.
        let done: std::collections::HashSet<u64> =
            out.completions.iter().map(|c| c.request.id).collect();
        assert!(out.rejections.iter().all(|r| !done.contains(&r.request.id)));
    }

    #[test]
    fn more_instances_reduce_tail_latency() {
        let s = suite();
        // A near-simultaneous burst on a fast link, so the fabric compute
        // time — not the shared-link serialization — is the bottleneck and
        // replication can actually help.
        let t = ArrivalTrace::generate(
            &TraceConfig {
                requests: 96,
                seed: 13,
                mean_interarrival_s: 1e-9,
            },
            &s,
        );
        let fast_link = mann_hw::PcieLink {
            bandwidth_bytes_per_s: 1.5e9,
            latency_per_transfer_s: 1e-6,
        };
        let serve = |instances: usize| {
            let server = Server::new(
                &s,
                ServeConfig {
                    instances,
                    queue_capacity: 256,
                    pcie: fast_link,
                    ..ServeConfig::default()
                },
            );
            server.serve(&t).report
        };
        let one = serve(1);
        let four = serve(4);
        assert!(
            four.latency.p99_s < one.latency.p99_s,
            "p99 {} !< {} with 4x instances",
            four.latency.p99_s,
            one.latency.p99_s
        );
        assert!(
            four.makespan_s < 0.6 * one.makespan_s,
            "makespan {} !< 0.6 * {}",
            four.makespan_s,
            one.makespan_s
        );
        // Replication never changes an answer.
        assert_eq!(one.answers_digest, four.answers_digest);
    }

    #[test]
    fn policies_agree_on_answers_but_may_differ_in_timing() {
        let s = suite();
        let t = trace(&s, 48);
        let serve_with = |policy| {
            let server = Server::new(
                &s,
                ServeConfig {
                    instances: 3,
                    policy,
                    ..ServeConfig::default()
                },
            );
            server.serve(&t)
        };
        let rr = serve_with(SchedulePolicy::RoundRobin);
        let sq = serve_with(SchedulePolicy::ShortestQueue);
        assert_eq!(rr.report.answers_digest, sq.report.answers_digest);
        assert_eq!(rr.report.completed, sq.report.completed);
    }

    #[test]
    fn empty_trace_yields_empty_report() {
        let s = suite();
        let server = Server::new(&s, ServeConfig::default());
        let t = ArrivalTrace {
            requests: Vec::new(),
            config: TraceConfig::default(),
        };
        let out = server.serve(&t);
        assert!(out.completions.is_empty());
        assert_eq!(out.report.makespan_s, 0.0);
        assert_eq!(out.report.total_energy_j, 0.0);
    }

    #[test]
    #[should_panic(expected = "invalid serve config")]
    fn zero_instances_rejected() {
        let s = suite();
        let _ = Server::new(
            &s,
            ServeConfig {
                instances: 0,
                ..ServeConfig::default()
            },
        );
    }
}
