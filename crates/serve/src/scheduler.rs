//! Instance-selection policies.
//!
//! The scheduler only ever *orders* work — it never computes anything — so
//! any policy yields the same per-request answers; policies differ purely
//! in latency and occupancy. Both policies are deterministic: ties break by
//! instance index, and the round-robin cursor is part of scheduler state,
//! so a trace replays byte-identically.

use mann_hw::SimTime;
use serde::{Deserialize, Serialize};

/// How the dispatcher picks an instance for the next upload batch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum SchedulePolicy {
    /// Cycle through instances in index order, skipping instances that are
    /// out of input credits.
    RoundRobin,
    /// Pick the instance with the fewest requests in flight; ties go to
    /// the one that frees earliest, then to the lowest index. Adapts to
    /// the data-dependent service times ITH creates.
    #[default]
    ShortestQueue,
    /// Prefer an instance that already holds the head request's story
    /// resident (skipping its write phase and story upload); among equally
    /// resident instances fall back to shortest-queue order. Repeat
    /// stories land where they are cached.
    StoryAffinity,
}

impl SchedulePolicy {
    /// Parses a CLI-style policy name.
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "rr" | "round-robin" => Some(Self::RoundRobin),
            "sq" | "shortest-queue" => Some(Self::ShortestQueue),
            "af" | "affinity" | "story-affinity" => Some(Self::StoryAffinity),
            _ => None,
        }
    }
}

impl std::fmt::Display for SchedulePolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::RoundRobin => write!(f, "round-robin"),
            Self::ShortestQueue => write!(f, "shortest-queue"),
            Self::StoryAffinity => write!(f, "story-affinity"),
        }
    }
}

/// What the dispatcher sees of an instance when picking.
#[derive(Debug, Clone, Copy)]
pub struct InstanceView {
    /// Requests dispatched to the instance and not yet finished computing.
    pub inflight: usize,
    /// Remaining input credits (0 = cannot accept another upload).
    pub credits: usize,
    /// When the instance's current compute finishes.
    pub free_at: SimTime,
    /// Whether the story of the request at the head of the host queue is
    /// resident in this instance's story cache.
    pub resident: bool,
}

/// Deterministic instance picker; owns the round-robin cursor.
#[derive(Debug, Clone, Default)]
pub struct Scheduler {
    policy: SchedulePolicy,
    rr_cursor: usize,
}

impl Scheduler {
    /// A scheduler with the given policy.
    pub fn new(policy: SchedulePolicy) -> Self {
        Self {
            policy,
            rr_cursor: 0,
        }
    }

    /// The active policy.
    pub fn policy(&self) -> SchedulePolicy {
        self.policy
    }

    /// Picks an instance with available credits, or `None` if every
    /// instance is saturated.
    pub fn pick(&mut self, instances: &[InstanceView]) -> Option<usize> {
        match self.policy {
            SchedulePolicy::RoundRobin => {
                let n = instances.len();
                for step in 0..n {
                    let i = (self.rr_cursor + step) % n;
                    if instances[i].credits > 0 {
                        self.rr_cursor = (i + 1) % n;
                        return Some(i);
                    }
                }
                None
            }
            SchedulePolicy::ShortestQueue => instances
                .iter()
                .enumerate()
                .filter(|(_, v)| v.credits > 0)
                .min_by_key(|(i, v)| (v.inflight, v.free_at, *i))
                .map(|(i, _)| i),
            // Residency first (false < true, so negate), then the
            // shortest-queue order as tie-break — fully deterministic.
            SchedulePolicy::StoryAffinity => instances
                .iter()
                .enumerate()
                .filter(|(_, v)| v.credits > 0)
                .min_by_key(|(i, v)| (!v.resident, v.inflight, v.free_at, *i))
                .map(|(i, _)| i),
        }
    }
}

/// First instant a running depth counter reaches `limit`, given signed
/// depth deltas at simulated instants (`+1` enqueue, `-1` dequeue).
///
/// Deltas are applied in `(time, delta)` order with negatives first at a
/// tie — a slot freed at T is free *before* the arrival at T claims it —
/// matching the host-queue admission rule in the event loop. Used by the
/// membership layer to find a shard's queue-occupancy crossing on a pure
/// probe serve, so re-tune instants are a function of the trace, not of
/// event-loop state.
pub(crate) fn first_depth_crossing(mut deltas: Vec<(SimTime, i32)>, limit: i64) -> Option<SimTime> {
    deltas.sort_unstable_by_key(|&(t, d)| (t, d));
    let mut depth = 0i64;
    for (t, d) in deltas {
        depth += i64::from(d);
        if depth >= limit {
            return Some(t);
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn depth_crossing_orders_frees_before_claims() {
        let t = |ps: u64| SimTime::from_ps(ps);
        // Two ups at 10, one down + one up at 20: depth peaks at 2.
        let deltas = vec![(t(10), 1), (t(10), 1), (t(20), -1), (t(20), 1)];
        assert_eq!(first_depth_crossing(deltas.clone(), 2), Some(t(10)));
        // The tie at 20 applies the -1 first, so depth never reaches 3.
        assert_eq!(first_depth_crossing(deltas, 3), None);
        assert_eq!(first_depth_crossing(Vec::new(), 1), None);
    }

    fn view(inflight: usize, credits: usize, free_ps: u64) -> InstanceView {
        InstanceView {
            inflight,
            credits,
            free_at: SimTime::from_ps(free_ps),
            resident: false,
        }
    }

    fn resident(mut v: InstanceView) -> InstanceView {
        v.resident = true;
        v
    }

    #[test]
    fn round_robin_cycles_and_skips_saturated() {
        let mut s = Scheduler::new(SchedulePolicy::RoundRobin);
        let views = vec![view(0, 1, 0), view(0, 1, 0), view(0, 0, 0)];
        assert_eq!(s.pick(&views), Some(0));
        assert_eq!(s.pick(&views), Some(1));
        // Instance 2 has no credit: wraps back to 0.
        assert_eq!(s.pick(&views), Some(0));
        let starved = vec![view(0, 0, 0); 3];
        assert_eq!(s.pick(&starved), None);
    }

    #[test]
    fn shortest_queue_prefers_least_loaded_then_earliest_free() {
        let mut s = Scheduler::new(SchedulePolicy::ShortestQueue);
        assert_eq!(s.pick(&[view(2, 1, 0), view(1, 1, 0)]), Some(1));
        // Equal load: earliest free wins.
        assert_eq!(s.pick(&[view(1, 1, 900), view(1, 1, 100)]), Some(1));
        // Full tie: lowest index.
        assert_eq!(s.pick(&[view(1, 1, 5), view(1, 1, 5)]), Some(0));
        // Saturated instances are invisible even if idle soonest.
        assert_eq!(s.pick(&[view(0, 0, 0), view(3, 2, 9)]), Some(1));
    }

    #[test]
    fn story_affinity_prefers_resident_then_shortest_queue() {
        let mut s = Scheduler::new(SchedulePolicy::StoryAffinity);
        // A resident instance beats a less-loaded non-resident one.
        assert_eq!(s.pick(&[view(0, 2, 0), resident(view(1, 1, 0))]), Some(1));
        // No residency anywhere: identical to shortest-queue.
        assert_eq!(s.pick(&[view(2, 1, 0), view(1, 1, 0)]), Some(1));
        // Residency without credits is invisible.
        assert_eq!(s.pick(&[view(0, 1, 0), resident(view(0, 0, 0))]), Some(0));
        // Two resident instances: load then free time then index.
        assert_eq!(
            s.pick(&[resident(view(1, 1, 900)), resident(view(1, 1, 100))]),
            Some(1)
        );
    }

    #[test]
    fn policy_parse_round_trips() {
        for p in [
            SchedulePolicy::RoundRobin,
            SchedulePolicy::ShortestQueue,
            SchedulePolicy::StoryAffinity,
        ] {
            assert_eq!(SchedulePolicy::parse(&p.to_string()), Some(p));
        }
        assert_eq!(
            SchedulePolicy::parse("rr"),
            Some(SchedulePolicy::RoundRobin)
        );
        assert_eq!(
            SchedulePolicy::parse("sq"),
            Some(SchedulePolicy::ShortestQueue)
        );
        assert_eq!(SchedulePolicy::parse("lifo"), None);
    }
}
