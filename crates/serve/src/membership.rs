//! Live cluster membership: the shard set as a timeline.
//!
//! PR 7's cluster froze its membership for a whole campaign — a shard
//! that died stayed dead, a shard that ran hot stayed hot. This module
//! makes the shard set a first-class *timeline*: a seed-pure
//! [`MembershipPlan`] (JSON or inline `key=value`, validated exactly like
//! [`FaultConfig`](crate::FaultConfig)) schedules
//!
//! * **drains** — a shard stops accepting new work at time T, finishes
//!   what it already holds, and hands its resident stories to their next
//!   live replica as real re-uploads through the link model;
//! * **failures** — fail-stop at T: everything unfinished on the shard is
//!   stranded and re-routed through [`ShardRouter::route_live`], and when
//!   the write-ahead log is armed the shard's journal is cut at T and
//!   recovered by replay;
//! * **joins** — a cold shard enters the rendezvous at T with an empty
//!   story cache and pays its own warm-up;
//! * **weight re-tunes** — when a shard's measured host-queue occupancy
//!   crosses a threshold, its routing weight is divided down so the
//!   rendezvous sheds keys to its peers;
//! * **hot-key splits** — a pathological story whose request count crosses
//!   a threshold has its traffic fanned deterministically across its full
//!   replica chain instead of hammering the primary.
//!
//! The cluster event loop re-resolves routing against the live
//! [`MembershipView`] at dispatch time, so a request is placed by the
//! membership *as of its arrival*, not as of campaign start. Everything is
//! a pure function of `(plan, trace, config)`: liveness windows come from
//! the plan, re-tune instants from a deterministic probe serve, and the
//! hot-key fan-out from request order — never from wall-clock state. An
//! empty plan leaves the cluster path byte-identical to before this module
//! existed (pinned by the golden suite), and the [`MembershipReport`] key
//! is omitted from the serialized [`ClusterReport`](crate::ClusterReport)
//! entirely.
//!
//! Rendezvous hashing is what keeps churn cheap: removing one of K shards
//! relocates only the keys that ranked it first — a ≤ 1/K + ε fraction,
//! proven live on the real router by a proptest, not on paper.

use mann_hw::SimTime;
use serde::{Deserialize, Serialize};

use mann_core::report::{fnum, TextTable};

use crate::cluster::ShardRouter;

/// Everything that can go wrong reading or validating a membership plan.
#[derive(Debug, thiserror::Error)]
pub enum MembershipPlanError {
    /// The plan file could not be read.
    #[error("cannot read membership plan {path}: {source}")]
    Io {
        /// Path of the unreadable plan.
        path: String,
        /// The underlying I/O error.
        source: std::io::Error,
    },
    /// The plan file was not valid JSON of the expected shape.
    #[error("cannot parse membership plan {path}: {source}")]
    Parse {
        /// Path of the malformed plan.
        path: String,
        /// The underlying JSON error.
        source: serde_json::Error,
    },
    /// A field value is out of range or inconsistent.
    #[error("invalid membership plan: {field} {reason}")]
    Invalid {
        /// The offending field.
        field: &'static str,
        /// Why it was rejected.
        reason: String,
    },
    /// An inline `key=value` spec used an unknown key.
    #[error(
        "unknown membership-plan key {key:?}: expected one of drain, fail, join, \
         retune-threshold, retune-factor, hot-key"
    )]
    UnknownKey {
        /// The unrecognized key.
        key: String,
    },
    /// An inline `key=value` spec had an unparseable value.
    #[error("bad value {value:?} for membership-plan key {key} (events take `shard@us`)")]
    BadValue {
        /// The key whose value failed to parse.
        key: String,
        /// The rejected value text.
        value: String,
    },
}

/// What happens to a shard at its scheduled instant.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum MembershipEventKind {
    /// Planned exit: stop accepting new work at T, finish what is held,
    /// hand resident stories to the next live replica.
    Drain,
    /// Unplanned fail-stop at T: unfinished work is stranded and
    /// re-routed; with a WAL, the journal is cut at T.
    Fail,
    /// Cold entry at T: the shard starts taking keys with an empty cache.
    Join,
}

impl MembershipEventKind {
    fn parse(s: &str) -> Option<Self> {
        match s.to_ascii_lowercase().as_str() {
            "drain" => Some(Self::Drain),
            "fail" => Some(Self::Fail),
            "join" => Some(Self::Join),
            _ => None,
        }
    }

    /// Whether the shard is *removed* from the live set at the event time.
    pub fn is_leave(self) -> bool {
        matches!(self, Self::Drain | Self::Fail)
    }
}

impl std::fmt::Display for MembershipEventKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Drain => write!(f, "drain"),
            Self::Fail => write!(f, "fail"),
            Self::Join => write!(f, "join"),
        }
    }
}

impl Serialize for MembershipEventKind {
    fn to_value(&self) -> serde_json::Value {
        serde_json::Value::Str(self.to_string())
    }
}

impl Deserialize for MembershipEventKind {
    fn from_value(v: &serde_json::Value) -> Result<Self, serde_json::Error> {
        let serde_json::Value::Str(s) = v else {
            return Err(serde_json::Error::msg(format!(
                "expected membership-event kind string, got {}",
                v.kind()
            )));
        };
        Self::parse(s).ok_or_else(|| {
            serde_json::Error::msg(format!(
                "unknown membership-event kind {s:?}: expected drain, fail or join"
            ))
        })
    }
}

/// One scheduled lifecycle change of one shard.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct MembershipEvent {
    /// What happens.
    pub kind: MembershipEventKind,
    /// Which shard (index into the cluster's shard set).
    pub shard: usize,
    /// When, in simulated seconds from campaign start.
    pub at_s: f64,
}

impl Deserialize for MembershipEvent {
    fn from_value(v: &serde_json::Value) -> Result<Self, serde_json::Error> {
        Ok(Self {
            kind: Deserialize::from_value(v.field("kind")?)?,
            shard: Deserialize::from_value(v.field("shard")?)?,
            at_s: Deserialize::from_value(v.field("at_s")?)?,
        })
    }
}

impl MembershipEvent {
    /// The event instant on the integer-picosecond simulation clock.
    pub fn at(&self) -> SimTime {
        SimTime::from_s(self.at_s)
    }
}

/// Declarative description of one membership-churn campaign.
///
/// The default value schedules nothing: an empty plan serves
/// byte-identically to a build without the membership layer at all
/// (pinned by the golden suite), and the `membership` key is omitted from
/// the serialized cluster report entirely.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct MembershipPlan {
    /// Scheduled drains, failures and joins — at most one per shard.
    pub events: Vec<MembershipEvent>,
    /// Queue-occupancy fraction (of `queue_capacity`) at which a shard's
    /// routing weight is re-tuned down; 0 disables re-tuning. The
    /// crossing instant is measured on a deterministic probe serve of the
    /// pass-0 assignment, so it is a pure function of `(plan, trace,
    /// config)`.
    pub retune_threshold: f64,
    /// Divisor applied to a crossing shard's weight (floored at 1).
    pub retune_factor: u32,
    /// Request count at which a single routing key is declared hot and
    /// its traffic split round-robin across its full replica chain; 0
    /// disables the detector.
    pub hot_key_threshold: u64,
}

impl Default for MembershipPlan {
    fn default() -> Self {
        Self {
            events: Vec::new(),
            retune_threshold: 0.0,
            retune_factor: 2,
            hot_key_threshold: 0,
        }
    }
}

// Hand-written so that partial plan files work: every omitted field keeps
// its default, which lets a plan say only `{"events": [...]}` without
// restating the whole struct.
impl Deserialize for MembershipPlan {
    fn from_value(v: &serde_json::Value) -> Result<Self, serde_json::Error> {
        let serde_json::Value::Object(pairs) = v else {
            return Err(serde_json::Error::msg(format!(
                "expected membership-plan object, got {}",
                v.kind()
            )));
        };
        let mut out = Self::default();
        for (key, val) in pairs {
            match key.as_str() {
                "events" => out.events = Deserialize::from_value(val)?,
                "retune_threshold" => out.retune_threshold = Deserialize::from_value(val)?,
                "retune_factor" => out.retune_factor = Deserialize::from_value(val)?,
                "hot_key_threshold" => out.hot_key_threshold = Deserialize::from_value(val)?,
                other => {
                    return Err(serde_json::Error::msg(format!(
                        "unknown membership-plan field `{other}`"
                    )))
                }
            }
        }
        Ok(out)
    }
}

impl MembershipPlan {
    /// A plan that schedules nothing.
    pub fn none() -> Self {
        Self::default()
    }

    /// Whether this plan changes anything at all. An empty plan leaves
    /// the cluster serve path byte-identical to before the membership
    /// layer existed.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty() && self.retune_threshold == 0.0 && self.hot_key_threshold == 0
    }

    /// Checks shape-level validity (everything that does not need the
    /// shard count; see [`MembershipPlan::validate_for`]).
    ///
    /// # Errors
    ///
    /// Returns [`MembershipPlanError::Invalid`] naming the first bad field.
    pub fn validate(&self) -> Result<(), MembershipPlanError> {
        let bad = |field: &'static str, reason: String| {
            Err(MembershipPlanError::Invalid { field, reason })
        };
        for e in &self.events {
            if !(e.at_s.is_finite() && e.at_s > 0.0) {
                return bad(
                    "events",
                    format!(
                        "{} of shard {} must be at a finite positive instant, got {}",
                        e.kind, e.shard, e.at_s
                    ),
                );
            }
        }
        let mut shards: Vec<usize> = self.events.iter().map(|e| e.shard).collect();
        shards.sort_unstable();
        if let Some(w) = shards.windows(2).find(|w| w[0] == w[1]) {
            return bad(
                "events",
                format!(
                    "shard {} has more than one lifecycle event; a shard may \
                     drain, fail or join at most once per campaign",
                    w[0]
                ),
            );
        }
        if !(self.retune_threshold.is_finite() && (0.0..=1.0).contains(&self.retune_threshold)) {
            return bad(
                "retune_threshold",
                format!("must be in [0, 1], got {}", self.retune_threshold),
            );
        }
        if self.retune_threshold > 0.0 && self.retune_factor < 2 {
            return bad(
                "retune_factor",
                format!(
                    "must be >= 2 when re-tuning is armed (a factor of {} \
                     would never change a weight)",
                    self.retune_factor
                ),
            );
        }
        if self.hot_key_threshold == 1 {
            return bad(
                "hot_key_threshold",
                "of 1 declares every key hot; use 0 to disable or >= 2 to detect".into(),
            );
        }
        Ok(())
    }

    /// Checks the plan against a concrete shard count: every referenced
    /// shard index must exist, and a non-empty plan needs at least two
    /// shards (at K=1 the cluster layer is inert and the membership
    /// section would be unrepresentable).
    ///
    /// # Errors
    ///
    /// Returns [`MembershipPlanError::Invalid`] naming the first bad field.
    pub fn validate_for(&self, shards: usize) -> Result<(), MembershipPlanError> {
        self.validate()?;
        if let Some(e) = self.events.iter().find(|e| e.shard >= shards) {
            return Err(MembershipPlanError::Invalid {
                field: "events",
                reason: format!(
                    "{} references shard {} but the cluster has only {} shard(s) \
                     (indices 0..{})",
                    e.kind, e.shard, shards, shards
                ),
            });
        }
        if !self.is_empty() && shards < 2 {
            return Err(MembershipPlanError::Invalid {
                field: "events",
                reason: "a live-membership plan needs at least 2 shards; at K=1 the \
                         cluster layer is inert"
                    .into(),
            });
        }
        Ok(())
    }

    /// Loads a plan from a JSON file. Omitted fields keep their defaults.
    ///
    /// # Errors
    ///
    /// Returns [`MembershipPlanError`] on unreadable files, malformed
    /// JSON, or out-of-range fields.
    pub fn load(path: &str) -> Result<Self, MembershipPlanError> {
        let text = std::fs::read_to_string(path).map_err(|source| MembershipPlanError::Io {
            path: path.to_owned(),
            source,
        })?;
        let plan: Self =
            serde_json::from_str(&text).map_err(|source| MembershipPlanError::Parse {
                path: path.to_owned(),
                source,
            })?;
        plan.validate()?;
        Ok(plan)
    }

    /// Parses an inline `key=value[,key=value...]` spec, e.g.
    /// `drain=1@1500,fail=2@2600,join=3@700,hot-key=10,retune-threshold=0.05`.
    ///
    /// Event keys (`drain`, `fail`, `join`) take `shard@microseconds` and
    /// may repeat (for different shards); `retune-threshold` is a queue
    /// fraction in [0, 1], `retune-factor` a weight divisor, `hot-key` a
    /// request count. Omitted keys keep their defaults.
    ///
    /// # Errors
    ///
    /// Returns [`MembershipPlanError`] on unknown keys, unparseable
    /// values, or out-of-range fields.
    pub fn parse_spec(spec: &str) -> Result<Self, MembershipPlanError> {
        let mut out = Self::default();
        for part in spec.split(',').filter(|p| !p.trim().is_empty()) {
            let (key, value) =
                part.split_once('=')
                    .ok_or_else(|| MembershipPlanError::BadValue {
                        key: part.trim().to_owned(),
                        value: String::new(),
                    })?;
            let (key, value) = (key.trim(), value.trim());
            let bad = || MembershipPlanError::BadValue {
                key: key.to_owned(),
                value: value.to_owned(),
            };
            match key {
                "drain" | "fail" | "join" => {
                    let (shard, at_us) = value.split_once('@').ok_or_else(bad)?;
                    out.events.push(MembershipEvent {
                        kind: MembershipEventKind::parse(key).expect("matched above"),
                        shard: shard.trim().parse().map_err(|_| bad())?,
                        at_s: at_us.trim().parse::<f64>().map_err(|_| bad())? * 1e-6,
                    });
                }
                "retune-threshold" => {
                    out.retune_threshold = value.parse().map_err(|_| bad())?;
                }
                "retune-factor" => out.retune_factor = value.parse().map_err(|_| bad())?,
                "hot-key" => out.hot_key_threshold = value.parse().map_err(|_| bad())?,
                _ => {
                    return Err(MembershipPlanError::UnknownKey {
                        key: key.to_owned(),
                    })
                }
            }
        }
        out.validate()?;
        Ok(out)
    }

    /// Loads from either an inline spec (contains `=`) or a JSON file path.
    ///
    /// # Errors
    ///
    /// Propagates [`MembershipPlanError`] from whichever form was detected.
    pub fn from_arg(arg: &str) -> Result<Self, MembershipPlanError> {
        if arg.contains('=') {
            Self::parse_spec(arg)
        } else {
            Self::load(arg)
        }
    }

    /// The fail-stop instant of `shard`, if the plan fails it.
    pub fn fail_time(&self, shard: usize) -> Option<SimTime> {
        self.events
            .iter()
            .find(|e| e.shard == shard && e.kind == MembershipEventKind::Fail)
            .map(MembershipEvent::at)
    }

    /// The drain instant of `shard`, if the plan drains it.
    pub fn drain_time(&self, shard: usize) -> Option<SimTime> {
        self.events
            .iter()
            .find(|e| e.shard == shard && e.kind == MembershipEventKind::Drain)
            .map(MembershipEvent::at)
    }

    /// The routing keys whose request count reaches the hot-key
    /// threshold, sorted ascending (deterministic whatever the count-map
    /// iteration order).
    pub(crate) fn hot_keys(&self, keys: impl Iterator<Item = u64>) -> Vec<u64> {
        if self.hot_key_threshold == 0 {
            return Vec::new();
        }
        let mut counts: std::collections::HashMap<u64, u64> = std::collections::HashMap::new();
        for k in keys {
            *counts.entry(k).or_insert(0) += 1;
        }
        let mut hot: Vec<u64> = counts
            .into_iter()
            .filter(|&(_, n)| n >= self.hot_key_threshold)
            .map(|(k, _)| k)
            .collect();
        hot.sort_unstable();
        hot
    }
}

/// The live membership as a function of simulated time: per-shard
/// liveness windows from the plan plus a weight-epoch timeline (the base
/// router, then one re-built router per weight re-tune).
///
/// Pure in `(plan, weights, retunes)` — resolving a key at a time never
/// consults event-loop state, which is what keeps dispatch-time routing
/// byte-identical across engines, thread counts and shard iteration
/// order.
#[derive(Debug, Clone)]
pub(crate) struct MembershipView {
    replicas: usize,
    /// Weight epochs, ascending; `routers[i]` applies from `starts[i]` on.
    starts: Vec<SimTime>,
    routers: Vec<ShardRouter>,
    /// First instant each shard is live (ZERO unless it joins later).
    alive_from: Vec<SimTime>,
    /// First instant each shard is gone (drain or fail), if any.
    dead_from: Vec<Option<SimTime>>,
}

impl MembershipView {
    /// Builds the view for `plan` over shards with the given base weights.
    pub fn new(plan: &MembershipPlan, weights: Vec<u32>, replicas: usize) -> Self {
        let k = weights.len();
        let mut alive_from = vec![SimTime::ZERO; k];
        let mut dead_from = vec![None; k];
        for e in &plan.events {
            match e.kind {
                MembershipEventKind::Join => alive_from[e.shard] = e.at(),
                MembershipEventKind::Drain | MembershipEventKind::Fail => {
                    dead_from[e.shard] = Some(e.at());
                }
            }
        }
        Self {
            replicas,
            starts: vec![SimTime::ZERO],
            routers: vec![ShardRouter::with_weights(weights)],
            alive_from,
            dead_from,
        }
    }

    /// Whether `shard` is live at `t`.
    pub fn alive(&self, shard: usize, t: SimTime) -> bool {
        t >= self.alive_from[shard] && self.dead_from[shard].is_none_or(|d| t < d)
    }

    /// The router in force at `t` (the last weight epoch at or before it).
    fn router_at(&self, t: SimTime) -> &ShardRouter {
        let idx = self.starts.partition_point(|&s| s <= t);
        &self.routers[idx.saturating_sub(1)]
    }

    /// The live replica chain of `key` as of `t`, primary first — shorter
    /// than the replication factor when fewer shards are live, empty when
    /// none are.
    pub fn resolve(&self, key: u64, t: SimTime) -> Vec<usize> {
        self.router_at(t)
            .route_live(key, self.replicas, |s| self.alive(s, t))
    }

    /// The live primary of `key` as of `t`, if any shard is live.
    pub fn primary(&self, key: u64, t: SimTime) -> Option<usize> {
        self.router_at(t)
            .route_live(key, 1, |s| self.alive(s, t))
            .first()
            .copied()
    }

    /// Applies weight re-tunes: at each `(instant, shard)` the shard's
    /// weight is divided by `factor` (floored at 1) and a new router
    /// epoch begins. Instants are applied in time order so later epochs
    /// compound earlier ones.
    pub fn apply_retunes(&mut self, retunes: &[(SimTime, usize)], factor: u32) {
        let mut retunes = retunes.to_vec();
        retunes.sort_unstable_by_key(|&(t, s)| (t, s));
        let mut weights = self.routers.last().expect("base epoch").weights().to_vec();
        for (t, shard) in retunes {
            weights[shard] = (weights[shard] / factor.max(1)).max(1);
            self.starts.push(t);
            self.routers
                .push(ShardRouter::with_weights(weights.clone()));
        }
    }
}

/// One entry of the membership epoch timeline: a lifecycle event or
/// weight re-tune, with the number of tracked keys whose live primary
/// moved across the boundary.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct MembershipEpoch {
    /// Event instant, simulated seconds.
    pub at_s: f64,
    /// `drain`, `fail`, `join` or `retune`.
    pub kind: String,
    /// The shard whose lifecycle or weight changed.
    pub shard: usize,
    /// Distinct trace keys whose primary differs across the boundary.
    pub moved_keys: u64,
}

/// Aggregate accounting of one membership-churn campaign; joins
/// [`ClusterReport`](crate::ClusterReport) with the key omitted entirely
/// when the plan is empty, so plans that schedule nothing stay
/// byte-invisible.
#[derive(Debug, Clone, PartialEq, Default, Serialize)]
pub struct MembershipReport {
    /// Whether a non-empty plan was in force (false omits the key).
    pub enabled: bool,
    /// Membership epochs the campaign passed through (initial + one per
    /// timeline entry).
    pub epochs: usize,
    /// Planned shard drains executed.
    pub drains: u64,
    /// Fail-stop shard failures executed.
    pub failures: u64,
    /// Cold shard joins executed.
    pub joins: u64,
    /// Weight re-tunes triggered by queue-occupancy crossings.
    pub retunes: u64,
    /// Distinct routing keys the hot-key detector declared hot.
    pub hot_keys: u64,
    /// Requests fanned out across a hot key's replica chain.
    pub split_requests: u64,
    /// Requests stranded on failed shards and handed back for re-routing.
    pub stranded_exports: u64,
    /// Requests shed because no live replica existed for their key — the
    /// dedicated all-replicas-down counter (still part of the cluster
    /// partition: these land in the shed pool, never silently dropped).
    pub unroutable_shed: u64,
    /// Resident stories handed from drained shards to their next live
    /// replica.
    pub stories_moved: u64,
    /// Hand-off payload bytes (story re-uploads through the link model).
    pub handoff_bytes: u64,
    /// Hand-off link time converted to fabric cycles.
    pub handoff_cycles: u64,
    /// Hand-off link time, seconds.
    pub handoff_s: f64,
    /// Hand-off energy at idle-board power (the link-retry precedent), J.
    pub handoff_energy_j: f64,
    /// Distinct routing keys in the trace (the moved-key denominator).
    pub tracked_keys: u64,
    /// Sum of `moved_keys` over the epoch timeline.
    pub moved_keys: u64,
    /// Mean fraction of tracked keys relocated per *leave* event — the
    /// live measurement the rendezvous bound (≤ 1/K + ε per removal)
    /// speaks about.
    pub moved_key_fraction: f64,
    /// The epoch timeline in `(time, shard)` order.
    pub timeline: Vec<MembershipEpoch>,
}

impl MembershipReport {
    /// Renders the membership section as a text table.
    pub fn render(&self) -> String {
        let mut t = TextTable::new(vec!["membership".into(), "value".into()]);
        t.row(vec!["epochs".into(), self.epochs.to_string()]);
        t.row(vec![
            "drains / failures / joins".into(),
            format!("{} / {} / {}", self.drains, self.failures, self.joins),
        ]);
        t.row(vec!["weight re-tunes".into(), self.retunes.to_string()]);
        t.row(vec![
            "hot keys (split requests)".into(),
            format!("{} ({})", self.hot_keys, self.split_requests),
        ]);
        t.row(vec![
            "stranded exports".into(),
            self.stranded_exports.to_string(),
        ]);
        t.row(vec![
            "unroutable shed".into(),
            self.unroutable_shed.to_string(),
        ]);
        t.row(vec![
            "stories handed off".into(),
            format!(
                "{} ({} B, {} cycles, {} J)",
                self.stories_moved,
                self.handoff_bytes,
                self.handoff_cycles,
                fnum(self.handoff_energy_j, 6)
            ),
        ]);
        t.row(vec![
            "moved keys".into(),
            format!(
                "{} / {} tracked ({} per leave)",
                self.moved_keys,
                self.tracked_keys,
                fnum(self.moved_key_fraction, 4)
            ),
        ]);
        let mut out = t.render();
        if !self.timeline.is_empty() {
            out.push('\n');
            let mut tl = TextTable::new(vec![
                "t (us)".into(),
                "event".into(),
                "shard".into(),
                "moved keys".into(),
            ]);
            for e in &self.timeline {
                tl.row(vec![
                    fnum(e.at_s * 1e6, 1),
                    e.kind.clone(),
                    e.shard.to_string(),
                    e.moved_keys.to_string(),
                ]);
            }
            out.push_str(&tl.render());
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_plan_is_empty_and_valid() {
        let p = MembershipPlan::none();
        assert!(p.is_empty());
        p.validate_for(1).expect("empty plan valid at any K");
        p.validate_for(4).expect("empty plan valid at any K");
    }

    #[test]
    fn spec_round_trip() {
        let p = MembershipPlan::parse_spec(
            "drain=1@1500,fail=2@2600,join=3@700,hot-key=10,retune-threshold=0.05,retune-factor=4",
        )
        .expect("valid spec");
        assert_eq!(p.events.len(), 3);
        assert_eq!(p.events[0].kind, MembershipEventKind::Drain);
        assert_eq!(p.events[0].shard, 1);
        assert!((p.events[0].at_s - 1500e-6).abs() < 1e-12);
        assert_eq!(p.hot_key_threshold, 10);
        assert_eq!(p.retune_factor, 4);
        assert!(!p.is_empty());
        p.validate_for(4).expect("fits K=4");
    }

    #[test]
    fn json_partial_fields_keep_defaults() {
        let p: MembershipPlan = serde_json::from_str(
            r#"{"events": [{"kind": "fail", "shard": 0, "at_s": 0.001}], "hot_key_threshold": 8}"#,
        )
        .expect("valid JSON plan");
        assert_eq!(p.events.len(), 1);
        assert_eq!(p.events[0].kind, MembershipEventKind::Fail);
        assert_eq!(p.retune_factor, 2, "omitted field keeps default");
        assert_eq!(p.hot_key_threshold, 8);
    }

    #[test]
    fn bad_specs_are_hard_errors() {
        assert!(matches!(
            MembershipPlan::parse_spec("drain=1"),
            Err(MembershipPlanError::BadValue { .. })
        ));
        assert!(matches!(
            MembershipPlan::parse_spec("evict=1@100"),
            Err(MembershipPlanError::UnknownKey { .. })
        ));
        assert!(matches!(
            MembershipPlan::parse_spec("drain=1@0"),
            Err(MembershipPlanError::Invalid { .. })
        ));
        assert!(matches!(
            MembershipPlan::parse_spec("drain=1@100,fail=1@200"),
            Err(MembershipPlanError::Invalid { .. })
        ));
        assert!(matches!(
            MembershipPlan::parse_spec("hot-key=1"),
            Err(MembershipPlanError::Invalid { .. })
        ));
        assert!(matches!(
            MembershipPlan::parse_spec("retune-threshold=0.5,retune-factor=1"),
            Err(MembershipPlanError::Invalid { .. })
        ));
        assert!(matches!(
            MembershipPlan::parse_spec("retune-threshold=1.5"),
            Err(MembershipPlanError::Invalid { .. })
        ));
    }

    #[test]
    fn validate_for_rejects_out_of_range_shards_and_k1() {
        let p = MembershipPlan::parse_spec("fail=4@100").expect("shape-valid");
        assert!(matches!(
            p.validate_for(4),
            Err(MembershipPlanError::Invalid { .. })
        ));
        p.validate_for(5).expect("shard 4 exists at K=5");
        let p = MembershipPlan::parse_spec("hot-key=8").expect("shape-valid");
        assert!(matches!(
            p.validate_for(1),
            Err(MembershipPlanError::Invalid { .. })
        ));
    }

    #[test]
    fn view_liveness_windows() {
        let plan =
            MembershipPlan::parse_spec("drain=1@100,fail=2@200,join=3@50").expect("valid plan");
        let view = MembershipView::new(&plan, vec![1; 4], 2);
        let us = |u: f64| SimTime::from_s(u * 1e-6);
        assert!(view.alive(0, SimTime::ZERO));
        assert!(view.alive(1, us(99.0)) && !view.alive(1, us(100.0)));
        assert!(view.alive(2, us(199.0)) && !view.alive(2, us(200.0)));
        assert!(!view.alive(3, us(49.0)) && view.alive(3, us(50.0)));
        // After both leaves, chains draw only from {0, 3}.
        for key in 0..64u64 {
            let chain = view.resolve(key, us(300.0));
            assert!(!chain.is_empty() && chain.iter().all(|&s| s == 0 || s == 3));
        }
        // Before the join, shard 3 is never ranked.
        for key in 0..64u64 {
            assert!(!view.resolve(key, us(10.0)).contains(&3));
        }
    }

    #[test]
    fn view_resolve_empty_when_all_dead() {
        let plan = MembershipPlan::parse_spec("fail=0@100,fail=1@100").expect("valid plan");
        let view = MembershipView::new(&plan, vec![1; 2], 2);
        let t = SimTime::from_s(150e-6);
        assert!(view.resolve(7, t).is_empty());
        assert_eq!(view.primary(7, t), None);
    }

    #[test]
    fn retune_shifts_keys_off_the_shard() {
        let plan = MembershipPlan::none();
        let mut view = MembershipView::new(&plan, vec![8, 8], 1);
        let t = SimTime::from_s(100e-6);
        let before: Vec<_> = (0..512u64).map(|k| view.primary(k, t).unwrap()).collect();
        view.apply_retunes(&[(SimTime::from_s(50e-6), 0)], 8);
        let after: Vec<_> = (0..512u64).map(|k| view.primary(k, t).unwrap()).collect();
        let shed = before
            .iter()
            .zip(&after)
            .filter(|&(&b, &a)| b == 0 && a == 1)
            .count();
        assert!(shed > 0, "an 8x weight cut must shed keys to the peer");
        assert!(
            before
                .iter()
                .zip(&after)
                .all(|(&b, &a)| !(b == 1 && a == 0)),
            "a weight cut must never attract keys"
        );
        // Before the retune instant, the old router is in force.
        let early = SimTime::from_s(10e-6);
        for k in 0..512u64 {
            assert_eq!(view.primary(k, early).unwrap(), before[k as usize]);
        }
    }

    #[test]
    fn hot_keys_need_the_threshold() {
        let plan = MembershipPlan::parse_spec("hot-key=3").expect("valid");
        let keys = [7u64, 7, 7, 9, 9, 11];
        assert_eq!(plan.hot_keys(keys.iter().copied()), vec![7]);
        assert!(MembershipPlan::none()
            .hot_keys(keys.iter().copied())
            .is_empty());
    }
}
