//! Request and completion records: what flows through the serving layer and
//! what comes back out.

use mann_hw::{InferenceRun, SimTime};
use serde::{Deserialize, Serialize};

/// One QA inference request in an arrival trace.
///
/// A request references a `(task, sample)` pair of the trained suite rather
/// than carrying the sample itself — the serving layer is an orchestrator
/// over the suite's artifacts, not a data path.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Request {
    /// Trace-unique id, assigned in arrival order.
    pub id: u64,
    /// Index of the tenant task within the suite.
    pub task_idx: usize,
    /// Index of the sample within the task's test set.
    pub sample_idx: usize,
    /// Simulated arrival time.
    pub arrival: SimTime,
}

/// The full simulated-time lifecycle of one served request:
/// enqueue → dispatch → upload → compute → drain.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct RequestTimestamps {
    /// Admitted to the host queue (= arrival time for admitted requests).
    pub enqueue: SimTime,
    /// Left the host queue and was assigned an instance.
    pub dispatch: SimTime,
    /// Shared link began streaming the story + question.
    pub upload_start: SimTime,
    /// Input stream fully resident in the instance's FIFO.
    pub upload_end: SimTime,
    /// Fabric compute began.
    pub compute_start: SimTime,
    /// Fabric compute finished.
    pub compute_end: SimTime,
    /// Shared link began the answer read-back.
    pub drain_start: SimTime,
    /// Answer landed on the host — the request is complete.
    pub drain_end: SimTime,
}

impl RequestTimestamps {
    /// End-to-end latency: enqueue to answer-on-host.
    pub fn latency(&self) -> SimTime {
        self.drain_end.saturating_sub(self.enqueue)
    }

    /// Time spent waiting in the host queue before dispatch.
    pub fn queue_wait(&self) -> SimTime {
        self.dispatch.saturating_sub(self.enqueue)
    }

    /// Whether the phases are causally ordered (debug invariant).
    pub fn is_monotone(&self) -> bool {
        self.enqueue <= self.dispatch
            && self.dispatch <= self.upload_start
            && self.upload_start <= self.upload_end
            && self.upload_end <= self.compute_start
            && self.compute_start <= self.compute_end
            && self.compute_end <= self.drain_start
            && self.drain_start <= self.drain_end
    }
}

/// A request that made it all the way through.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Completion {
    /// The originating request.
    pub request: Request,
    /// Which accelerator instance computed it.
    pub instance: usize,
    /// The accelerator's full per-inference accounting — identical to what
    /// a standalone [`mann_hw::Accelerator::run`] would report, because the
    /// serving layer never touches the numeric path.
    pub run: InferenceRun,
    /// Lifecycle timestamps in simulated time.
    pub timestamps: RequestTimestamps,
    /// Whether the answer matched the sample's label.
    pub correct: bool,
    /// Whether the request was answered in aggressive-ITH degraded mode
    /// (fault-campaign overload response); always `false` otherwise.
    pub degraded: bool,
    /// Whether the run's sticky numeric flags were set and a non-ignore
    /// [`crate::NumericPolicy`] marked it; always `false` under the
    /// default policy.
    pub numeric_flagged: bool,
    /// Whether the answer was replaced by the `f32` reference datapath
    /// (precision failover); implies `numeric_flagged`.
    pub failed_over: bool,
}

/// A stranded request handed back to the caller for cross-shard failover
/// (see [`crate::ServeConfig`]'s `failover_export`): its instance crashed
/// mid-flight and, instead of re-queueing locally, the watchdog exported it
/// so a cluster can re-dispatch it on the story's replica shard.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Export {
    /// The stranded request (original id and arrival preserved).
    pub request: Request,
    /// Simulated time of the watchdog handoff; the replica shard sees the
    /// request arrive at this instant.
    pub at: SimTime,
}

/// A request refused at the door: the bounded host queue was full.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Rejection {
    /// The refused request.
    pub request: Request,
    /// Queue depth observed at arrival (= configured capacity).
    pub queue_depth: usize,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latency_and_queue_wait_derive_from_timestamps() {
        let ts = RequestTimestamps {
            enqueue: SimTime::from_ps(100),
            dispatch: SimTime::from_ps(150),
            upload_start: SimTime::from_ps(150),
            upload_end: SimTime::from_ps(200),
            compute_start: SimTime::from_ps(200),
            compute_end: SimTime::from_ps(300),
            drain_start: SimTime::from_ps(300),
            drain_end: SimTime::from_ps(320),
        };
        assert_eq!(ts.latency().ps(), 220);
        assert_eq!(ts.queue_wait().ps(), 50);
        assert!(ts.is_monotone());
        let mut broken = ts;
        broken.compute_start = SimTime::from_ps(120);
        assert!(!broken.is_monotone());
    }
}
