//! Property tests for the fault-injection and recovery layer.
//!
//! Three invariants hold for *any* trace and fault campaign:
//!
//! 1. Conservation: the admitted requests are partitioned exactly between
//!    completions and sheds — every request is answered exactly once or
//!    counted shed, never both, never twice, and the report's shed
//!    counters agree with the outcome vectors.
//! 2. FIFO under retransmission: a corrupted transfer is retried in place
//!    (the arbiter keeps the link occupied through the backoff), so
//!    retransmission never reorders transfers — a request dispatched
//!    strictly earlier starts its upload no later.
//! 3. Inertness: a fault plan with nothing to inject is invisible — the
//!    outcome is byte-identical to a serve with no campaign at all.
//!
//! The conservation test also re-serves every campaign on the serial
//! engine and asserts byte-identical reports: engine invariance must
//! survive arbitrary fault interleavings, not just the pinned golden one.

use std::sync::OnceLock;

use mann_babi::TaskId;
use mann_core::{SuiteConfig, TaskSuite};
use mann_serve::{
    ArrivalTrace, EngineMode, FaultConfig, SchedulePolicy, ServeConfig, ServeOutcome, Server,
    TraceConfig,
};
use proptest::prelude::*;

fn suite() -> &'static TaskSuite {
    static SUITE: OnceLock<TaskSuite> = OnceLock::new();
    SUITE.get_or_init(|| {
        TaskSuite::build(&SuiteConfig {
            tasks: vec![TaskId::SingleSupportingFact, TaskId::AgentMotivations],
            train_samples: 120,
            test_samples: 12,
            seed: 5,
            ..SuiteConfig::quick()
        })
    })
}

fn policy(pick: u8) -> SchedulePolicy {
    match pick % 3 {
        0 => SchedulePolicy::RoundRobin,
        1 => SchedulePolicy::ShortestQueue,
        _ => SchedulePolicy::StoryAffinity,
    }
}

fn serve(trace: &ArrivalTrace, config: ServeConfig) -> ServeOutcome {
    Server::new(suite(), config).serve(trace)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Under an arbitrary campaign (corruption + crashes + SEUs +
    /// overload degradation), completions, sheds and rejections partition
    /// the trace by id; the fault ledger matches the outcome vectors; and
    /// the serial engine reproduces the parallel engine's bytes.
    #[test]
    fn every_request_is_answered_once_or_shed(
        trace_seed in 0u64..1000,
        requests in 24usize..72,
        rate_us in 40u64..200,
        pool in 0usize..5,
        instances in 1usize..4,
        cache in 0usize..5,
        queue in 8usize..64,
        pick in any::<u8>(),
        fault_seed in 0u64..1000,
        corrupt_pct in 0u32..30,
        retries in 0u32..3,
        crashes in 0u32..4,
        watchdog_us in 200u64..900,
        seus in 0u32..8,
        depth in 0usize..10,
        margin_q in 0u32..6,
    ) {
        let t = ArrivalTrace::generate(
            &TraceConfig {
                requests,
                seed: trace_seed,
                mean_interarrival_s: rate_us as f64 * 1e-6,
                story_pool: pool,
            },
            suite(),
        );
        let config = ServeConfig {
            instances,
            queue_capacity: queue,
            story_cache: cache,
            policy: policy(pick),
            faults: FaultConfig {
                seed: fault_seed,
                link_corrupt_prob: f64::from(corrupt_pct) / 100.0,
                max_retries: retries,
                backoff_base_s: 2e-6,
                crashes,
                crash_cooldown_s: 300e-6,
                watchdog_s: watchdog_us as f64 * 1e-6,
                seus,
                degrade_depth: depth,
                degrade_margin: margin_q as f32 * 0.25,
                node_kills: 0,
            },
            ..ServeConfig::default()
        };
        let out = serve(&t, config.clone());

        // Partition: every trace id lands in exactly one of the three
        // outcome vectors.
        let n = t.len();
        let mut seen = vec![0u32; n];
        for c in &out.completions {
            seen[c.request.id as usize] += 1;
        }
        for s in &out.sheds {
            seen[s.id as usize] += 1;
        }
        for r in &out.rejections {
            seen[r.request.id as usize] += 1;
        }
        for (id, count) in seen.iter().enumerate() {
            prop_assert_eq!(
                *count, 1,
                "request {} appears {} times across completions/sheds/rejections",
                id, count
            );
        }
        prop_assert_eq!(
            out.completions.len() + out.sheds.len() + out.rejections.len(),
            n
        );
        prop_assert_eq!(out.report.completed, out.completions.len());
        prop_assert_eq!(out.report.rejected, out.rejections.len());

        // The fault ledger agrees with the outcome vectors.
        let fr = &out.report.fault;
        prop_assert_eq!(fr.enabled, config.faults.is_active());
        if fr.enabled {
            prop_assert_eq!(fr.shed_link as usize, out.sheds.len());
            prop_assert_eq!(fr.shed_overload as usize, out.rejections.len());
            prop_assert_eq!(fr.link_corruptions, fr.retransmits + fr.retry_exhausted);
            prop_assert!(fr.failovers <= fr.watchdog_fires);
            prop_assert!(fr.crashes <= crashes as u64);
            prop_assert!(fr.seu_events <= u64::from(seus));
            prop_assert!(fr.scrubs <= fr.seu_events);
        } else {
            prop_assert!(out.sheds.is_empty());
        }
        let degraded = out
            .completions
            .iter()
            .filter(|c| c.degraded)
            .count() as u64;
        prop_assert!(degraded <= fr.degraded, "flagged {degraded} > ledger {}", fr.degraded);

        // Engine invariance survives the campaign.
        let serial = serve(&t, ServeConfig { engine: EngineMode::Serial, ..config });
        prop_assert_eq!(&serial, &out);
        prop_assert_eq!(
            serde_json::to_string(&serial.report).expect("serializable report"),
            serde_json::to_string(&out.report).expect("serializable report"),
        );
    }

    /// Corruption-only campaign (no crashes, so each request dispatches
    /// exactly once): retransmission holds the link in place, so the FIFO
    /// grant order is preserved — a request dispatched strictly earlier
    /// never starts its upload later than one dispatched after it.
    #[test]
    fn retransmission_never_reorders_link_transfers(
        trace_seed in 0u64..1000,
        requests in 24usize..72,
        rate_us in 60u64..250,
        pool in 0usize..5,
        instances in 1usize..4,
        cache in 0usize..5,
        pick in any::<u8>(),
        fault_seed in 0u64..1000,
        corrupt_pct in 5u32..40,
        retries in 0u32..4,
    ) {
        let t = ArrivalTrace::generate(
            &TraceConfig {
                requests,
                seed: trace_seed,
                mean_interarrival_s: rate_us as f64 * 1e-6,
                story_pool: pool,
            },
            suite(),
        );
        let out = serve(&t, ServeConfig {
            instances,
            queue_capacity: 256,
            story_cache: cache,
            policy: policy(pick),
            faults: FaultConfig {
                seed: fault_seed,
                link_corrupt_prob: f64::from(corrupt_pct) / 100.0,
                max_retries: retries,
                backoff_base_s: 2e-6,
                ..FaultConfig::none()
            },
            ..ServeConfig::default()
        });

        // Per-completion lifecycle stays well-formed even through retries.
        for c in &out.completions {
            let ts = &c.timestamps;
            prop_assert!(ts.dispatch <= ts.upload_start);
            prop_assert!(ts.upload_start <= ts.upload_end);
            prop_assert!(ts.upload_end <= ts.compute_start);
        }

        // FIFO: sort by dispatch instant; every upload must start no
        // earlier than the latest upload of any strictly earlier dispatch.
        let mut order: Vec<_> = out
            .completions
            .iter()
            .map(|c| (c.timestamps.dispatch, c.request.id, c.timestamps.upload_start))
            .collect();
        order.sort();
        let mut i = 0;
        while i < order.len() {
            // Group equal-dispatch requests: their relative grant order is
            // an implementation detail, but the whole group must come
            // after everything dispatched strictly earlier.
            let mut j = i;
            while j < order.len() && order[j].0 == order[i].0 {
                j += 1;
            }
            if i > 0 {
                let earlier_max = order[..i].iter().map(|e| e.2).max().expect("nonempty");
                for e in &order[i..j] {
                    prop_assert!(
                        e.2 >= earlier_max,
                        "request {} (dispatch {:?}) uploaded at {:?}, before an \
                         earlier-dispatched request's upload at {:?}",
                        e.1, e.0, e.2, earlier_max
                    );
                }
            }
            i = j;
        }

        // The retry ledger is internally consistent.
        let fr = &out.report.fault;
        prop_assert_eq!(fr.link_corruptions, fr.retransmits + fr.retry_exhausted);
        prop_assert_eq!(fr.shed_link as usize, out.sheds.len());
        prop_assert_eq!(fr.crashes, 0);
        prop_assert_eq!(fr.failovers, 0);
        prop_assert_eq!(fr.scrubs, 0);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// A plan with nothing to inject is invisible: arming the campaign
    /// machinery (seed, watchdog, retry budget) without any fault source
    /// reproduces the plain serve byte-for-byte.
    #[test]
    fn zero_fault_plan_is_byte_identical_to_no_plan(
        trace_seed in 0u64..1000,
        requests in 16usize..48,
        rate_us in 80u64..300,
        pool in 0usize..5,
        instances in 1usize..4,
        fault_seed in any::<u64>(),
        watchdog_us in 0u64..900,
    ) {
        let t = ArrivalTrace::generate(
            &TraceConfig {
                requests,
                seed: trace_seed,
                mean_interarrival_s: rate_us as f64 * 1e-6,
                story_pool: pool,
            },
            suite(),
        );
        let base = ServeConfig {
            instances,
            queue_capacity: 64,
            story_cache: 2,
            ..ServeConfig::default()
        };
        let idle = FaultConfig {
            seed: fault_seed,
            watchdog_s: watchdog_us as f64 * 1e-6,
            max_retries: 7,
            ..FaultConfig::none()
        };
        prop_assert!(!idle.is_active());
        let plain = serve(&t, base.clone());
        let armed = serve(&t, ServeConfig { faults: idle, ..base });
        prop_assert_eq!(&plain, &armed);
        prop_assert_eq!(
            serde_json::to_string(&plain.report).expect("serializable report"),
            serde_json::to_string(&armed.report).expect("serializable report"),
        );
    }
}
