//! Scheduler determinism and orchestration-purity equivalence.
//!
//! The serving layer must be a *pure orchestrator*: replaying the same
//! trace on any instance count, any scheduler policy, and any worker-pool
//! width yields identical per-request answers, and — with the story cache
//! off — every served inference is bit-identical to running the same
//! sample standalone on an [`Accelerator`]. With the cache on, hits may
//! shed CONTROL/WRITE cycles and upload time, but never touch the
//! READ/OUTPUT side of a run.

use mann_babi::TaskId;
use mann_core::{SuiteConfig, TaskSuite};
use mann_hw::{AccelConfig, Accelerator};
use mann_serve::{ArrivalTrace, EngineMode, SchedulePolicy, ServeConfig, Server, TraceConfig};

fn suite() -> TaskSuite {
    let cfg = SuiteConfig {
        tasks: vec![
            TaskId::SingleSupportingFact,
            TaskId::TwoSupportingFacts,
            TaskId::AgentMotivations,
        ],
        train_samples: 120,
        test_samples: 16,
        seed: 21,
        ..SuiteConfig::quick()
    };
    TaskSuite::build(&cfg)
}

fn trace(suite: &TaskSuite) -> ArrivalTrace {
    ArrivalTrace::generate(
        &TraceConfig {
            requests: 80,
            seed: 7,
            mean_interarrival_s: 120e-6,
            ..TraceConfig::default()
        },
        suite,
    )
}

#[test]
fn instance_count_never_changes_a_result() {
    let s = suite();
    let t = trace(&s);
    // Cache off: service times are instance-independent, so the full
    // InferenceRun must replay identically on any replica count.
    let outcomes: Vec<_> = [1usize, 2, 4]
        .into_iter()
        .map(|instances| {
            let server = Server::new(
                &s,
                ServeConfig {
                    instances,
                    queue_capacity: 256,
                    story_cache: 0,
                    ..ServeConfig::default()
                },
            );
            server.serve(&t)
        })
        .collect();
    let reference = &outcomes[0];
    assert_eq!(reference.completions.len(), t.len());
    for out in &outcomes[1..] {
        assert_eq!(out.completions.len(), reference.completions.len());
        for (a, b) in reference.completions.iter().zip(&out.completions) {
            assert_eq!(a.request, b.request);
            // The full InferenceRun — answer, logit path length, cycles —
            // is identical; only scheduling metadata may differ.
            assert_eq!(a.run, b.run);
            assert_eq!(a.correct, b.correct);
        }
        assert_eq!(out.report.answers_digest, reference.report.answers_digest);
        assert_eq!(out.report.accuracy, reference.report.accuracy);
        assert_eq!(out.report.phase_totals, reference.report.phase_totals);
    }
}

#[test]
fn cached_serving_preserves_answers_across_instance_counts() {
    let s = suite();
    let t = trace(&s);
    // With per-instance caches, *which* requests hit depends on the
    // replica count — but answers, comparisons and the READ/OUTPUT phases
    // never move.
    let outcomes: Vec<_> = [1usize, 2, 4]
        .into_iter()
        .map(|instances| {
            let server = Server::new(
                &s,
                ServeConfig {
                    instances,
                    queue_capacity: 256,
                    policy: SchedulePolicy::StoryAffinity,
                    ..ServeConfig::default()
                },
            );
            server.serve(&t)
        })
        .collect();
    let reference = &outcomes[0];
    for out in &outcomes[1..] {
        assert_eq!(out.report.answers_digest, reference.report.answers_digest);
        assert_eq!(out.report.accuracy, reference.report.accuracy);
        for (a, b) in reference.completions.iter().zip(&out.completions) {
            assert_eq!(a.run.answer, b.run.answer);
            assert_eq!(a.run.comparisons, b.run.comparisons);
            assert_eq!(a.run.phases.addressing, b.run.phases.addressing);
            assert_eq!(a.run.phases.read, b.run.phases.read);
            assert_eq!(a.run.phases.controller, b.run.phases.controller);
            assert_eq!(a.run.phases.output, b.run.phases.output);
        }
    }
}

#[test]
fn served_runs_equal_standalone_accelerator_runs() {
    let s = suite();
    let t = trace(&s);
    let config = ServeConfig {
        instances: 3,
        story_cache: 0,
        ..ServeConfig::default()
    };
    let server = Server::new(&s, config.clone());
    let out = server.serve(&t);
    assert_eq!(out.completions.len(), t.len());

    // An independently constructed accelerator per task, exactly as a
    // standalone pipeline would run it.
    let standalone: Vec<Accelerator> = s
        .tasks
        .iter()
        .map(|task| {
            Accelerator::new(
                task.model.clone(),
                AccelConfig {
                    clock: config.clock,
                    pcie: config.pcie,
                    power: config.power,
                    ith: None,
                    use_ordering: config.use_ordering,
                    ..AccelConfig::default()
                },
            )
        })
        .collect();
    for c in &out.completions {
        let sample = &s.tasks[c.request.task_idx].test_set[c.request.sample_idx];
        let direct = standalone[c.request.task_idx].run(sample);
        assert_eq!(
            c.run, direct,
            "request {} diverged from standalone",
            c.request.id
        );
        assert_eq!(c.correct, direct.answer == sample.answer);
    }
}

#[test]
fn reports_are_byte_identical_across_worker_pool_widths_and_engines() {
    let s = suite();
    let t = trace(&s);
    let server = Server::new(
        &s,
        ServeConfig {
            instances: 2,
            ..ServeConfig::default()
        },
    );
    let serial_server = Server::new(
        &s,
        ServeConfig {
            instances: 2,
            engine: EngineMode::Serial,
            ..ServeConfig::default()
        },
    );
    std::env::remove_var("MANN_THREADS");
    let auto = server.serve(&t);
    let auto_json = serde_json::to_string(&auto.report).expect("serializable report");
    for width in ["1", "3", "17"] {
        std::env::set_var("MANN_THREADS", width);
        let pinned = server.serve(&t);
        assert_eq!(pinned, auto, "outcome changed with MANN_THREADS={width}");
        assert_eq!(
            serde_json::to_string(&pinned.report).expect("serializable report"),
            auto_json,
            "report bytes changed with MANN_THREADS={width}"
        );
        // The serial engine ignores the pool entirely and must still match
        // the parallel engine bit for bit.
        let serial = serial_server.serve(&t);
        assert_eq!(serial, auto, "serial engine diverged at width {width}");
        assert_eq!(
            serde_json::to_string(&serial.report).expect("serializable report"),
            auto_json,
            "serial report bytes diverged at width {width}"
        );
    }
    std::env::remove_var("MANN_THREADS");
}

#[test]
fn policies_and_batching_preserve_the_answer_digest() {
    let s = suite();
    let t = trace(&s);
    let digest = |policy, upload_batch, inflight_limit| {
        let server = Server::new(
            &s,
            ServeConfig {
                instances: 3,
                policy,
                upload_batch,
                inflight_limit,
                queue_capacity: 256,
                ..ServeConfig::default()
            },
        );
        let out = server.serve(&t);
        assert_eq!(out.completions.len(), t.len());
        out.report.answers_digest
    };
    let reference = digest(SchedulePolicy::ShortestQueue, 4, 2);
    assert_eq!(digest(SchedulePolicy::RoundRobin, 4, 2), reference);
    assert_eq!(digest(SchedulePolicy::ShortestQueue, 1, 1), reference);
    assert_eq!(digest(SchedulePolicy::RoundRobin, 8, 4), reference);
    assert_eq!(digest(SchedulePolicy::StoryAffinity, 4, 2), reference);
    assert_eq!(digest(SchedulePolicy::StoryAffinity, 8, 4), reference);
}
