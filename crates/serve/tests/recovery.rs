//! Integration tests for the durable story store.
//!
//! Four contracts hold end to end:
//!
//! 1. Journaling is pure: the `wal_records` a serve emits are a function
//!    of `(suite, trace, config)` alone — byte-identical across engines
//!    and thread counts, and collecting them never perturbs the report.
//! 2. Zero-WAL configs are invisible: a report serialized without the
//!    WAL carries no `durability` key, and a durable run's report minus
//!    its durability section is byte-identical to the non-durable run.
//! 3. A `node_kill` is survivable and deterministic: the torn tail is
//!    detected, replay reconstructs the exact pre-crash story residency,
//!    and the recovered report's bytes are independent of the WAL
//!    directory and identical run to run.
//! 4. The on-disk journal is complete: replaying the WAL directory of a
//!    finished campaign reproduces every completion the report counted.

use std::path::PathBuf;
use std::sync::OnceLock;

use mann_babi::TaskId;
use mann_core::{SuiteConfig, TaskSuite};
use mann_serve::{
    serve_durable, ArrivalTrace, EngineMode, FaultConfig, SchedulePolicy, ServeConfig, Server,
    TraceConfig, WalConfig,
};
use mann_store::{replay_dir, StoreState, KIND_COMPLETION, KIND_STORY};
use serde::Serialize;

fn suite() -> &'static TaskSuite {
    static SUITE: OnceLock<TaskSuite> = OnceLock::new();
    SUITE.get_or_init(|| {
        TaskSuite::build(&SuiteConfig {
            tasks: vec![TaskId::SingleSupportingFact, TaskId::AgentMotivations],
            train_samples: 120,
            test_samples: 12,
            seed: 5,
            ..SuiteConfig::quick()
        })
    })
}

fn trace() -> ArrivalTrace {
    ArrivalTrace::generate(
        &TraceConfig {
            requests: 64,
            seed: 11,
            mean_interarrival_s: 60e-6,
            story_pool: 4,
        },
        suite(),
    )
}

/// A fresh scratch WAL directory; any leftover from a previous run is
/// removed so segment sequence numbers always start from zero.
fn wal_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("mann_serve_recovery_{name}"));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn base_config() -> ServeConfig {
    ServeConfig {
        instances: 2,
        queue_capacity: 128,
        story_cache: 3,
        policy: SchedulePolicy::StoryAffinity,
        ..ServeConfig::default()
    }
}

fn durable_config(dir: &std::path::Path, snapshot_every: u64, node_kills: u32) -> ServeConfig {
    ServeConfig {
        faults: FaultConfig {
            node_kills,
            ..FaultConfig::none()
        },
        wal: WalConfig {
            enabled: true,
            dir: dir.display().to_string(),
            snapshot_every,
            ..WalConfig::default()
        },
        ..base_config()
    }
}

/// Contract 1: the journal a serve emits is engine-invariant and
/// canonically ordered, and story records carry the quantized rows that
/// a replay needs to rebuild residency.
#[test]
fn journal_is_engine_invariant_and_canonical() {
    let t = trace();
    let dir = wal_dir("engine_invariant");
    let parallel = Server::new(suite(), durable_config(&dir, 0, 0)).serve(&t);
    let serial = Server::new(
        suite(),
        ServeConfig {
            engine: EngineMode::Serial,
            ..durable_config(&dir, 0, 0)
        },
    )
    .serve(&t);

    assert!(
        !parallel.wal_records.is_empty(),
        "journal must not be empty"
    );
    assert_eq!(
        parallel.wal_records, serial.wal_records,
        "serial and parallel engines must journal identical records"
    );
    assert_eq!(
        parallel.report.to_value().print(),
        serial.report.to_value().print(),
        "journaling must not break engine invariance of the report"
    );

    let mut sorted = parallel.wal_records.clone();
    sorted.sort_by(|a, b| {
        (a.stamp_ps, a.kind, a.id, a.task, a.digest)
            .cmp(&(b.stamp_ps, b.kind, b.id, b.task, b.digest))
    });
    assert_eq!(
        parallel.wal_records, sorted,
        "journal must be canonically ordered"
    );
    for rec in &parallel.wal_records {
        if rec.kind == KIND_STORY {
            assert!(
                !rec.rows.is_empty(),
                "story records must carry quantized rows"
            );
        } else {
            assert!(rec.rows.is_empty(), "only story records carry rows");
        }
    }
    let completions = parallel
        .wal_records
        .iter()
        .filter(|r| r.kind == KIND_COMPLETION)
        .count();
    assert_eq!(
        completions, parallel.report.completed,
        "every completed request must be journaled exactly once"
    );
}

/// Contract 2: the WAL is report-invisible. A non-durable report has no
/// `durability` key at all, and the durable report differs from it in
/// nothing but that section.
#[test]
fn zero_wal_configs_reproduce_non_durable_bytes() {
    let t = trace();
    let plain = Server::new(suite(), base_config()).serve(&t);
    assert!(
        !plain.report.to_value().print().contains("\"durability\""),
        "a non-durable report must not serialize a durability key"
    );

    let dir = wal_dir("invisible");
    let durable = serve_durable(&Server::new(suite(), durable_config(&dir, 16, 0)), &t)
        .expect("durable serve");
    assert!(durable.report.durability.enabled);
    assert_eq!(
        durable.report.sans_durability().to_value().print(),
        plain.report.to_value().print(),
        "the WAL may only add the durability section, never move other bytes"
    );
}

/// Contract 3: a node kill mid-campaign recovers deterministically — the
/// torn tail is detected and the report bytes are independent of the WAL
/// directory (two fresh dirs, identical bytes).
#[test]
fn node_kill_recovery_is_deterministic_and_dir_independent() {
    let t = trace();
    let dir_a = wal_dir("kill_a");
    let dir_b = wal_dir("kill_b");
    let a = serve_durable(&Server::new(suite(), durable_config(&dir_a, 16, 1)), &t)
        .expect("durable serve a");
    let b = serve_durable(&Server::new(suite(), durable_config(&dir_b, 16, 1)), &t)
        .expect("durable serve b");

    let d = &a.report.durability;
    assert_eq!(d.node_kills, 1, "exactly one node kill must fire");
    assert_eq!(d.torn_tails, 1, "the torn WAL tail must be detected");
    assert!(
        d.dropped_bytes > 0,
        "the half-written frame must be dropped"
    );
    assert!(d.replayed_records > 0, "recovery must replay the journal");
    assert!(d.recovery_mttr_s > 0.0, "replay must be charged to MTTR");
    assert!(
        d.redispatched > 0,
        "in-flight completions must be re-dispatched"
    );
    assert_eq!(
        a.report.to_value().print(),
        b.report.to_value().print(),
        "recovery bytes must not depend on the WAL directory"
    );

    // The kill-and-recover campaign is journal-level: the served answers
    // and every non-durability section still match the no-WAL run.
    let plain = Server::new(suite(), base_config()).serve(&t);
    assert_eq!(
        a.report.sans_durability().to_value().print(),
        plain.report.to_value().print(),
        "a recovered run must reproduce the no-crash report bytes"
    );
}

/// Contract 4: the finished on-disk journal is replayable and complete —
/// snapshots compacted old segments, and the fold over (snapshot + live
/// segments) counts exactly the completions the report published.
#[test]
fn finished_journal_replays_to_the_reported_completions() {
    let t = trace();
    let dir = wal_dir("replay_complete");
    let out = serve_durable(&Server::new(suite(), durable_config(&dir, 12, 0)), &t)
        .expect("durable serve");
    let d = &out.report.durability;
    assert!(d.snapshots > 0, "a small snapshot interval must snapshot");
    assert!(d.gc_segments > 0, "compaction must drop covered segments");
    assert!(
        d.fsync_s > 0.0,
        "fsyncs must be charged to the host cost model"
    );

    let replay = replay_dir(&dir).expect("strict replay of a clean journal");
    let state = StoreState::from_replay(replay.snapshot.as_ref(), &replay.records);
    assert_eq!(
        state.completion_count(),
        out.report.completed,
        "replaying the WAL directory must reproduce every reported completion"
    );
}

/// Misconfigurations are hard errors at startup, not silent fallbacks.
#[test]
fn misconfigured_durability_is_a_hard_error() {
    let cfg = ServeConfig {
        faults: FaultConfig {
            node_kills: 1,
            ..FaultConfig::none()
        },
        ..base_config()
    };
    let err = cfg
        .validate()
        .expect_err("node_kills without a WAL must fail");
    assert!(err.contains("write-ahead log"), "unexpected error: {err}");

    let enabled_without_dir = WalConfig {
        enabled: true,
        ..WalConfig::default()
    };
    assert!(enabled_without_dir.validate().is_err());
    assert!(WalConfig::parse("dir,snap=oops").is_err());
    assert!(WalConfig::parse("dir,wibble=3").is_err());
}
