//! Cluster test battery: determinism, single-node reduction, cross-shard
//! failover, and pooled-percentile aggregation.
//!
//! The cluster layer's contract:
//!
//! 1. A [`ClusterReport`] is byte-identical across `MANN_THREADS`
//!    settings, serial/parallel engines, and shard-iteration order.
//! 2. At K=1/R=1 the layer is inert: outcome and report bytes equal the
//!    single-node [`Server`] path exactly.
//! 3. With R ≥ 2, a request stranded by an instance crash completes on
//!    the story's replica shard; MTTR is accounted; completions + sheds +
//!    rejections still partition the trace — nothing is double-completed.
//! 4. Fleet latency percentiles are ranked over the pooled raw samples,
//!    never averaged per shard.

use std::collections::{HashMap, HashSet};
use std::sync::OnceLock;

use mann_babi::TaskId;
use mann_core::{SuiteConfig, TaskSuite};
use mann_serve::{
    ArrivalTrace, Cluster, ClusterConfig, EngineMode, FaultConfig, LatencySummary, SchedulePolicy,
    ServeConfig, Server, TraceConfig,
};
use serde::Serialize;

fn suite() -> &'static TaskSuite {
    static SUITE: OnceLock<TaskSuite> = OnceLock::new();
    SUITE.get_or_init(|| {
        TaskSuite::build(&SuiteConfig {
            tasks: vec![TaskId::SingleSupportingFact, TaskId::AgentMotivations],
            train_samples: 100,
            test_samples: 12,
            seed: 5,
            ..SuiteConfig::quick()
        })
    })
}

fn trace(requests: usize, seed: u64, pool: usize) -> ArrivalTrace {
    ArrivalTrace::generate(
        &TraceConfig {
            requests,
            seed,
            mean_interarrival_s: 50e-6,
            story_pool: pool,
        },
        suite(),
    )
}

fn base_config() -> ServeConfig {
    ServeConfig {
        instances: 2,
        queue_capacity: 128,
        story_cache: 4,
        policy: SchedulePolicy::StoryAffinity,
        ..ServeConfig::default()
    }
}

fn crash_campaign() -> FaultConfig {
    FaultConfig {
        seed: 9,
        crashes: 3,
        crash_cooldown_s: 600e-6,
        watchdog_s: 250e-6,
        ..FaultConfig::none()
    }
}

fn report_bytes(cluster: &Cluster<'_>, t: &ArrivalTrace) -> String {
    cluster.serve(t).report.to_value().print()
}

#[test]
fn cluster_report_is_engine_and_thread_invariant() {
    let t = trace(96, 17, 5);
    let config = ClusterConfig {
        shards: 3,
        replication: 2,
        base: ServeConfig {
            faults: crash_campaign(),
            ..base_config()
        },
        ..ClusterConfig::default()
    };
    let serial_config = ClusterConfig {
        base: ServeConfig {
            engine: EngineMode::Serial,
            ..config.base.clone()
        },
        ..config.clone()
    };
    std::env::remove_var("MANN_THREADS");
    let auto = report_bytes(&Cluster::new(suite(), config.clone()), &t);
    for width in ["1", "4"] {
        std::env::set_var("MANN_THREADS", width);
        assert_eq!(
            report_bytes(&Cluster::new(suite(), config.clone()), &t),
            auto,
            "cluster bytes changed with MANN_THREADS={width}"
        );
        assert_eq!(
            report_bytes(&Cluster::new(suite(), serial_config.clone()), &t),
            auto,
            "serial engine diverged at width {width}"
        );
    }
    std::env::remove_var("MANN_THREADS");
}

#[test]
fn k1_r1_cluster_is_byte_identical_to_single_node() {
    let t = trace(72, 23, 4);
    // Faults armed so the reduction also covers the campaign path.
    let base = ServeConfig {
        faults: crash_campaign(),
        ..base_config()
    };
    let single = Server::new(suite(), base.clone()).serve(&t);
    let cluster = Cluster::new(
        suite(),
        ClusterConfig {
            shards: 1,
            replication: 1,
            base,
            ..ClusterConfig::default()
        },
    )
    .serve(&t);
    assert_eq!(
        cluster.report.to_value().print(),
        single.report.to_value().print(),
        "inert cluster must serialize as the single-node report"
    );
    assert_eq!(
        cluster.report.render(),
        single.report.render(),
        "inert cluster must render as the single-node report"
    );
    assert_eq!(cluster.completions, single.completions);
    assert_eq!(cluster.rejections, single.rejections);
    assert_eq!(cluster.sheds, single.sheds);
    assert!(cluster.failovers.is_empty());
}

#[test]
fn shard_iteration_order_is_immaterial() {
    let t = trace(96, 31, 5);
    let cluster = Cluster::new(
        suite(),
        ClusterConfig {
            shards: 4,
            replication: 2,
            base: ServeConfig {
                faults: crash_campaign(),
                ..base_config()
            },
            ..ClusterConfig::default()
        },
    );
    let identity = cluster.serve_in_order(&t, &[0, 1, 2, 3]);
    for order in [[3, 2, 1, 0], [2, 0, 3, 1], [1, 3, 0, 2]] {
        let permuted = cluster.serve_in_order(&t, &order);
        assert_eq!(permuted, identity, "outcome changed under order {order:?}");
        assert_eq!(
            permuted.report.to_value().print(),
            identity.report.to_value().print(),
            "report bytes changed under order {order:?}"
        );
    }
}

#[test]
#[should_panic(expected = "permutation")]
fn bad_shard_order_is_rejected() {
    let t = trace(8, 1, 2);
    let cluster = Cluster::new(
        suite(),
        ClusterConfig {
            shards: 2,
            ..ClusterConfig::default()
        },
    );
    let _ = cluster.serve_in_order(&t, &[0, 0]);
}

/// Arms an instance-crash plan on exactly one shard (the one owning the
/// most primaries, so the campaign has traffic to strand) and proves the
/// cross-shard failover contract end to end.
#[test]
fn cross_shard_failover_rescues_stranded_requests() {
    let t = trace(144, 41, 4);
    let shards = 3;
    let probe = Cluster::new(
        suite(),
        ClusterConfig {
            shards,
            replication: 2,
            base: base_config(),
            ..ClusterConfig::default()
        },
    );
    // Route the trace once to find the busiest shard — the victim.
    let mut owned = vec![0usize; shards];
    for r in &t.requests {
        owned[probe.router().primary(probe_key(r))] += 1;
    }
    let victim = (0..shards).max_by_key(|&s| owned[s]).unwrap();

    let mut shard_faults = vec![None; shards];
    shard_faults[victim] = Some(FaultConfig {
        seed: 13,
        crashes: 5,
        crash_cooldown_s: 900e-6,
        watchdog_s: 200e-6,
        ..FaultConfig::none()
    });
    let out = Cluster::new(
        suite(),
        ClusterConfig {
            shards,
            replication: 2,
            shard_faults,
            base: base_config(),
            ..ClusterConfig::default()
        },
    )
    .serve(&t);

    // The campaign bit: requests were stranded and handed cross-shard.
    let fo = &out.report.failover;
    assert!(fo.exports > 0, "campaign stranded nothing — tune the plan");
    assert!(!out.failovers.is_empty());
    assert_eq!(fo.completed + fo.lost, fo.exports);
    assert!(fo.replay_link_bytes > 0, "replicas must pay the re-upload");
    assert!(fo.mean_failover_latency_s > 0.0);

    // Every affected request completed on a replica shard — and only the
    // victim's shard report shows crashes.
    let completed_ids: HashSet<u64> = out.completions.iter().map(|c| c.request.id).collect();
    assert_eq!(fo.lost, 0, "every stranded request must complete");
    for id in &out.failovers {
        assert!(completed_ids.contains(id), "failover {id} never completed");
    }
    for (s, r) in out.report.per_shard.iter().enumerate() {
        if s == victim {
            assert!(r.fault.crashes > 0, "victim shard never crashed");
        } else {
            assert_eq!(r.fault.crashes, 0, "shard {s} crashed without a plan");
        }
    }
    // MTTR of the instance crashes is accounted in the merged FaultReport.
    assert!(out.report.fault.enabled);
    assert!(out.report.fault.mttr_instance_s > 0.0);
    assert!(out.report.fault.failovers >= fo.exports);

    // Zero double-completions: completions + rejections + sheds partition
    // the trace by id, exactly once each.
    let mut seen: Vec<u64> = out
        .completions
        .iter()
        .map(|c| c.request.id)
        .chain(out.rejections.iter().map(|r| r.request.id))
        .chain(out.sheds.iter().map(|r| r.id))
        .collect();
    let total = seen.len();
    seen.sort_unstable();
    seen.dedup();
    assert_eq!(seen.len(), total, "a request was accounted twice");
    let all: Vec<u64> = t.requests.iter().map(|r| r.id).collect();
    assert_eq!(seen, all, "partition does not cover the trace");
    assert_eq!(
        out.report.completed + out.report.rejected + out.report.shed,
        t.len()
    );
}

/// The routing key a request hashes under — mirrors the cluster's
/// affinity unit (story digest mixed with the task index).
fn probe_key(r: &mann_serve::Request) -> u64 {
    let sample = &suite().tasks[r.task_idx].test_set[r.sample_idx];
    mann_hw::story_digest(sample) ^ (r.task_idx as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15)
}

/// Fleet percentiles come from the pooled samples: the report's latency
/// summary equals a direct summary of every completion's end-to-end
/// latency, and differs from the (wrong) mean of per-shard p99s on a
/// skewed campaign.
#[test]
fn fleet_latency_is_pooled_not_averaged() {
    let t = trace(192, 47, 6);
    // Weight skew concentrates load: the heavy shard queues deep and grows
    // a latency tail the light shards never see.
    let out = Cluster::new(
        suite(),
        ClusterConfig {
            shards: 2,
            replication: 1,
            weights: vec![6, 1],
            base: ServeConfig {
                instances: 1,
                ..base_config()
            },
            ..ClusterConfig::default()
        },
    )
    .serve(&t);
    let arrival: HashMap<u64, _> = t.requests.iter().map(|r| (r.id, r.arrival)).collect();
    let samples: Vec<f64> = out
        .completions
        .iter()
        .map(|c| {
            c.timestamps
                .drain_end
                .saturating_sub(arrival[&c.request.id])
                .as_s()
        })
        .collect();
    assert_eq!(
        out.report.latency,
        LatencySummary::from_pooled([samples.as_slice()]),
        "report latency must summarize the pooled samples"
    );
    let mean_of_p99s: f64 = out
        .report
        .per_shard
        .iter()
        .map(|r| r.latency.p99_s)
        .sum::<f64>()
        / out.report.per_shard.len() as f64;
    let pooled_p99 = out.report.latency.p99_s;
    assert!(
        (pooled_p99 - mean_of_p99s).abs() / pooled_p99 > 0.05,
        "skewed campaign failed to separate pooled p99 {pooled_p99:.6} \
         from mean-of-p99s {mean_of_p99s:.6}"
    );
}

/// Routing never changes an answer: the completion digest is invariant
/// across shard counts.
#[test]
fn answers_digest_is_invariant_across_shard_counts() {
    let t = trace(96, 53, 5);
    let digest = |shards: usize| {
        Cluster::new(
            suite(),
            ClusterConfig {
                shards,
                replication: 1,
                base: base_config(),
                ..ClusterConfig::default()
            },
        )
        .serve(&t)
        .report
        .answers_digest
    };
    let reference = digest(1);
    assert_eq!(digest(2), reference);
    assert_eq!(digest(4), reference);
}
