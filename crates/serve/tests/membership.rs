//! Live-membership integration battery: churn campaigns (drain + fail +
//! join + retune + hot-key split) on a real cluster serve.
//!
//! The membership layer's contract:
//!
//! 1. A churn campaign loses nothing: completions + rejections + sheds
//!    still partition the trace by id, exactly once each — a drained or
//!    failed shard's work lands on a live replica, never on the floor
//!    and never twice.
//! 2. The campaign report is byte-identical across `MANN_THREADS`,
//!    serial/parallel engines, and shard-iteration order: liveness is
//!    resolved against the plan's timeline, never against event-loop
//!    state.
//! 3. An empty plan is invisible: no `membership` key in the JSON, no
//!    membership table in the render, bytes equal to a plain cluster.
//! 4. When every replica of a key is down, requests are shed through the
//!    dedicated unroutable counter — accounted, not dropped.
//! 5. A membership `fail` event composes with the WAL: the cut journal
//!    is naturally consistent and the campaign still answers everything
//!    a live shard could reach.
//! 6. The hot-key splitter fans one pathological story across its full
//!    replica set without changing a single answer.

use std::collections::HashSet;
use std::sync::OnceLock;

use mann_babi::TaskId;
use mann_core::{SuiteConfig, TaskSuite};
use mann_serve::{
    serve_cluster_durable, ArrivalTrace, Cluster, ClusterConfig, ClusterOutcome, EngineMode,
    MembershipPlan, SchedulePolicy, ServeConfig, TraceConfig, WalConfig,
};
use serde::Serialize;

fn suite() -> &'static TaskSuite {
    static SUITE: OnceLock<TaskSuite> = OnceLock::new();
    SUITE.get_or_init(|| {
        TaskSuite::build(&SuiteConfig {
            tasks: vec![TaskId::SingleSupportingFact, TaskId::AgentMotivations],
            train_samples: 100,
            test_samples: 12,
            seed: 5,
            ..SuiteConfig::quick()
        })
    })
}

fn trace(requests: usize, seed: u64, pool: usize) -> ArrivalTrace {
    ArrivalTrace::generate(
        &TraceConfig {
            requests,
            seed,
            mean_interarrival_s: 50e-6,
            story_pool: pool,
        },
        suite(),
    )
}

fn base_config() -> ServeConfig {
    ServeConfig {
        instances: 2,
        queue_capacity: 128,
        story_cache: 4,
        policy: SchedulePolicy::StoryAffinity,
        ..ServeConfig::default()
    }
}

/// One of everything: a join, a drain, a fail, queue-pressure retuning
/// and the hot-key splitter, on a K=4/R=2 cluster.
fn churn_plan() -> MembershipPlan {
    MembershipPlan::parse_spec(
        "join=3@800,drain=1@2000,fail=2@3000,retune-threshold=0.05,hot-key=8",
    )
    .expect("valid churn spec")
}

fn churn_config() -> ClusterConfig {
    ClusterConfig {
        shards: 4,
        replication: 2,
        membership: churn_plan(),
        base: base_config(),
        ..ClusterConfig::default()
    }
}

/// Completions + rejections + sheds must partition the trace by id:
/// every request accounted exactly once, no matter how much the
/// membership churned under it.
fn assert_partition(out: &ClusterOutcome, t: &ArrivalTrace) {
    let mut seen: Vec<u64> = out
        .completions
        .iter()
        .map(|c| c.request.id)
        .chain(out.rejections.iter().map(|r| r.request.id))
        .chain(out.sheds.iter().map(|r| r.id))
        .collect();
    let total = seen.len();
    seen.sort_unstable();
    seen.dedup();
    assert_eq!(seen.len(), total, "a request was accounted twice");
    let all: Vec<u64> = t.requests.iter().map(|r| r.id).collect();
    assert_eq!(seen, all, "partition does not cover the trace");
    assert_eq!(
        out.report.completed + out.report.rejected + out.report.shed,
        t.len()
    );
}

#[test]
fn churn_campaign_loses_and_double_counts_nothing() {
    let t = trace(144, 41, 5);
    let out = Cluster::new(suite(), churn_config()).serve(&t);
    assert_partition(&out, &t);

    let m = &out.report.membership;
    assert!(m.enabled);
    assert_eq!(m.drains, 1);
    assert_eq!(m.failures, 1);
    assert_eq!(m.joins, 1);
    assert_eq!(m.epochs, m.timeline.len() + 1, "epoch 0 plus one per event");
    assert!(m.hot_keys > 0, "pool of 5 at threshold 8 must go hot");
    assert!(m.split_requests > 0);
    assert!(m.stories_moved > 0, "the drain must hand stories off");
    assert!(m.handoff_bytes > 0 && m.handoff_cycles > 0);
    assert!(m.handoff_s > 0.0 && m.handoff_energy_j > 0.0);
    assert!(m.tracked_keys > 0 && m.moved_keys > 0);
    assert!(
        m.moved_key_fraction > 0.0 && m.moved_key_fraction < 1.0,
        "moved-key fraction {} out of (0, 1)",
        m.moved_key_fraction
    );
    // The unroutable counter is the shed subset with no live replica; a
    // K=4 campaign losing 2 shards still has live coverage everywhere.
    assert_eq!(m.unroutable_shed, out.unroutable.len() as u64);
}

#[test]
fn churn_report_is_engine_thread_and_order_invariant() {
    let t = trace(96, 17, 5);
    let config = churn_config();
    let serial_config = ClusterConfig {
        base: ServeConfig {
            engine: EngineMode::Serial,
            ..config.base.clone()
        },
        ..config.clone()
    };
    let bytes = |cfg: &ClusterConfig| {
        Cluster::new(suite(), cfg.clone())
            .serve(&t)
            .report
            .to_value()
            .print()
    };
    std::env::remove_var("MANN_THREADS");
    let auto = bytes(&config);
    for width in ["1", "4"] {
        std::env::set_var("MANN_THREADS", width);
        assert_eq!(
            bytes(&config),
            auto,
            "churn bytes changed with MANN_THREADS={width}"
        );
        assert_eq!(
            bytes(&serial_config),
            auto,
            "serial engine diverged at width {width}"
        );
    }
    std::env::remove_var("MANN_THREADS");

    let cluster = Cluster::new(suite(), config);
    let identity = cluster.serve_in_order(&t, &[0, 1, 2, 3]);
    assert_eq!(identity.report.to_value().print(), auto);
    for order in [[3, 2, 1, 0], [2, 0, 3, 1], [1, 3, 0, 2]] {
        let permuted = cluster.serve_in_order(&t, &order);
        assert_eq!(permuted, identity, "outcome changed under order {order:?}");
    }
}

#[test]
fn empty_plan_is_byte_invisible() {
    let t = trace(72, 23, 4);
    let with_none = ClusterConfig {
        shards: 3,
        replication: 2,
        membership: MembershipPlan::none(),
        base: base_config(),
        ..ClusterConfig::default()
    };
    let plain = ClusterConfig {
        shards: 3,
        replication: 2,
        base: base_config(),
        ..ClusterConfig::default()
    };
    let out = Cluster::new(suite(), with_none).serve(&t);
    let reference = Cluster::new(suite(), plain).serve(&t);
    assert!(!out.report.membership.enabled);
    let printed = out.report.to_value().print();
    assert_eq!(
        printed,
        reference.report.to_value().print(),
        "an explicit empty plan must serve byte-identically to none"
    );
    assert!(
        !printed.contains("\"membership\""),
        "empty plan must not serialize a membership key"
    );
    assert!(
        !out.report.render().contains("membership"),
        "empty plan must not render a membership table"
    );
}

/// Contract 4: fail every shard's replica set and the stranded tail is
/// shed through the dedicated unroutable counter — never a panic, never
/// a silent drop, and still a perfect partition of the trace.
#[test]
fn all_replicas_down_requests_shed_with_their_own_counter() {
    let t = trace(64, 29, 4);
    let out = Cluster::new(
        suite(),
        ClusterConfig {
            shards: 2,
            replication: 2,
            membership: MembershipPlan::parse_spec("fail=0@1200,fail=1@1800")
                .expect("valid double-failure spec"),
            base: base_config(),
            ..ClusterConfig::default()
        },
    )
    .serve(&t);
    assert_partition(&out, &t);
    assert!(
        !out.unroutable.is_empty(),
        "a 64-request trace outliving both shards must strand arrivals"
    );
    assert_eq!(
        out.report.membership.unroutable_shed,
        out.unroutable.len() as u64
    );
    let shed_ids: HashSet<u64> = out.sheds.iter().map(|r| r.id).collect();
    for id in &out.unroutable {
        assert!(
            shed_ids.contains(id),
            "unroutable {id} must land in the shed set"
        );
    }
    assert_eq!(out.report.membership.failures, 2);
}

/// Contract 5: a membership `fail` composes with the WAL — the journal
/// simply ends at the cut, recovery has nothing to repair, and answers
/// match the non-durable campaign exactly.
#[test]
fn membership_failure_composes_with_the_wal() {
    let t = trace(64, 11, 4);
    let dir = std::env::temp_dir().join("mann_serve_membership_wal");
    let _ = std::fs::remove_dir_all(&dir);
    let plan = MembershipPlan::parse_spec("fail=1@1500").expect("valid spec");
    let durable_cfg = ClusterConfig {
        shards: 2,
        replication: 2,
        membership: plan.clone(),
        base: ServeConfig {
            wal: WalConfig {
                enabled: true,
                dir: dir.display().to_string(),
                ..WalConfig::default()
            },
            ..base_config()
        },
        ..ClusterConfig::default()
    };
    let plain_cfg = ClusterConfig {
        shards: 2,
        replication: 2,
        membership: plan,
        base: base_config(),
        ..ClusterConfig::default()
    };
    let durable = serve_cluster_durable(&Cluster::new(suite(), durable_cfg), &t)
        .expect("durable churn campaign");
    let plain = Cluster::new(suite(), plain_cfg).serve(&t);
    assert_partition(&durable, &t);
    assert_eq!(durable.report.membership.failures, 1);
    assert_eq!(
        durable.report.answers_digest, plain.report.answers_digest,
        "journaling must not change a single answer"
    );
    assert_eq!(durable.completions.len(), plain.completions.len());
    assert!(durable.report.durability.enabled);
    let _ = std::fs::remove_dir_all(&dir);
}

/// Contract 6: on a single pathological story, the splitter fans traffic
/// across the full replica set — more shards busy, same answers.
#[test]
fn hot_key_splitter_spreads_a_pathological_story() {
    let t = trace(96, 37, 1);
    let busy = |plan: MembershipPlan| {
        let out = Cluster::new(
            suite(),
            ClusterConfig {
                shards: 4,
                replication: 4,
                membership: plan,
                base: base_config(),
                ..ClusterConfig::default()
            },
        )
        .serve(&t);
        let shards_busy = out
            .report
            .per_shard
            .iter()
            .filter(|r| r.requests > 0)
            .count();
        (shards_busy, out.report.answers_digest.clone(), out)
    };
    let (cold_busy, cold_digest, _) = busy(MembershipPlan::none());
    let (hot_busy, hot_digest, hot_out) =
        busy(MembershipPlan::parse_spec("hot-key=8").expect("valid spec"));
    assert!(
        hot_busy > cold_busy,
        "splitter must spread load: {hot_busy} busy shards vs {cold_busy}"
    );
    assert_eq!(hot_busy, 4, "R=4 fan-out must reach every shard");
    assert_eq!(
        hot_digest, cold_digest,
        "splitting a hot key must not change answers"
    );
    let m = &hot_out.report.membership;
    assert!(m.hot_keys >= 1);
    assert!(m.split_requests > 0);
    assert_partition(&hot_out, &t);
}
