//! Property tests for the cluster's rendezvous hash router.
//!
//! Four invariants hold for *any* digest population and shard layout:
//!
//! 1. Placement: every key maps to exactly R distinct live shards,
//!    deterministically, and growing R only appends to the chain (prefix
//!    consistency — a replica never moves because more were asked for).
//! 2. Balance: over random digests, uniformly weighted shards each own a
//!    primary share within a constant factor of fair, and a weighted
//!    shard's share tracks its weight.
//! 3. Minimal disruption: removing one shard moves only the keys that
//!    ranked it — every surviving replica of every other key stays put,
//!    in order.
//! 4. Moved-key bound: failing one of K shards re-homes at most its fair
//!    share of primaries (`w_dead / w_total + eps`; `1/K + eps` when
//!    uniform) — the bound the membership layer's drain/fail epochs
//!    rely on to keep hand-off traffic proportional.

use std::collections::HashSet;

use mann_serve::ShardRouter;
use proptest::prelude::*;

/// A deterministic spread of `n` well-mixed digests from one seed.
fn digests(seed: u64, n: u64) -> impl Iterator<Item = u64> {
    (0..n).map(move |i| {
        (seed ^ i.wrapping_mul(0x9e37_79b9_7f4a_7c15))
            .wrapping_mul(0x2545_f491_4f6c_dd1d)
            .rotate_left(17)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every digest maps to exactly R distinct live shards, stably, and
    /// the chain is prefix-consistent in R.
    #[test]
    fn every_digest_maps_to_r_distinct_live_shards(
        key in any::<u64>(),
        shards in 1usize..12,
        want in 1usize..6,
    ) {
        let replicas = want.min(shards);
        let router = ShardRouter::new(shards);
        let chain = router.route(key, replicas);
        prop_assert_eq!(chain.len(), replicas);
        prop_assert!(chain.iter().all(|&s| s < shards));
        let uniq: HashSet<usize> = chain.iter().copied().collect();
        prop_assert_eq!(uniq.len(), replicas, "chain repeats a shard");
        prop_assert_eq!(chain.clone(), router.route(key, replicas));
        let full = router.route(key, shards);
        prop_assert_eq!(&chain[..], &full[..replicas]);
    }

    /// Uniform weights spread primaries within a constant factor of the
    /// fair share (4000 keys over up to 8 shards; the bound is ~9 sigma
    /// wide, so a failure means bias, not luck).
    #[test]
    fn uniform_distribution_is_balanced(seed in any::<u64>(), shards in 2usize..9) {
        let router = ShardRouter::new(shards);
        let n = 4000u64;
        let mut counts = vec![0u64; shards];
        for d in digests(seed, n) {
            counts[router.primary(d)] += 1;
        }
        let fair = n as f64 / shards as f64;
        for (s, &c) in counts.iter().enumerate() {
            prop_assert!(
                (c as f64) > fair * 0.70 && (c as f64) < fair * 1.30,
                "shard {s} owns {c} of {n} (fair {fair:.0}): {counts:?}"
            );
        }
    }

    /// A weight-W shard's primary share tracks W times the unit share.
    #[test]
    fn weighted_share_tracks_weight(seed in any::<u64>(), weight in 2u32..5) {
        let router = ShardRouter::with_weights(vec![weight, 1, 1, 1]);
        let n = 6000u64;
        let mut counts = vec![0u64; 4];
        for d in digests(seed, n) {
            counts[router.primary(d)] += 1;
        }
        let unit = (counts[1] + counts[2] + counts[3]) as f64 / 3.0;
        let ratio = counts[0] as f64 / unit;
        prop_assert!(
            ratio > f64::from(weight) * 0.75 && ratio < f64::from(weight) * 1.35,
            "weight {weight} shard drew {ratio:.2}x the unit share: {counts:?}"
        );
    }

    /// Removing a shard moves only the keys that ranked it: any key whose
    /// replica chain avoided the dead shard routes identically, and a key
    /// that did rank it keeps its surviving replicas in order.
    #[test]
    fn removal_moves_only_the_dead_shards_keys(
        seed in any::<u64>(),
        shards in 3usize..9,
        dead_pick in any::<usize>(),
    ) {
        let dead = dead_pick % shards;
        let router = ShardRouter::new(shards);
        let replicas = 2usize;
        let mut moved = 0u64;
        for d in digests(seed, 512) {
            let before = router.route(d, replicas);
            let after = router.route_live(d, replicas, |s| s != dead);
            prop_assert_eq!(after.len(), replicas);
            prop_assert!(after.iter().all(|&s| s != dead));
            if before.contains(&dead) {
                moved += 1;
                // Survivors keep their rank: the new chain is the old one
                // minus the dead shard, extended by the next-ranked shard.
                let survivors: Vec<usize> =
                    before.iter().copied().filter(|&s| s != dead).collect();
                prop_assert_eq!(&after[..survivors.len()], &survivors[..]);
            } else {
                prop_assert_eq!(before, after, "untouched key moved");
            }
        }
        // Sanity: the dead shard owned *some* keys, so the test bit.
        prop_assert!(moved > 0, "dead shard {dead} owned no replicas of 512 keys");
    }

    /// The moved-key bound, live: failing one of K weighted shards
    /// re-homes at most `w_dead / w_total + eps` of 4096 primaries — the
    /// dead shard's fair share plus sampling noise — measured on the
    /// actual router the cluster routes with. With uniform weights that
    /// is the classic `1/K + eps` rendezvous bound. Keys not homed on
    /// the dead shard never move at all.
    #[test]
    fn removing_one_shard_moves_at_most_its_fair_share(
        seed in any::<u64>(),
        weights in proptest::collection::vec(1u32..5, 2..9),
        dead_pick in any::<usize>(),
    ) {
        let dead = dead_pick % weights.len();
        let total: u32 = weights.iter().sum();
        let fair = f64::from(weights[dead]) / f64::from(total);
        let router = ShardRouter::with_weights(weights.clone());
        let n = 4096u64;
        let mut moved = 0u64;
        for d in digests(seed, n) {
            let before = router.primary(d);
            let after = router.route_live(d, 1, |s| s != dead)[0];
            if before == dead {
                moved += u64::from(before != after);
            } else {
                prop_assert_eq!(before, after, "key off the dead shard moved");
            }
        }
        let frac = moved as f64 / n as f64;
        // eps: ~6 sigma of binomial noise at n = 4096 plus hash skew.
        let bound = fair + 0.05;
        prop_assert!(
            frac <= bound,
            "losing shard {dead} of {weights:?} moved {frac:.4} > {bound:.4}"
        );
    }
}
