//! Property tests for the story cache and the parallel serve engine.
//!
//! Two invariants hold for *any* trace and serve configuration:
//!
//! 1. Caching is invisible to the numbers the model produces: a cached
//!    serve returns the same answer, the same comparison count, and the
//!    same MEM/READ/CONTROLLER/OUTPUT phase cycles as the cache-off serve
//!    of the same trace — only the CONTROL/WRITE phases and the PCIe
//!    upload may shrink, and never grow.
//! 2. The engine is a pure implementation detail: the serial and parallel
//!    numeric phases produce byte-identical `ServeReport` JSON.

use std::sync::OnceLock;

use mann_babi::TaskId;
use mann_core::{SuiteConfig, TaskSuite};
use mann_serve::{
    ArrivalTrace, Completion, EngineMode, SchedulePolicy, ServeConfig, ServeOutcome, Server,
    TraceConfig,
};
use proptest::prelude::*;

fn suite() -> &'static TaskSuite {
    static SUITE: OnceLock<TaskSuite> = OnceLock::new();
    SUITE.get_or_init(|| {
        TaskSuite::build(&SuiteConfig {
            tasks: vec![TaskId::SingleSupportingFact, TaskId::AgentMotivations],
            train_samples: 120,
            test_samples: 12,
            seed: 5,
            ..SuiteConfig::quick()
        })
    })
}

fn policy(pick: u8) -> SchedulePolicy {
    match pick % 3 {
        0 => SchedulePolicy::RoundRobin,
        1 => SchedulePolicy::ShortestQueue,
        _ => SchedulePolicy::StoryAffinity,
    }
}

fn serve(trace: &ArrivalTrace, config: ServeConfig) -> ServeOutcome {
    Server::new(suite(), config).serve(trace)
}

/// Completions indexed by request id (completion order may legitimately
/// differ between two serves whose service times differ).
fn by_id(out: &ServeOutcome, n: usize) -> Vec<Option<&Completion>> {
    let mut slots: Vec<Option<&Completion>> = vec![None; n];
    for c in &out.completions {
        slots[c.request.id as usize] = Some(c);
    }
    slots
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Cached vs uncached serving of the same random trace: identical
    /// answers and identical read-side phases; the write side only shrinks.
    #[test]
    fn cache_changes_write_phase_only(
        trace_seed in 0u64..1000,
        requests in 24usize..80,
        rate_us in 60u64..300,
        pool in 0usize..6,
        instances in 1usize..4,
        cache in 1usize..6,
        pick in any::<u8>(),
    ) {
        let t = ArrivalTrace::generate(
            &TraceConfig {
                requests,
                seed: trace_seed,
                mean_interarrival_s: rate_us as f64 * 1e-6,
                story_pool: pool,
            },
            suite(),
        );
        // The queue is oversized so neither serve rejects: a completion
        // set difference would make the per-request comparison vacuous.
        let base = ServeConfig {
            instances,
            queue_capacity: 256,
            policy: policy(pick),
            ..ServeConfig::default()
        };
        let cold = serve(&t, ServeConfig { story_cache: 0, ..base.clone() });
        let warm = serve(&t, ServeConfig { story_cache: cache, ..base });
        prop_assert_eq!(cold.completions.len(), t.len());
        prop_assert_eq!(warm.completions.len(), t.len());
        prop_assert_eq!(cold.report.answers_digest, warm.report.answers_digest);
        prop_assert_eq!(cold.report.accuracy, warm.report.accuracy);

        let cold_by_id = by_id(&cold, t.len());
        let warm_by_id = by_id(&warm, t.len());
        for (c, w) in cold_by_id.iter().zip(&warm_by_id) {
            let (c, w) = (c.expect("served"), w.expect("served"));
            prop_assert_eq!(c.run.answer, w.run.answer);
            prop_assert_eq!(c.run.comparisons, w.run.comparisons);
            prop_assert_eq!(c.correct, w.correct);
            // Read-side phases are untouchable.
            prop_assert_eq!(c.run.phases.addressing, w.run.phases.addressing);
            prop_assert_eq!(c.run.phases.read, w.run.phases.read);
            prop_assert_eq!(c.run.phases.controller, w.run.phases.controller);
            prop_assert_eq!(c.run.phases.output, w.run.phases.output);
            // The write side may only shrink, and only on a hit.
            prop_assert!(w.run.phases.control <= c.run.phases.control);
            prop_assert!(w.run.phases.write <= c.run.phases.write);
            prop_assert!(w.run.interface_s <= c.run.interface_s);
            if !w.run.cache_hit {
                prop_assert_eq!(&c.run, &w.run);
            }
        }
        // The report's cache ledger matches the per-request view.
        let hits = warm_by_id
            .iter()
            .filter(|c| c.expect("served").run.cache_hit)
            .count() as u64;
        prop_assert_eq!(warm.report.cache.hits, hits);
        prop_assert_eq!(warm.report.cache.hits + warm.report.cache.misses, t.len() as u64);
        prop_assert_eq!(cold.report.cache.hits, 0);
    }

    /// Serial and parallel engines serialize to identical report bytes on
    /// any trace/config pair.
    #[test]
    fn engines_are_byte_identical(
        trace_seed in 0u64..1000,
        requests in 16usize..64,
        rate_us in 60u64..300,
        pool in 0usize..6,
        instances in 1usize..4,
        cache in 0usize..6,
        queue in 8usize..64,
        pick in any::<u8>(),
    ) {
        let t = ArrivalTrace::generate(
            &TraceConfig {
                requests,
                seed: trace_seed,
                mean_interarrival_s: rate_us as f64 * 1e-6,
                story_pool: pool,
            },
            suite(),
        );
        let base = ServeConfig {
            instances,
            queue_capacity: queue,
            story_cache: cache,
            policy: policy(pick),
            ..ServeConfig::default()
        };
        let parallel = serve(&t, ServeConfig { engine: EngineMode::Parallel, ..base.clone() });
        let serial = serve(&t, ServeConfig { engine: EngineMode::Serial, ..base });
        prop_assert_eq!(&serial, &parallel);
        prop_assert_eq!(
            serde_json::to_string(&serial.report).expect("serializable report"),
            serde_json::to_string(&parallel.report).expect("serializable report"),
        );
    }
}
