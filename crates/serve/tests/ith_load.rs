//! Inference thresholding under serving load.
//!
//! Serving the same pinned trace with and without ITH must show the
//! paper's effect end to end: some requests exit the output search early,
//! every early exit still produces the answer the full sequential output
//! layer would have produced, and the report's occupancy/energy accounting
//! reflects the shortened output phase.

use mann_babi::TaskId;
use mann_core::{SuiteConfig, TaskSuite};
use mann_serve::{ArrivalTrace, ServeConfig, ServeOutcome, Server, TraceConfig};

fn suite() -> TaskSuite {
    let cfg = SuiteConfig {
        tasks: vec![TaskId::SingleSupportingFact, TaskId::AgentMotivations],
        train_samples: 200,
        test_samples: 24,
        seed: 17,
        ..SuiteConfig::quick()
    };
    TaskSuite::build(&cfg)
}

fn serve(suite: &TaskSuite, trace: &ArrivalTrace, use_ith: bool) -> ServeOutcome {
    let server = Server::new(
        suite,
        ServeConfig {
            instances: 2,
            queue_capacity: 256,
            use_ith,
            // Caching off: ITH changes service times, which would shift
            // dispatch targets and therefore hit patterns between the two
            // serves — this test isolates the thresholding effect.
            story_cache: 0,
            ..ServeConfig::default()
        },
    );
    server.serve(trace)
}

#[test]
fn early_exits_under_load_match_the_full_output_layer() {
    let s = suite();
    let t = ArrivalTrace::generate(
        &TraceConfig {
            requests: 96,
            seed: 23,
            mean_interarrival_s: 120e-6,
            ..TraceConfig::default()
        },
        &s,
    );
    let exact = serve(&s, &t, false);
    let ith = serve(&s, &t, true);
    assert_eq!(exact.completions.len(), t.len());
    assert_eq!(ith.completions.len(), t.len());

    // The conventional path never speculates; under ITH a meaningful share
    // of this workload must exit early for the test to mean anything.
    assert_eq!(exact.report.speculated, 0);
    assert!(
        ith.report.speculated > t.len() / 4,
        "only {} of {} requests exited early",
        ith.report.speculated,
        t.len()
    );

    for (fast, full) in ith.completions.iter().zip(&exact.completions) {
        assert_eq!(fast.request, full.request);
        if fast.run.speculated {
            // An early exit returns exactly what the exhaustive sequential
            // output layer returns, with strictly fewer row comparisons.
            assert_eq!(
                fast.run.answer, full.run.answer,
                "request {} changed its answer under ITH",
                fast.request.id
            );
            assert!(
                fast.run.comparisons < full.run.comparisons,
                "request {} early-exited without saving comparisons",
                fast.request.id
            );
        }
    }
}

#[test]
fn report_occupancy_reflects_the_shortened_output_phase() {
    let s = suite();
    let t = ArrivalTrace::generate(
        &TraceConfig {
            requests: 96,
            seed: 23,
            mean_interarrival_s: 120e-6,
            ..TraceConfig::default()
        },
        &s,
    );
    let exact = serve(&s, &t, false);
    let ith = serve(&s, &t, true);

    // Output-phase cycles shrink; every other phase is untouched.
    let a = ith.report.phase_totals;
    let b = exact.report.phase_totals;
    assert!(
        a.output < b.output,
        "output phase did not shrink: {:?} vs {:?}",
        a.output,
        b.output
    );
    assert_eq!(a.control, b.control);
    assert_eq!(a.write, b.write);
    assert_eq!(a.addressing, b.addressing);
    assert_eq!(a.read, b.read);
    assert_eq!(a.controller, b.controller);

    // Shorter output search → less fabric busy time, and the instance
    // occupancies the report derives from it shrink accordingly (compute
    // busy time drops while the link-bound makespan barely moves).
    assert!(
        ith.report.total_busy_s() < exact.report.total_busy_s(),
        "busy time did not drop: {} vs {}",
        ith.report.total_busy_s(),
        exact.report.total_busy_s()
    );
    for inst in &ith.report.instances {
        assert!(inst.occupancy > 0.0 && inst.occupancy <= 1.0);
    }
    // Energy under load is subtler than the single-inference case: this
    // serve is link-bound, so the makespan barely moves and the board pays
    // the ITH comparator overhead for the whole interval. Any energy
    // increase must therefore be bounded by that static overhead — the
    // dynamic (busy-time) component can only shrink.
    let overhead_bound = {
        let power = mann_hw::PowerModel::default();
        power.ith_overhead_w * ith.report.makespan_s * ith.report.instances.len() as f64
    };
    assert!(
        ith.report.total_energy_j < exact.report.total_energy_j + overhead_bound,
        "ITH energy {} exceeds exact {} by more than the comparator overhead {}",
        ith.report.total_energy_j,
        exact.report.total_energy_j,
        overhead_bound
    );
}
