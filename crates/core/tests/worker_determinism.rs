//! End-to-end determinism of the parallel sweep engine.
//!
//! The work-stealing suite builder and the parallel per-sample evaluation
//! paths claim work in a nondeterministic order but must accumulate results
//! in index order, so every experiment output has to be *byte-identical*
//! regardless of worker count. This drives the real Table I pipeline with
//! 1-worker and multi-worker builds and diffs the serialized results.

use mann_babi::TaskId;
use mann_core::experiments::table1::{self, Table1Config};
use mann_core::{SuiteConfig, TaskSuite};

fn config() -> SuiteConfig {
    SuiteConfig {
        tasks: vec![TaskId::SingleSupportingFact, TaskId::AgentMotivations],
        train_samples: 80,
        test_samples: 10,
        ..SuiteConfig::quick()
    }
}

#[test]
fn table1_results_are_byte_identical_across_worker_counts() {
    let cfg = config();
    let t1_cfg = Table1Config {
        repetitions: 3,
        frequencies_mhz: vec![25.0, 100.0],
    };

    let sequential = TaskSuite::build_with_workers(&cfg, 1);
    let parallel = TaskSuite::build_with_workers(&cfg, 4);
    assert_eq!(sequential, parallel, "trained suites diverged");

    let a = serde_json::to_string(&table1::run(&sequential, &t1_cfg)).expect("serialize");
    let b = serde_json::to_string(&table1::run(&parallel, &t1_cfg)).expect("serialize");
    assert_eq!(a, b, "Table I output depends on worker count");
}

#[test]
fn mann_threads_override_does_not_change_results() {
    // `worker_threads` consults MANN_THREADS; pinning it to 3 must leave
    // the trained suite identical to a single-worker build. Set before any
    // parallel path spawns so the override is read consistently.
    std::env::set_var("MANN_THREADS", "3");
    let cfg = config();
    let via_env = TaskSuite::build(&cfg);
    std::env::remove_var("MANN_THREADS");
    let sequential = TaskSuite::build_with_workers(&cfg, 1);
    assert_eq!(via_env, sequential);
}
