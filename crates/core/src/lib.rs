//! End-to-end pipeline and experiment runners.
//!
//! This crate glues the reproduction together: it generates the bAbI-style
//! datasets, trains one memory network per task, calibrates inference
//! thresholding, and measures every platform configuration the paper
//! evaluates, producing
//!
//! * [`experiments::table1`] — Table I (time / power / speedup / FLOPS-per-kJ
//!   for CPU, GPU and the FPGA at 25–100 MHz, with and without ITH);
//! * [`experiments::fig2b`] — the logit-distribution view behind Fig 2(b);
//! * [`experiments::fig3`] — accuracy and comparison counts against ρ with
//!   and without index ordering (Fig 3);
//! * [`experiments::fig4`] — per-task energy efficiency normalized to the
//!   GPU (Fig 4).
//!
//! # Example
//!
//! ```no_run
//! use mann_core::{SuiteConfig, TaskSuite};
//! use mann_babi::TaskId;
//!
//! // Train a small two-task suite and regenerate a Table I-style report.
//! let cfg = SuiteConfig { tasks: vec![TaskId::SingleSupportingFact], ..SuiteConfig::quick() };
//! let suite = TaskSuite::build(&cfg);
//! let table = mann_core::experiments::table1::run(&suite, &Default::default());
//! println!("{}", table.render());
//! ```

pub mod experiments;
pub mod parallel;
pub mod persist;
pub mod report;

mod pipeline;
mod workload;

pub use persist::{write_json_report, ModelBundle, SuiteCache};
pub use pipeline::{SuiteConfig, TaskSuite, TrainedTask};
pub use workload::{run_workload, WorkloadResult};
