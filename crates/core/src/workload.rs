//! Workload execution: a platform over a suite's test sets, with the
//! paper's repetition multiplier.

use mann_platform::{ExecutionModel, MipsMode};
use serde::{Deserialize, Serialize};

use crate::{TaskSuite, TrainedTask};

/// Aggregated measurement of one platform over a workload.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorkloadResult {
    /// Platform label.
    pub name: String,
    /// Total time, seconds (including repetitions).
    pub time_s: f64,
    /// Time-weighted average power, watts.
    pub power_w: f64,
    /// Total work, FLOPs (including repetitions).
    pub flops: u64,
    /// Fraction of inferences answered correctly.
    pub accuracy: f64,
    /// Inferences measured (before the repetition multiplier).
    pub inferences: usize,
}

impl WorkloadResult {
    /// Energy in joules.
    pub fn energy_j(&self) -> f64 {
        self.time_s * self.power_w
    }

    /// Raw FLOPS/kJ (see [`mann_platform::flops_per_kj`]).
    pub fn flops_per_kj(&self) -> f64 {
        mann_platform::flops_per_kj(self.flops, self.time_s, self.power_w)
    }
}

/// Runs `platform` over every test sample of every task in `suite`,
/// scaling totals by `repetitions` (the paper repeats timings 100 times).
///
/// `use_ith` selects the thresholded output search where the platform
/// supports a per-call mode (CPU/GPU); FPGA platforms carry their mode in
/// their configuration.
pub fn run_workload(
    platform: &(dyn ExecutionModel + Sync),
    suite: &TaskSuite,
    use_ith: bool,
    repetitions: u64,
) -> WorkloadResult {
    let mut time_s = 0.0f64;
    let mut energy_j = 0.0f64;
    let mut flops = 0u64;
    let mut correct = 0usize;
    let mut n = 0usize;
    for task in &suite.tasks {
        let (t, e, f, c, k) = run_task(platform, task, use_ith);
        time_s += t;
        energy_j += e;
        flops += f;
        correct += c;
        n += k;
    }
    let reps = repetitions.max(1);
    let total_time = time_s * reps as f64;
    let total_flops = flops * reps;
    WorkloadResult {
        name: platform.name(),
        time_s: total_time,
        power_w: if total_time > 0.0 {
            energy_j * reps as f64 / total_time
        } else {
            0.0
        },
        flops: total_flops,
        accuracy: if n > 0 {
            correct as f64 / n as f64
        } else {
            0.0
        },
        inferences: n,
    }
}

/// Runs one task's test set once (no repetition multiplier); returns
/// `(time, energy, flops, correct, count)`.
///
/// Samples are independent, so they run on the work-stealing pool
/// (`MANN_THREADS` overrides the width). Measurements are collected in
/// sample order and accumulated sequentially, so the floating-point sums
/// are identical to a single-threaded run.
pub fn run_task(
    platform: &(dyn ExecutionModel + Sync),
    task: &TrainedTask,
    use_ith: bool,
) -> (f64, f64, u64, usize, usize) {
    let n = task.test_set.len();
    let workers = crate::parallel::worker_threads(n);
    let measurements = crate::parallel::parallel_map_indexed(n, workers, |i| {
        let mode = if use_ith {
            MipsMode::Thresholded(&task.ith)
        } else {
            MipsMode::Exhaustive
        };
        let m = platform.run_inference(&task.model, &task.test_set[i], mode);
        (m.time_s, m.energy_j(), m.flops, m.correct)
    });
    let mut time_s = 0.0f64;
    let mut energy_j = 0.0f64;
    let mut flops = 0u64;
    let mut correct = 0usize;
    for (t, e, f, c) in measurements {
        time_s += t;
        energy_j += e;
        flops += f;
        if c {
            correct += 1;
        }
    }
    (time_s, energy_j, flops, correct, n)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SuiteConfig;
    use mann_babi::TaskId;
    use mann_platform::{CpuModel, GpuModel};

    fn suite() -> TaskSuite {
        let cfg = SuiteConfig {
            tasks: vec![TaskId::SingleSupportingFact],
            train_samples: 60,
            test_samples: 10,
            ..SuiteConfig::quick()
        };
        TaskSuite::build(&cfg)
    }

    #[test]
    fn repetitions_scale_time_and_flops_linearly() {
        let s = suite();
        let one = run_workload(&CpuModel::new(), &s, false, 1);
        let hundred = run_workload(&CpuModel::new(), &s, false, 100);
        assert!((hundred.time_s / one.time_s - 100.0).abs() < 1e-6);
        assert_eq!(hundred.flops, one.flops * 100);
        // Power and accuracy are intensive quantities.
        assert!((hundred.power_w - one.power_w).abs() < 1e-9);
        assert!((hundred.accuracy - one.accuracy).abs() < 1e-9);
    }

    #[test]
    fn gpu_and_cpu_report_distinct_names() {
        let s = suite();
        let c = run_workload(&CpuModel::new(), &s, false, 1);
        let g = run_workload(&GpuModel::new(), &s, false, 1);
        assert_eq!(c.name, "CPU");
        assert_eq!(g.name, "GPU");
        assert!(c.inferences == 10 && g.inferences == 10);
    }

    #[test]
    fn flops_per_kj_is_positive_and_finite() {
        let s = suite();
        let r = run_workload(&CpuModel::new(), &s, false, 100);
        let v = r.flops_per_kj();
        assert!(v.is_finite() && v > 0.0);
    }
}
