//! Fixed-width text-table rendering for the experiment reports.

/// A simple left-padded text table builder.
///
/// ```
/// use mann_core::report::TextTable;
///
/// let mut t = TextTable::new(vec!["name".into(), "value".into()]);
/// t.row(vec!["alpha".into(), "1.0".into()]);
/// let s = t.render();
/// assert!(s.contains("alpha"));
/// assert!(s.lines().count() >= 3);
/// ```
#[derive(Debug, Clone, Default)]
pub struct TextTable {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Creates a table with the given column headers.
    pub fn new(header: Vec<String>) -> Self {
        Self {
            header,
            rows: Vec::new(),
        }
    }

    /// Appends a row. Short rows are padded with empty cells; long rows
    /// extend the column set.
    pub fn row(&mut self, cells: Vec<String>) {
        self.rows.push(cells);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table with a separator under the header.
    pub fn render(&self) -> String {
        let cols = self
            .rows
            .iter()
            .map(Vec::len)
            .chain(std::iter::once(self.header.len()))
            .max()
            .unwrap_or(0);
        let mut widths = vec![0usize; cols];
        for (i, h) in self.header.iter().enumerate() {
            widths[i] = widths[i].max(h.len());
        }
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for (i, w) in widths.iter().enumerate() {
                let cell = cells.get(i).map(String::as_str).unwrap_or("");
                if i > 0 {
                    line.push_str("  ");
                }
                line.push_str(&format!("{cell:<w$}"));
            }
            line.trim_end().to_owned()
        };
        out.push_str(&fmt_row(&self.header, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (cols.saturating_sub(1))));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }
}

/// Formats a float with `digits` decimals.
pub fn fnum(x: f64, digits: usize) -> String {
    format!("{x:.digits$}")
}

/// Formats a ratio as `12.34x`.
pub fn ratio(x: f64) -> String {
    format!("{x:.2}x")
}

/// Formats a fraction as a percentage with one decimal.
pub fn percent(x: f64) -> String {
    format!("{:.1}%", x * 100.0)
}

/// Nearest-rank percentile of an ascending-sorted slice: the smallest
/// element such that at least `p`% of the data is ≤ it. `p` is clamped to
/// `[0, 100]` (a NaN `p` reads as 0, the minimum); an empty slice yields
/// 0. The nearest-rank definition picks an actual sample (no
/// interpolation), so percentile reports are exact functions of the data
/// and replay byte-identically.
///
/// # Panics
///
/// Panics (in debug builds) if `sorted` is not ascending.
pub fn percentile(sorted: &[f64], p: f64) -> f64 {
    debug_assert!(
        sorted.windows(2).all(|w| w[0] <= w[1]),
        "percentile input must be sorted"
    );
    if sorted.is_empty() {
        return 0.0;
    }
    // NaN fails every comparison, so `clamp` would pass it straight into
    // the rank cast; pin it to the conservative end instead.
    let p = if p.is_nan() { 0.0 } else { p.clamp(0.0, 100.0) };
    let rank = ((p / 100.0) * sorted.len() as f64).ceil() as usize;
    // p=0 still reads the first sample; the upper clamp shields the index
    // from float rounding at p=100 on huge inputs.
    sorted[rank.clamp(1, sorted.len()) - 1]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_aligns_columns() {
        let mut t = TextTable::new(vec!["a".into(), "long-header".into()]);
        t.row(vec!["x".into(), "1".into()]);
        t.row(vec!["longer-cell".into(), "2".into()]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        // The "1" and "2" cells start at the same column.
        let p1 = lines[2].find('1').unwrap();
        let p2 = lines[3].find('2').unwrap();
        assert_eq!(p1, p2);
    }

    #[test]
    fn short_rows_are_padded() {
        let mut t = TextTable::new(vec!["a".into(), "b".into(), "c".into()]);
        t.row(vec!["only".into()]);
        let s = t.render();
        assert!(s.contains("only"));
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(fnum(1.23456, 2), "1.23");
        assert_eq!(ratio(83.738), "83.74x");
        assert_eq!(percent(0.9312), "93.1%");
    }

    #[test]
    fn percentile_nearest_rank() {
        let data: Vec<f64> = (1..=100).map(f64::from).collect();
        assert_eq!(percentile(&data, 50.0), 50.0);
        assert_eq!(percentile(&data, 95.0), 95.0);
        assert_eq!(percentile(&data, 99.0), 99.0);
        assert_eq!(percentile(&data, 100.0), 100.0);
        assert_eq!(percentile(&data, 0.0), 1.0);
        // Small samples: p50 of [1, 2] is the first element (rank ceil(1)).
        assert_eq!(percentile(&[1.0, 2.0], 50.0), 1.0);
        assert_eq!(percentile(&[1.0, 2.0], 100.0), 2.0);
    }

    #[test]
    fn percentile_degenerate_inputs() {
        // Empty slice: 0 at every p, including the extremes.
        assert_eq!(percentile(&[], 0.0), 0.0);
        assert_eq!(percentile(&[], 50.0), 0.0);
        assert_eq!(percentile(&[], 100.0), 0.0);
        // A single element is every percentile of itself.
        assert_eq!(percentile(&[7.5], 0.0), 7.5);
        assert_eq!(percentile(&[7.5], 50.0), 7.5);
        assert_eq!(percentile(&[7.5], 100.0), 7.5);
    }

    #[test]
    fn percentile_clamps_wild_p() {
        let data: Vec<f64> = (1..=100).map(f64::from).collect();
        // Out-of-range p clamps to the nearest extreme.
        assert_eq!(percentile(&data, 250.0), 100.0);
        assert_eq!(percentile(&data, -10.0), 1.0);
        assert_eq!(percentile(&data, f64::INFINITY), 100.0);
        assert_eq!(percentile(&data, f64::NEG_INFINITY), 1.0);
        // NaN pins to the conservative end rather than poisoning the rank.
        assert_eq!(percentile(&data, f64::NAN), 1.0);
        assert_eq!(percentile(&[], f64::NAN), 0.0);
    }
}
