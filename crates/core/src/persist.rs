//! Saving and loading trained models and calibrations.
//!
//! The paper's workflow ships a *pre-trained* model to the accelerator;
//! this module provides the equivalent artifact: a JSON bundle of the
//! trained weights, the encoder (vocabulary), and the calibrated
//! thresholding model, loadable by the `infer` binary or downstream users.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use mann_ith::ThresholdingModel;
use memn2n::TrainedModel;
use serde::{Deserialize, Serialize};

use crate::{SuiteConfig, TaskSuite};

/// A deployable model artifact: weights + encoder + thresholds.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ModelBundle {
    /// The trained model (weights and encoder).
    pub model: TrainedModel,
    /// The calibrated thresholding model (Steps 1–3 of Algorithm 1).
    pub ith: ThresholdingModel,
    /// Exhaustive test accuracy recorded at training time.
    pub test_accuracy: f32,
}

/// Errors from bundle (de)serialization.
#[derive(Debug, thiserror::Error)]
pub enum PersistError {
    /// Filesystem failure.
    #[error("bundle io error: {0}")]
    Io(#[from] io::Error),
    /// Malformed JSON or schema mismatch.
    #[error("bundle format error: {0}")]
    Format(#[from] serde_json::Error),
    /// Durable-store failure (WAL, snapshot, or recovery).
    #[error("store error: {0}")]
    Store(#[from] mann_store::StoreError),
}

impl ModelBundle {
    /// Builds a bundle from a trained task (cloning its artifacts).
    pub fn from_trained_task(task: &crate::TrainedTask) -> Self {
        Self {
            model: task.model.clone(),
            ith: task.ith.clone(),
            test_accuracy: task.test_accuracy,
        }
    }

    /// Writes the bundle as JSON.
    ///
    /// # Errors
    ///
    /// Returns [`PersistError`] on filesystem or serialization failure.
    pub fn save(&self, path: impl AsRef<Path>) -> Result<(), PersistError> {
        let json = serde_json::to_string(self)?;
        fs::write(path, json)?;
        Ok(())
    }

    /// Reads a bundle back from JSON.
    ///
    /// # Errors
    ///
    /// Returns [`PersistError`] when the file is missing or malformed.
    pub fn load(path: impl AsRef<Path>) -> Result<Self, PersistError> {
        let json = fs::read_to_string(path)?;
        Ok(serde_json::from_str(&json)?)
    }
}

/// Writes any serializable report as pretty-printed JSON, creating parent
/// directories as needed. The experiment and serving binaries share this
/// for their `target/experiments/*.json` artifacts.
///
/// # Errors
///
/// Returns [`PersistError`] on filesystem or serialization failure.
pub fn write_json_report<T: Serialize>(
    path: impl AsRef<Path>,
    value: &T,
) -> Result<(), PersistError> {
    let path = path.as_ref();
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            fs::create_dir_all(parent)?;
        }
    }
    let json = serde_json::to_string_pretty(value)?;
    fs::write(path, json)?;
    Ok(())
}

/// A disk-backed cache of trained suites, keyed by a hash of the generating
/// [`SuiteConfig`] (plus a build-variant tag, so per-task and joint builds
/// of the same config do not collide).
///
/// Training dominates every experiment binary's runtime; `table1`, `fig3`,
/// `fig4` and `ablation` all consume the *same* trained suite, so the first
/// binary to run trains it and the rest load it in milliseconds. Suites are
/// stored as one JSON file per key under the cache directory. A cache hit
/// is only returned when the stored config equals the requested one, so a
/// hash collision (or a stale schema) degrades to a rebuild, never to wrong
/// results.
#[derive(Debug, Clone)]
pub struct SuiteCache {
    dir: PathBuf,
}

impl SuiteCache {
    /// Default cache location, relative to the working directory.
    pub const DEFAULT_DIR: &'static str = "target/suite-cache";

    /// A cache rooted at `dir` (created lazily on first store).
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        Self { dir: dir.into() }
    }

    /// The cache configured by the `MANN_SUITE_CACHE` environment variable:
    /// unset uses [`SuiteCache::DEFAULT_DIR`]; `0`, `off`, or the empty
    /// string disables caching (`None`); anything else is the directory.
    pub fn from_env() -> Option<Self> {
        match std::env::var("MANN_SUITE_CACHE") {
            Err(_) => Some(Self::new(Self::DEFAULT_DIR)),
            Ok(v) => {
                let v = v.trim().to_owned();
                if v.is_empty() || v == "0" || v.eq_ignore_ascii_case("off") {
                    None
                } else {
                    Some(Self::new(v))
                }
            }
        }
    }

    /// The cache key for `config` built as `variant` (e.g. `"per-task"` or
    /// `"joint"`): an FNV-1a hash of the serialized config.
    ///
    /// # Panics
    ///
    /// Panics if the config fails to serialize (it never does).
    pub fn config_key(config: &SuiteConfig, variant: &str) -> String {
        let json = serde_json::to_string(config).expect("config serializes");
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        for byte in json.bytes().chain(variant.bytes()) {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
        format!("suite-{hash:016x}")
    }

    fn path_for(&self, key: &str) -> PathBuf {
        self.dir.join(format!("{key}.json"))
    }

    /// Loads the suite cached under `(config, variant)`, if present, valid,
    /// and generated by an identical config.
    pub fn load(&self, config: &SuiteConfig, variant: &str) -> Option<TaskSuite> {
        let path = self.path_for(&Self::config_key(config, variant));
        let json = fs::read_to_string(path).ok()?;
        let suite: TaskSuite = serde_json::from_str(&json).ok()?;
        (suite.config == *config).then_some(suite)
    }

    /// Stores `suite` under `(suite.config, variant)`.
    ///
    /// # Errors
    ///
    /// Returns [`PersistError`] on filesystem or serialization failure.
    pub fn store(&self, suite: &TaskSuite, variant: &str) -> Result<(), PersistError> {
        fs::create_dir_all(&self.dir)?;
        let path = self.path_for(&Self::config_key(&suite.config, variant));
        let json = serde_json::to_string(suite)?;
        fs::write(path, json)?;
        Ok(())
    }

    /// Loads the cached suite or builds it with `build` and stores the
    /// result (best effort — a failed store still returns the suite).
    pub fn load_or_build(
        &self,
        config: &SuiteConfig,
        variant: &str,
        build: impl FnOnce(&SuiteConfig) -> TaskSuite,
    ) -> TaskSuite {
        if let Some(suite) = self.load(config, variant) {
            return suite;
        }
        let suite = build(config);
        let _ = self.store(&suite, variant);
        suite
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mann_babi::TaskId;

    fn bundle() -> ModelBundle {
        let cfg = SuiteConfig {
            tasks: vec![TaskId::AgentMotivations],
            train_samples: 60,
            test_samples: 10,
            ..SuiteConfig::quick()
        };
        let suite = TaskSuite::build(&cfg);
        ModelBundle::from_trained_task(&suite.tasks[0])
    }

    #[test]
    fn save_load_round_trip_preserves_predictions() {
        let b = bundle();
        let dir = std::env::temp_dir().join("mann_accel_persist_test");
        let _ = fs::create_dir_all(&dir);
        let path = dir.join("bundle.json");
        b.save(&path).expect("save");
        let back = ModelBundle::load(&path).expect("load");
        assert_eq!(b, back);
        let _ = fs::remove_file(&path);
    }

    #[test]
    fn loading_missing_file_reports_io_error() {
        let err = ModelBundle::load("/nonexistent/mann/bundle.json").unwrap_err();
        assert!(matches!(err, PersistError::Io(_)));
        assert!(err.to_string().contains("io error"));
    }

    #[test]
    fn suite_cache_round_trips_and_validates_config() {
        let cfg = SuiteConfig {
            tasks: vec![TaskId::AgentMotivations],
            train_samples: 50,
            test_samples: 8,
            ..SuiteConfig::quick()
        };
        let dir = std::env::temp_dir().join("mann_accel_suite_cache_test");
        let _ = fs::remove_dir_all(&dir);
        let cache = SuiteCache::new(&dir);

        assert!(cache.load(&cfg, "per-task").is_none(), "cold cache");
        let built = cache.load_or_build(&cfg, "per-task", TaskSuite::build);
        let cached = cache.load(&cfg, "per-task").expect("warm cache");
        assert_eq!(cached, built);

        // A different config (or variant) misses.
        let mut other = cfg.clone();
        other.seed += 1;
        assert!(cache.load(&other, "per-task").is_none());
        assert!(cache.load(&cfg, "joint").is_none());
        // Distinct keys for distinct configs/variants.
        assert_ne!(
            SuiteCache::config_key(&cfg, "per-task"),
            SuiteCache::config_key(&other, "per-task")
        );
        assert_ne!(
            SuiteCache::config_key(&cfg, "per-task"),
            SuiteCache::config_key(&cfg, "joint")
        );
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn write_json_report_creates_directories() {
        let dir = std::env::temp_dir().join("mann_accel_json_report_test");
        let _ = fs::remove_dir_all(&dir);
        let path = dir.join("nested/report.json");
        write_json_report(&path, &vec![1u32, 2, 3]).expect("write");
        let back: Vec<u32> =
            serde_json::from_str(&fs::read_to_string(&path).expect("read")).expect("parse");
        assert_eq!(back, vec![1, 2, 3]);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn loading_garbage_reports_format_error() {
        let dir = std::env::temp_dir().join("mann_accel_persist_test");
        let _ = fs::create_dir_all(&dir);
        let path = dir.join("garbage.json");
        fs::write(&path, "{not json").expect("write");
        let err = ModelBundle::load(&path).unwrap_err();
        assert!(matches!(err, PersistError::Format(_)));
        let _ = fs::remove_file(&path);
    }
}
