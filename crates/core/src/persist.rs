//! Saving and loading trained models and calibrations.
//!
//! The paper's workflow ships a *pre-trained* model to the accelerator;
//! this module provides the equivalent artifact: a JSON bundle of the
//! trained weights, the encoder (vocabulary), and the calibrated
//! thresholding model, loadable by the `infer` binary or downstream users.

use std::fs;
use std::io;
use std::path::Path;

use mann_ith::ThresholdingModel;
use memn2n::TrainedModel;
use serde::{Deserialize, Serialize};

/// A deployable model artifact: weights + encoder + thresholds.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ModelBundle {
    /// The trained model (weights and encoder).
    pub model: TrainedModel,
    /// The calibrated thresholding model (Steps 1–3 of Algorithm 1).
    pub ith: ThresholdingModel,
    /// Exhaustive test accuracy recorded at training time.
    pub test_accuracy: f32,
}

/// Errors from bundle (de)serialization.
#[derive(Debug)]
pub enum PersistError {
    /// Filesystem failure.
    Io(io::Error),
    /// Malformed JSON or schema mismatch.
    Format(serde_json::Error),
}

impl std::fmt::Display for PersistError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PersistError::Io(e) => write!(f, "bundle io error: {e}"),
            PersistError::Format(e) => write!(f, "bundle format error: {e}"),
        }
    }
}

impl std::error::Error for PersistError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PersistError::Io(e) => Some(e),
            PersistError::Format(e) => Some(e),
        }
    }
}

impl From<io::Error> for PersistError {
    fn from(e: io::Error) -> Self {
        PersistError::Io(e)
    }
}

impl From<serde_json::Error> for PersistError {
    fn from(e: serde_json::Error) -> Self {
        PersistError::Format(e)
    }
}

impl ModelBundle {
    /// Builds a bundle from a trained task (cloning its artifacts).
    pub fn from_trained_task(task: &crate::TrainedTask) -> Self {
        Self {
            model: task.model.clone(),
            ith: task.ith.clone(),
            test_accuracy: task.test_accuracy,
        }
    }

    /// Writes the bundle as JSON.
    ///
    /// # Errors
    ///
    /// Returns [`PersistError`] on filesystem or serialization failure.
    pub fn save(&self, path: impl AsRef<Path>) -> Result<(), PersistError> {
        let json = serde_json::to_string(self)?;
        fs::write(path, json)?;
        Ok(())
    }

    /// Reads a bundle back from JSON.
    ///
    /// # Errors
    ///
    /// Returns [`PersistError`] when the file is missing or malformed.
    pub fn load(path: impl AsRef<Path>) -> Result<Self, PersistError> {
        let json = fs::read_to_string(path)?;
        Ok(serde_json::from_str(&json)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{SuiteConfig, TaskSuite};
    use mann_babi::TaskId;

    fn bundle() -> ModelBundle {
        let cfg = SuiteConfig {
            tasks: vec![TaskId::AgentMotivations],
            train_samples: 60,
            test_samples: 10,
            ..SuiteConfig::quick()
        };
        let suite = TaskSuite::build(&cfg);
        ModelBundle::from_trained_task(&suite.tasks[0])
    }

    #[test]
    fn save_load_round_trip_preserves_predictions() {
        let b = bundle();
        let dir = std::env::temp_dir().join("mann_accel_persist_test");
        let _ = fs::create_dir_all(&dir);
        let path = dir.join("bundle.json");
        b.save(&path).expect("save");
        let back = ModelBundle::load(&path).expect("load");
        assert_eq!(b, back);
        let _ = fs::remove_file(&path);
    }

    #[test]
    fn loading_missing_file_reports_io_error() {
        let err = ModelBundle::load("/nonexistent/mann/bundle.json").unwrap_err();
        assert!(matches!(err, PersistError::Io(_)));
        assert!(err.to_string().contains("io error"));
    }

    #[test]
    fn loading_garbage_reports_format_error() {
        let dir = std::env::temp_dir().join("mann_accel_persist_test");
        let _ = fs::create_dir_all(&dir);
        let path = dir.join("garbage.json");
        fs::write(&path, "{not json").expect("write");
        let err = ModelBundle::load(&path).unwrap_err();
        assert!(matches!(err, PersistError::Format(_)));
        let _ = fs::remove_file(&path);
    }
}
