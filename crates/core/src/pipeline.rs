//! Dataset → training → calibration pipeline.

use mann_babi::{DatasetBuilder, EncodedSample, TaskData, TaskId};
use mann_ith::{ThresholdingCalibrator, ThresholdingModel};
use memn2n::{ModelConfig, TrainConfig, TrainedModel, Trainer};
use serde::{Deserialize, Serialize};

/// Configuration for building a multi-task suite.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SuiteConfig {
    /// Which tasks to include (paper: all 20).
    pub tasks: Vec<TaskId>,
    /// Training samples per task.
    pub train_samples: usize,
    /// Test samples per task.
    pub test_samples: usize,
    /// Master seed.
    pub seed: u64,
    /// Pin every story to this many sentences (0 keeps each task's default
    /// shape). Best-effort per task — task 1 honors it exactly, which is
    /// the large-memory workload for the addressing index.
    pub story_sentences: usize,
    /// Model architecture.
    pub model: ModelConfig,
    /// Training hyper-parameters.
    pub train: TrainConfig,
    /// Thresholding confidence ρ (paper default 1.0).
    pub rho: f32,
}

impl Default for SuiteConfig {
    /// Paper-scale defaults: all 20 tasks, bAbI-sized splits.
    fn default() -> Self {
        Self {
            tasks: TaskId::all().to_vec(),
            train_samples: 1000,
            test_samples: 100,
            seed: 0,
            story_sentences: 0,
            model: ModelConfig::default(),
            train: TrainConfig::default(),
            rho: 1.0,
        }
    }
}

impl SuiteConfig {
    /// A reduced configuration that trains in seconds — used by tests,
    /// examples, and quick bench runs. Experiment *shapes* survive the
    /// scale-down; EXPERIMENTS.md reports the full-scale numbers.
    pub fn quick() -> Self {
        Self {
            tasks: TaskId::all().to_vec(),
            train_samples: 250,
            test_samples: 40,
            seed: 0,
            story_sentences: 0,
            model: ModelConfig {
                embed_dim: 24,
                hops: 2,
                tie_embeddings: false,
                ..ModelConfig::default()
            },
            train: TrainConfig {
                epochs: 18,
                learning_rate: 0.05,
                decay_every: 8,
                clip_norm: 40.0,
                seed: 0,
                ..TrainConfig::default()
            },
            rho: 1.0,
        }
    }
}

/// One task's trained artifacts.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TrainedTask {
    /// The task.
    pub task: TaskId,
    /// Trained model + encoder.
    pub model: TrainedModel,
    /// Encoded training split (used by the calibration and Fig 2b).
    pub train_set: Vec<EncodedSample>,
    /// Encoded test split (the measured workload).
    pub test_set: Vec<EncodedSample>,
    /// Calibrated thresholding model at the suite's ρ.
    pub ith: ThresholdingModel,
    /// Test accuracy of the exact (exhaustive) model.
    pub test_accuracy: f32,
}

/// A trained multi-task suite — the input to every experiment runner.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TaskSuite {
    /// Per-task artifacts, in `config.tasks` order.
    pub tasks: Vec<TrainedTask>,
    /// The generating configuration.
    pub config: SuiteConfig,
}

impl TaskSuite {
    /// Generates data, trains, and calibrates every configured task.
    ///
    /// Tasks train concurrently on a work-stealing queue sized by
    /// [`crate::parallel::worker_threads`] (override with `MANN_THREADS`).
    /// Each task's build is seeded independently of scheduling, and results
    /// are collected in `config.tasks` order, so the suite is identical for
    /// any worker count — see [`TaskSuite::build_with_workers`].
    ///
    /// # Panics
    ///
    /// Panics if `config.tasks` is empty or the model config is invalid.
    pub fn build(config: &SuiteConfig) -> Self {
        Self::build_with_workers(config, crate::parallel::worker_threads(config.tasks.len()))
    }

    /// [`TaskSuite::build`] with an explicit worker count. `workers <= 1`
    /// builds sequentially; any count produces the same suite.
    ///
    /// # Panics
    ///
    /// Panics if `config.tasks` is empty or the model config is invalid.
    pub fn build_with_workers(config: &SuiteConfig, workers: usize) -> Self {
        assert!(!config.tasks.is_empty(), "suite needs at least one task");
        // Tasks are independent and vary widely in cost (story length,
        // vocabulary); the work-stealing queue keeps every worker busy
        // until the last task finishes.
        let tasks = crate::parallel::parallel_map_indexed(config.tasks.len(), workers, |i| {
            Self::build_task(config, config.tasks[i])
        });
        Self {
            tasks,
            config: config.clone(),
        }
    }

    fn build_task(config: &SuiteConfig, task: TaskId) -> TrainedTask {
        let data = DatasetBuilder::new()
            .train_samples(config.train_samples)
            .test_samples(config.test_samples)
            .seed(config.seed)
            .story_sentences(config.story_sentences)
            .build_task(task);
        let mut train_cfg = config.train;
        // Decorrelate per-task initialization while keeping determinism.
        train_cfg.seed = config.train.seed ^ (task.number() as u64) << 17;
        let mut trainer = Trainer::from_task_data(&data, config.model, train_cfg);
        trainer.train();
        let (model, train_set, test_set) = trainer.into_parts();
        let ith = ThresholdingCalibrator::new()
            .rho(config.rho)
            .calibrate(&model, &train_set);
        let test_accuracy = model.accuracy(&test_set);
        TrainedTask {
            task,
            model,
            train_set,
            test_set,
            ith,
            test_accuracy,
        }
    }

    /// Trains **one** model jointly over every configured task — the
    /// paper's actual setting (a single pre-trained model with a shared
    /// vocabulary serves all 20 tasks). The shared vocabulary makes `|I|`
    /// several times larger than any per-task vocabulary, which lengthens
    /// the sequential output layer and strengthens the inference-
    /// thresholding effect.
    ///
    /// Thresholds are calibrated once on the combined training set and
    /// shared across tasks, as Algorithm 1 prescribes for "the training
    /// dataset D".
    ///
    /// # Panics
    ///
    /// Panics if `config.tasks` is empty or the model config is invalid.
    pub fn build_joint(config: &SuiteConfig) -> Self {
        assert!(!config.tasks.is_empty(), "suite needs at least one task");
        let datas: Vec<TaskData> = config
            .tasks
            .iter()
            .map(|&task| {
                DatasetBuilder::new()
                    .train_samples(config.train_samples)
                    .test_samples(config.test_samples)
                    .seed(config.seed)
                    .story_sentences(config.story_sentences)
                    .build_task(task)
            })
            .collect();
        let combined = TaskData {
            task: config.tasks[0],
            train: datas.iter().flat_map(|d| d.train.iter().cloned()).collect(),
            test: datas.iter().flat_map(|d| d.test.iter().cloned()).collect(),
        };
        let mut trainer = Trainer::from_task_data(&combined, config.model, config.train);
        trainer.train();
        let (shared_model, joint_train_set, _) = trainer.into_parts();
        let shared_ith = ThresholdingCalibrator::new()
            .rho(config.rho)
            .calibrate(&shared_model, &joint_train_set);

        let tasks = datas
            .into_iter()
            .map(|data| {
                let (train_set, skipped_train) = shared_model.encoder.encode_all(&data.train);
                let (test_set, skipped_test) = shared_model.encoder.encode_all(&data.test);
                assert_eq!(
                    skipped_train + skipped_test,
                    0,
                    "shared vocab covers all tasks"
                );
                let mut model = shared_model.clone();
                model.task = data.task;
                let test_accuracy = model.accuracy(&test_set);
                TrainedTask {
                    task: data.task,
                    model,
                    train_set,
                    test_set,
                    ith: shared_ith.clone(),
                    test_accuracy,
                }
            })
            .collect();
        Self {
            tasks,
            config: config.clone(),
        }
    }

    /// Returns the suite with every task's embedding weights multiplied
    /// by `scale` — the numeric stress campaign for the fixed-point
    /// datapath. Large scales push embedding sums past the Q16.16
    /// saturation point (and, at extreme scales, past `f32` range, so
    /// quantization sees ±∞); `1.0` is the identity. Each task's
    /// `test_accuracy` is recomputed on the scaled model so the suite
    /// stays honest about what the stressed reference achieves.
    #[must_use]
    pub fn with_embedding_scale(mut self, scale: f32) -> Self {
        for t in &mut self.tasks {
            for m in [&mut t.model.params.w_emb_a, &mut t.model.params.w_emb_c] {
                for x in m.as_mut_slice() {
                    *x *= scale;
                }
            }
            t.test_accuracy = t.model.accuracy(&t.test_set);
        }
        self
    }

    /// Total number of test inferences across tasks.
    pub fn total_test_samples(&self) -> usize {
        self.tasks.iter().map(|t| t.test_set.len()).sum()
    }

    /// Mean exhaustive test accuracy across tasks.
    pub fn mean_accuracy(&self) -> f32 {
        if self.tasks.is_empty() {
            return 0.0;
        }
        self.tasks.iter().map(|t| t.test_accuracy).sum::<f32>() / self.tasks.len() as f32
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_cfg() -> SuiteConfig {
        SuiteConfig {
            tasks: vec![TaskId::SingleSupportingFact, TaskId::AgentMotivations],
            train_samples: 150,
            test_samples: 15,
            seed: 3,
            story_sentences: 0,
            model: ModelConfig {
                embed_dim: 16,
                hops: 2,
                tie_embeddings: false,
                ..ModelConfig::default()
            },
            train: TrainConfig {
                epochs: 16,
                learning_rate: 0.06,
                decay_every: 7,
                clip_norm: 40.0,
                seed: 3,
                ..TrainConfig::default()
            },
            rho: 1.0,
        }
    }

    #[test]
    fn suite_builds_all_requested_tasks() {
        let suite = TaskSuite::build(&tiny_cfg());
        assert_eq!(suite.tasks.len(), 2);
        assert_eq!(suite.tasks[0].task, TaskId::SingleSupportingFact);
        assert_eq!(suite.total_test_samples(), 30);
        for t in &suite.tasks {
            assert_eq!(t.ith.classes(), t.model.params.vocab_size);
            assert!(!t.train_set.is_empty());
        }
    }

    #[test]
    fn learnable_task_reaches_usable_accuracy() {
        let suite = TaskSuite::build(&tiny_cfg());
        assert!(
            suite.tasks[1].test_accuracy > 0.5,
            "agent-motivations accuracy {}",
            suite.tasks[1].test_accuracy
        );
        assert!(suite.mean_accuracy() > 0.4);
    }

    #[test]
    fn suite_is_deterministic() {
        let a = TaskSuite::build(&tiny_cfg());
        let b = TaskSuite::build(&tiny_cfg());
        assert_eq!(a.tasks[0].model, b.tasks[0].model);
        assert_eq!(a.tasks[0].ith, b.tasks[0].ith);
    }

    #[test]
    fn one_worker_and_many_workers_build_identical_suites() {
        let cfg = tiny_cfg();
        let sequential = TaskSuite::build_with_workers(&cfg, 1);
        for workers in [2, 4, 16] {
            let parallel = TaskSuite::build_with_workers(&cfg, workers);
            // Exact equality: same weights, same encoders, same thresholds,
            // same sample sets, bit for bit.
            assert_eq!(parallel, sequential, "workers = {workers}");
        }
    }

    #[test]
    #[should_panic(expected = "at least one task")]
    fn empty_suite_rejected() {
        let mut cfg = tiny_cfg();
        cfg.tasks.clear();
        let _ = TaskSuite::build(&cfg);
    }

    #[test]
    fn joint_suite_shares_model_and_vocabulary() {
        let suite = TaskSuite::build_joint(&tiny_cfg());
        assert_eq!(suite.tasks.len(), 2);
        // One shared parameter set (identical weights), per-task labels.
        assert_eq!(suite.tasks[0].model.params, suite.tasks[1].model.params);
        assert_eq!(suite.tasks[0].model.task, TaskId::SingleSupportingFact);
        assert_eq!(suite.tasks[1].model.task, TaskId::AgentMotivations);
        // Shared vocabulary spans both tasks → larger |I| than either alone.
        let per_task = TaskSuite::build(&tiny_cfg());
        assert!(suite.tasks[0].model.params.vocab_size > per_task.tasks[0].model.params.vocab_size);
        // Shared thresholds.
        assert_eq!(suite.tasks[0].ith, suite.tasks[1].ith);
    }

    #[test]
    fn joint_model_still_learns_the_easy_task() {
        let mut cfg = tiny_cfg();
        cfg.train.epochs = 20;
        let suite = TaskSuite::build_joint(&cfg);
        let motivations = &suite.tasks[1];
        assert!(
            motivations.test_accuracy > 0.4,
            "joint accuracy {}",
            motivations.test_accuracy
        );
    }
}
