//! Work-stealing fan-out shared by every parallel path in the pipeline.
//!
//! Tasks of a suite (and samples of a test set) vary widely in cost —
//! story lengths differ, vocabularies differ, thresholding makes some
//! inferences exit early. Static chunking therefore leaves workers idle
//! behind the slowest chunk; the atomic-counter queue here lets each worker
//! claim the next unclaimed index as soon as it finishes one, so the
//! critical path shrinks to the single most expensive item.
//!
//! Results land in index-ordered slots, which keeps every consumer
//! bit-identical to a sequential run regardless of the worker count: the
//! work is claimed in a nondeterministic order but *accumulated* in index
//! order by the caller.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Number of worker threads to use for `items` independent work units.
///
/// Honors the `MANN_THREADS` environment variable (any positive integer;
/// `0`, empty, or unparsable values fall back to auto-detection), defaulting
/// to [`std::thread::available_parallelism`]. Never exceeds `items` and
/// never returns zero.
pub fn worker_threads(items: usize) -> usize {
    let configured = std::env::var("MANN_THREADS")
        .ok()
        .and_then(|v| v.trim().parse::<usize>().ok())
        .filter(|&n| n > 0);
    let auto = || {
        std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1)
    };
    configured.unwrap_or_else(auto).min(items.max(1))
}

/// Maps `f` over `0..items` on `workers` threads with a work-stealing
/// atomic counter, returning the results in index order.
///
/// With `workers <= 1` this is a plain sequential map. With more, each
/// worker repeatedly claims the next index via `fetch_add` — no chunking,
/// no channels — and writes the result into its slot. The output is
/// identical (element for element) to the sequential map; only wall-clock
/// scheduling differs.
///
/// # Panics
///
/// Propagates panics from `f` (the scope joins all workers first).
pub fn parallel_map_indexed<T, F>(items: usize, workers: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    if items == 0 {
        return Vec::new();
    }
    if workers <= 1 {
        return (0..items).map(f).collect();
    }
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<T>>> = (0..items).map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..workers.min(items) {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= items {
                    break;
                }
                let value = f(i);
                *slots[i].lock().expect("unpoisoned slot") = Some(value);
            });
        }
    });
    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("unpoisoned slot")
                .expect("every index claimed exactly once")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequential_and_parallel_results_are_identical() {
        let f = |i: usize| (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ i as u64;
        let seq = parallel_map_indexed(257, 1, f);
        for workers in [2, 3, 8, 300] {
            assert_eq!(parallel_map_indexed(257, workers, f), seq);
        }
    }

    #[test]
    fn empty_input_yields_empty_output() {
        let out: Vec<u32> = parallel_map_indexed(0, 8, |_| unreachable!());
        assert!(out.is_empty());
    }

    #[test]
    fn uneven_work_is_fully_claimed() {
        // Items with wildly different costs: every index must appear once.
        let out = parallel_map_indexed(64, 4, |i| {
            if i % 7 == 0 {
                std::thread::sleep(std::time::Duration::from_millis(1));
            }
            i
        });
        assert_eq!(out, (0..64).collect::<Vec<_>>());
    }

    #[test]
    fn worker_threads_is_positive_and_bounded_by_items() {
        assert_eq!(worker_threads(0), 1);
        assert!(worker_threads(1) == 1);
        assert!(worker_threads(1_000_000) >= 1);
        assert!(worker_threads(3) <= 3);
    }
}
