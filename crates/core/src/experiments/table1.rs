//! Table I: average time, power, speedup and energy efficiency per
//! platform configuration.

use mann_hw::ClockDomain;
use mann_platform::{CpuModel, GpuModel};
use serde::{Deserialize, Serialize};

use crate::experiments::SuiteFpga;
use crate::report::{fnum, ratio, TextTable};
use crate::workload::{run_workload, WorkloadResult};
use crate::TaskSuite;

/// Table I runner configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Table1Config {
    /// Timing repetitions (the paper repeats 100 times).
    pub repetitions: u64,
    /// FPGA clock frequencies in MHz.
    pub frequencies_mhz: Vec<f64>,
}

impl Default for Table1Config {
    fn default() -> Self {
        Self {
            repetitions: 100,
            frequencies_mhz: vec![25.0, 50.0, 75.0, 100.0],
        }
    }
}

/// One rendered row of Table I.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Table1Row {
    /// Platform label.
    pub name: String,
    /// Total workload time, seconds.
    pub time_s: f64,
    /// Average power, watts.
    pub power_w: f64,
    /// Speedup normalized to the GPU.
    pub speedup: f64,
    /// FLOPS/kJ normalized to the GPU.
    pub flops_per_kj_norm: f64,
    /// Workload accuracy.
    pub accuracy: f64,
}

/// The full Table1 result.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Table1 {
    /// All configurations, in paper order (CPU, GPU, FPGA ladder, FPGA+ITH
    /// ladder).
    pub rows: Vec<Table1Row>,
    /// The paper's §V estimate: how many times less *energy* than the GPU
    /// the accelerator would use if the host interface were not the
    /// bottleneck (compute time only, ITH at the top frequency). The paper
    /// estimates 162x; this is an energy ratio, not the FLOPS/kJ rate
    /// metric of the table rows.
    pub interface_free_estimate: f64,
}

impl Table1 {
    /// Looks a row up by its label.
    pub fn row(&self, name: &str) -> Option<&Table1Row> {
        self.rows.iter().find(|r| r.name == name)
    }

    /// Renders the paper-style table.
    pub fn render(&self) -> String {
        let mut t = TextTable::new(vec![
            "Configuration".into(),
            "Time (s)".into(),
            "Power (W)".into(),
            "Speedup".into(),
            "FLOPS/kJ (norm)".into(),
            "Accuracy".into(),
        ]);
        for r in &self.rows {
            t.row(vec![
                r.name.clone(),
                fnum(r.time_s, 2),
                fnum(r.power_w, 2),
                ratio(r.speedup),
                ratio(r.flops_per_kj_norm),
                crate::report::percent(r.accuracy),
            ]);
        }
        let mut out = t.render();
        out.push_str(&format!(
            "\ninterface-free energy estimate (compute only, ITH, top frequency): {} less energy than the GPU (paper estimates 162x)\n",
            ratio(self.interface_free_estimate)
        ));
        out
    }
}

/// Runs the Table I workload: CPU, GPU, and the FPGA frequency ladder with
/// and without inference thresholding, over every task's test set.
pub fn run(suite: &TaskSuite, config: &Table1Config) -> Table1 {
    let reps = config.repetitions;
    let mut results: Vec<WorkloadResult> = Vec::new();
    results.push(run_workload(&CpuModel::new(), suite, false, reps));
    let gpu = run_workload(&GpuModel::new(), suite, false, reps);
    results.push(gpu.clone());
    for &mhz in &config.frequencies_mhz {
        let fpga = SuiteFpga::new(suite, ClockDomain::mhz(mhz), false);
        results.push(run_workload(&fpga, suite, false, reps));
    }
    for &mhz in &config.frequencies_mhz {
        let fpga = SuiteFpga::new(suite, ClockDomain::mhz(mhz), true);
        results.push(run_workload(&fpga, suite, true, reps));
    }
    let gpu_eff = gpu.flops_per_kj();
    let rows: Vec<Table1Row> = results
        .into_iter()
        .map(|r| Table1Row {
            speedup: gpu.time_s / r.time_s,
            flops_per_kj_norm: r.flops_per_kj() / gpu_eff,
            name: r.name.clone(),
            time_s: r.time_s,
            power_w: r.power_w,
            accuracy: r.accuracy,
        })
        .collect();
    // Energies of a single pass (the repetition factor cancels in the
    // ratio).
    let gpu_single_pass_energy = gpu.energy_j() / reps.max(1) as f64;
    let interface_free_estimate =
        interface_free_energy_ratio(suite, config, gpu_single_pass_energy);
    Table1 {
        rows,
        interface_free_estimate,
    }
}

/// Re-measures the top-frequency ITH configuration counting compute time
/// only and compares plain *energy* against the GPU — the paper's "if this
/// were not the case" §V estimate (162x, an energy ratio).
fn interface_free_energy_ratio(suite: &TaskSuite, config: &Table1Config, gpu_energy_j: f64) -> f64 {
    let top = config
        .frequencies_mhz
        .iter()
        .copied()
        .fold(f64::NEG_INFINITY, f64::max);
    if !top.is_finite() {
        return 0.0;
    }
    let clock = ClockDomain::mhz(top);
    let mut energy_j = 0.0f64;
    for task in &suite.tasks {
        let accel = mann_hw::Accelerator::new(
            task.model.clone(),
            mann_hw::AccelConfig::with_thresholding(clock, task.ith.clone()),
        );
        for s in &task.test_set {
            let run = accel.run(s);
            // Compute only: the fabric is 100% busy the whole (shorter) run.
            energy_j += run.compute_s * accel.power_w(1.0);
        }
    }
    if energy_j <= 0.0 {
        return 0.0;
    }
    gpu_energy_j / energy_j
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SuiteConfig;
    use mann_babi::TaskId;

    fn suite() -> TaskSuite {
        let cfg = SuiteConfig {
            tasks: vec![TaskId::SingleSupportingFact, TaskId::AgentMotivations],
            train_samples: 120,
            test_samples: 15,
            ..SuiteConfig::quick()
        };
        TaskSuite::build(&cfg)
    }

    #[test]
    fn table_shape_matches_paper() {
        let t = run(&suite(), &Table1Config::default());
        assert_eq!(t.rows.len(), 10); // CPU, GPU, 4 FPGA, 4 FPGA+ITH
        assert_eq!(t.rows[0].name, "CPU");
        assert_eq!(t.rows[1].name, "GPU");
        assert!((t.rows[1].speedup - 1.0).abs() < 1e-9);
        assert!((t.rows[1].flops_per_kj_norm - 1.0).abs() < 1e-9);
        let rendered = t.render();
        assert!(rendered.contains("FPGA 25 MHz"));
        assert!(rendered.contains("FPGA+ITH 100 MHz"));
    }

    #[test]
    fn headline_orderings_hold() {
        let t = run(&suite(), &Table1Config::default());
        let gpu = t.row("GPU").unwrap();
        let cpu = t.row("CPU").unwrap();
        let f25 = t.row("FPGA 25 MHz").unwrap();
        let f100 = t.row("FPGA 100 MHz").unwrap();
        let i25 = t.row("FPGA+ITH 25 MHz").unwrap();

        // FPGA is several-fold faster than the GPU; higher clocks faster
        // still, but sublinearly.
        assert!(f25.speedup > 2.0, "25 MHz speedup {}", f25.speedup);
        assert!(f100.speedup > f25.speedup);
        assert!(f100.speedup < f25.speedup * 4.0);
        // ITH shaves time at the same frequency.
        assert!(i25.time_s < f25.time_s);
        // Energy-efficiency hierarchy: FPGA >> CPU >= ~GPU.
        assert!(f25.flops_per_kj_norm > 10.0, "{}", f25.flops_per_kj_norm);
        assert!(cpu.flops_per_kj_norm > 1.0);
        // GPU draws the most power; FPGA 25 MHz the least.
        assert!(gpu.power_w > cpu.power_w);
        assert!(f25.power_w < cpu.power_w);
    }

    #[test]
    fn frequency_ladder_times_are_monotone() {
        let t = run(&suite(), &Table1Config::default());
        let times: Vec<f64> = [25.0, 50.0, 75.0, 100.0]
            .iter()
            .map(|m| t.row(&format!("FPGA {m:.0} MHz")).unwrap().time_s)
            .collect();
        for w in times.windows(2) {
            assert!(w[1] < w[0], "times not decreasing: {times:?}");
        }
    }

    #[test]
    fn interface_free_estimate_exceeds_measured_efficiency() {
        let t = run(&suite(), &Table1Config::default());
        let best_measured = t
            .rows
            .iter()
            .map(|r| r.flops_per_kj_norm)
            .fold(0.0f64, f64::max);
        // Removing the interface can only help (paper: 140x -> 162x).
        assert!(
            t.interface_free_estimate > best_measured,
            "{} vs {}",
            t.interface_free_estimate,
            best_measured
        );
    }

    #[test]
    fn serde_round_trip() {
        let t = run(
            &suite(),
            &Table1Config {
                repetitions: 1,
                frequencies_mhz: vec![25.0],
            },
        );
        let json = serde_json::to_string(&t).unwrap();
        let back: Table1 = serde_json::from_str(&json).unwrap();
        // f64 JSON round-trips can differ in the last ulp; compare the
        // re-serialized form instead of exact floats.
        assert_eq!(json, serde_json::to_string(&back).unwrap());
    }
}
