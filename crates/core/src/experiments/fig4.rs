//! Fig 4: per-task energy efficiency normalized to the GPU.

use mann_hw::ClockDomain;
use mann_platform::{flops_per_kj, CpuModel, ExecutionModel, GpuModel};
use serde::{Deserialize, Serialize};

use crate::experiments::SuiteFpga;
use crate::report::{ratio, TextTable};
use crate::workload::run_task;
use crate::TaskSuite;

/// The per-task configurations Fig 4 plots (besides the GPU reference).
pub const FIG4_CONFIGS: [&str; 5] = [
    "CPU",
    "FPGA 25 MHz",
    "FPGA+ITH 25 MHz",
    "FPGA 100 MHz",
    "FPGA+ITH 100 MHz",
];

/// One task's bar group.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig4Row {
    /// bAbI task number (1–20).
    pub task_number: usize,
    /// Task name.
    pub task_name: String,
    /// Energy efficiency vs GPU, in [`FIG4_CONFIGS`] order.
    pub efficiency_vs_gpu: Vec<f64>,
}

/// The Fig 4 result.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig4 {
    /// One row per task.
    pub rows: Vec<Fig4Row>,
}

impl Fig4 {
    /// Renders the figure as a table (rows = tasks, columns = configs).
    pub fn render(&self) -> String {
        let mut header = vec!["Task".into()];
        header.extend(FIG4_CONFIGS.iter().map(|s| (*s).to_owned()));
        let mut t = TextTable::new(header);
        for r in &self.rows {
            let mut cells = vec![format!("{:2} {}", r.task_number, r.task_name)];
            cells.extend(r.efficiency_vs_gpu.iter().map(|&x| ratio(x)));
            t.row(cells);
        }
        t.render()
    }

    /// Geometric-mean efficiency across tasks for config index `i`.
    pub fn geomean(&self, config_idx: usize) -> f64 {
        if self.rows.is_empty() {
            return 0.0;
        }
        let log_sum: f64 = self
            .rows
            .iter()
            .map(|r| r.efficiency_vs_gpu[config_idx].max(1e-12).ln())
            .sum();
        (log_sum / self.rows.len() as f64).exp()
    }
}

/// Measures every task under every Fig 4 configuration.
pub fn run(suite: &TaskSuite) -> Fig4 {
    let cpu = CpuModel::new();
    let gpu = GpuModel::new();
    let f25 = SuiteFpga::new(suite, ClockDomain::mhz(25.0), false);
    let i25 = SuiteFpga::new(suite, ClockDomain::mhz(25.0), true);
    let f100 = SuiteFpga::new(suite, ClockDomain::mhz(100.0), false);
    let i100 = SuiteFpga::new(suite, ClockDomain::mhz(100.0), true);
    let configs: [(&(dyn ExecutionModel + Sync), bool); 5] = [
        (&cpu, false),
        (&f25, false),
        (&i25, true),
        (&f100, false),
        (&i100, true),
    ];

    let rows = suite
        .tasks
        .iter()
        .map(|task| {
            let (gt, ge, gf, _, _) = run_task(&gpu, task, false);
            let g_eff = flops_per_kj(gf, gt, ge / gt);
            let efficiency_vs_gpu = configs
                .iter()
                .map(|(platform, ith)| {
                    let (t, e, f, _, _) = run_task(*platform, task, *ith);
                    flops_per_kj(f, t, e / t) / g_eff
                })
                .collect();
            Fig4Row {
                task_number: task.task.number(),
                task_name: task.task.name().to_owned(),
                efficiency_vs_gpu,
            }
        })
        .collect();
    Fig4 { rows }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SuiteConfig;
    use mann_babi::TaskId;

    fn suite() -> TaskSuite {
        let cfg = SuiteConfig {
            tasks: vec![TaskId::SingleSupportingFact, TaskId::Conjunction],
            train_samples: 120,
            test_samples: 12,
            ..SuiteConfig::quick()
        };
        TaskSuite::build(&cfg)
    }

    #[test]
    fn every_task_gets_all_configs() {
        let f = run(&suite());
        assert_eq!(f.rows.len(), 2);
        for r in &f.rows {
            assert_eq!(r.efficiency_vs_gpu.len(), FIG4_CONFIGS.len());
            assert!(r
                .efficiency_vs_gpu
                .iter()
                .all(|&x| x.is_finite() && x > 0.0));
        }
        let rendered = f.render();
        assert!(rendered.contains("single-supporting-fact"));
    }

    #[test]
    fn fpga_dominates_on_every_task() {
        let f = run(&suite());
        for r in &f.rows {
            let cpu = r.efficiency_vs_gpu[0];
            let f25 = r.efficiency_vs_gpu[1];
            assert!(
                f25 > cpu && f25 > 1.0,
                "task {}: FPGA {f25} vs CPU {cpu}",
                r.task_number
            );
        }
    }

    #[test]
    fn ith_increases_the_margin() {
        let f = run(&suite());
        for r in &f.rows {
            let f25 = r.efficiency_vs_gpu[1];
            let i25 = r.efficiency_vs_gpu[2];
            // ITH reduces time; even with its power adder the efficiency
            // should not collapse. At paper scale (large |I|) ITH wins
            // outright; at this test's small vocabularies parity is enough.
            assert!(i25 > f25 * 0.75, "task {}: {i25} vs {f25}", r.task_number);
        }
    }

    #[test]
    fn geomean_is_between_min_and_max() {
        let f = run(&suite());
        let vals: Vec<f64> = f.rows.iter().map(|r| r.efficiency_vs_gpu[1]).collect();
        let g = f.geomean(1);
        let min = vals.iter().copied().fold(f64::INFINITY, f64::min);
        let max = vals.iter().copied().fold(0.0f64, f64::max);
        assert!(g >= min && g <= max);
    }
}
