//! A suite-wide FPGA platform: one loaded accelerator per task.
//!
//! The FPGA carries its model in BRAM, so a multi-task workload needs one
//! accelerator instance per task (the paper reprograms weights per task the
//! same way). `SuiteFpga` dispatches each inference to the accelerator of
//! the sample's task.

use std::collections::HashMap;

use mann_babi::{EncodedSample, TaskId};
use mann_hw::ClockDomain;
use mann_platform::{ExecutionModel, FpgaPlatform, Measurement, MipsMode};
use memn2n::TrainedModel;

use crate::TaskSuite;

/// Per-task FPGA accelerators behind one [`ExecutionModel`].
#[derive(Debug, Clone)]
pub struct SuiteFpga {
    platforms: HashMap<TaskId, FpgaPlatform>,
    ith: bool,
    mhz: f64,
}

impl SuiteFpga {
    /// Loads every task's model at `clock`; `with_ith` additionally loads
    /// each task's calibrated thresholds.
    pub fn new(suite: &TaskSuite, clock: ClockDomain, with_ith: bool) -> Self {
        let platforms = suite
            .tasks
            .iter()
            .map(|t| {
                let p = if with_ith {
                    FpgaPlatform::with_thresholding(t.model.clone(), clock, t.ith.clone())
                } else {
                    FpgaPlatform::new(t.model.clone(), clock)
                };
                (t.task, p)
            })
            .collect();
        Self {
            platforms,
            ith: with_ith,
            mhz: clock.freq_mhz(),
        }
    }

    /// The accelerator loaded for `task`, if present.
    pub fn platform(&self, task: TaskId) -> Option<&FpgaPlatform> {
        self.platforms.get(&task)
    }
}

impl ExecutionModel for SuiteFpga {
    fn name(&self) -> String {
        if self.ith {
            format!("FPGA+ITH {:.0} MHz", self.mhz)
        } else {
            format!("FPGA {:.0} MHz", self.mhz)
        }
    }

    fn run_inference(
        &self,
        model: &TrainedModel,
        sample: &EncodedSample,
        mips: MipsMode<'_>,
    ) -> Measurement {
        let platform = self
            .platforms
            .get(&model.task)
            .unwrap_or_else(|| panic!("no accelerator loaded for {}", model.task));
        platform.run_inference(model, sample, mips)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SuiteConfig;

    fn suite() -> TaskSuite {
        let cfg = SuiteConfig {
            tasks: vec![TaskId::SingleSupportingFact, TaskId::Conjunction],
            train_samples: 60,
            test_samples: 8,
            ..SuiteConfig::quick()
        };
        TaskSuite::build(&cfg)
    }

    #[test]
    fn dispatches_to_the_right_task() {
        let s = suite();
        let fpga = SuiteFpga::new(&s, ClockDomain::mhz(25.0), false);
        for t in &s.tasks {
            let m = fpga.run_inference(&t.model, &t.test_set[0], MipsMode::Exhaustive);
            assert!(m.time_s > 0.0);
        }
        assert!(fpga.platform(TaskId::Conjunction).is_some());
        assert!(fpga.platform(TaskId::Counting).is_none());
    }

    #[test]
    fn names_encode_clock_and_ith() {
        let s = suite();
        assert_eq!(
            SuiteFpga::new(&s, ClockDomain::mhz(50.0), false).name(),
            "FPGA 50 MHz"
        );
        assert_eq!(
            SuiteFpga::new(&s, ClockDomain::mhz(75.0), true).name(),
            "FPGA+ITH 75 MHz"
        );
    }

    #[test]
    #[should_panic(expected = "no accelerator")]
    fn unknown_task_panics() {
        let s = suite();
        let fpga = SuiteFpga::new(&s, ClockDomain::mhz(25.0), false);
        let other_cfg = SuiteConfig {
            tasks: vec![TaskId::Counting],
            train_samples: 30,
            test_samples: 4,
            ..SuiteConfig::quick()
        };
        let other = TaskSuite::build(&other_cfg);
        let _ = fpga.run_inference(
            &other.tasks[0].model,
            &other.tasks[0].test_set[0],
            MipsMode::Exhaustive,
        );
    }
}
