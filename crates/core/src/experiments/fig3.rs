//! Fig 3: accuracy and number of comparisons against the thresholding
//! constant ρ, with and without index ordering.

use mann_ith::search::{ExhaustiveMips, MipsStrategy, ThresholdedMips};
use mann_ith::{LogitStats, ThresholdingCalibrator};
use memn2n::forward::forward_until_output;
use serde::{Deserialize, Serialize};

use crate::report::{percent, TextTable};
use crate::TaskSuite;

/// Fig 3 runner configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig3Config {
    /// The ρ sweep (the paper plots 1.0, 0.99, 0.95, 0.9).
    pub rhos: Vec<f32>,
}

impl Default for Fig3Config {
    fn default() -> Self {
        Self {
            rhos: vec![1.0, 0.99, 0.95, 0.9],
        }
    }
}

/// One operating point of Fig 3.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig3Point {
    /// `None` is the w/o-ITH baseline; `Some(ρ)` a thresholded point.
    pub rho: Option<f32>,
    /// Whether silhouette index ordering was used.
    pub ordered: bool,
    /// Absolute accuracy over the workload.
    pub accuracy: f64,
    /// Accuracy normalized to the w/o-ITH baseline.
    pub accuracy_norm: f64,
    /// Mean comparisons per inference, normalized to `|I|`.
    pub comparisons_norm: f64,
}

/// The Fig 3 result: the baseline plus the (ρ × ordering) grid.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig3 {
    /// All points: the baseline first, then ordered sweep, then unordered
    /// sweep.
    pub points: Vec<Fig3Point>,
}

impl Fig3 {
    /// The point for `(rho, ordered)`.
    pub fn point(&self, rho: Option<f32>, ordered: bool) -> Option<&Fig3Point> {
        self.points
            .iter()
            .find(|p| p.rho == rho && (p.rho.is_none() || p.ordered == ordered))
    }

    /// Renders the figure as a table (one row per operating point).
    pub fn render(&self) -> String {
        let mut t = TextTable::new(vec![
            "Config".into(),
            "Accuracy".into(),
            "Accuracy (norm)".into(),
            "#Comparisons (norm)".into(),
        ]);
        for p in &self.points {
            let label = match p.rho {
                None => "w/o ITH".to_owned(),
                Some(r) if p.ordered => format!("ITH ({r})"),
                Some(r) => format!("ITH ({r}) w/o ordering"),
            };
            t.row(vec![
                label,
                percent(p.accuracy),
                percent(p.accuracy_norm),
                percent(p.comparisons_norm),
            ]);
        }
        t.render()
    }
}

/// Sweeps ρ with and without ordering over every task's test set.
///
/// Logit statistics are collected once per task and re-thresholded per ρ,
/// exactly as Steps 1–3 of Algorithm 1 factor.
pub fn run(suite: &TaskSuite, config: &Fig3Config) -> Fig3 {
    // Pre-collect per-task statistics and hidden states.
    struct TaskCtx<'a> {
        task: &'a crate::TrainedTask,
        stats: LogitStats,
        hiddens: Vec<mann_linalg::Vector>,
    }
    let ctxs: Vec<TaskCtx> = suite
        .tasks
        .iter()
        .map(|t| TaskCtx {
            stats: LogitStats::collect(&t.model, &t.train_set),
            // The per-sample forward passes are independent; fan them out
            // on the work-stealing pool (order-preserving, so the hidden
            // states are identical to a sequential sweep).
            hiddens: crate::parallel::parallel_map_indexed(
                t.test_set.len(),
                crate::parallel::worker_threads(t.test_set.len()),
                |i| forward_until_output(&t.model.params, &t.test_set[i]),
            ),
            task: t,
        })
        .collect();

    let mut points = Vec::new();

    // Baseline: exhaustive search.
    {
        let mut correct = 0usize;
        let mut total = 0usize;
        for ctx in &ctxs {
            for (h, s) in ctx.hiddens.iter().zip(&ctx.task.test_set) {
                let r = ExhaustiveMips.search(&ctx.task.model.params, h);
                if r.label == s.answer {
                    correct += 1;
                }
                total += 1;
            }
        }
        let accuracy = correct as f64 / total.max(1) as f64;
        points.push(Fig3Point {
            rho: None,
            ordered: true,
            accuracy,
            accuracy_norm: 1.0,
            comparisons_norm: 1.0,
        });
    }
    let baseline_accuracy = points[0].accuracy;

    for &ordered in &[true, false] {
        for &rho in &config.rhos {
            let mut correct = 0usize;
            let mut total = 0usize;
            let mut cmp_frac_sum = 0.0f64;
            for ctx in &ctxs {
                let ith = ThresholdingCalibrator::new()
                    .rho(rho)
                    .calibrate_from_stats(&ctx.stats);
                let strategy = if ordered {
                    ThresholdedMips::new(&ith)
                } else {
                    ThresholdedMips::without_ordering(&ith)
                };
                let classes = ctx.task.model.params.vocab_size as f64;
                for (h, s) in ctx.hiddens.iter().zip(&ctx.task.test_set) {
                    let r = strategy.search(&ctx.task.model.params, h);
                    if r.label == s.answer {
                        correct += 1;
                    }
                    cmp_frac_sum += r.comparisons as f64 / classes;
                    total += 1;
                }
            }
            let accuracy = correct as f64 / total.max(1) as f64;
            points.push(Fig3Point {
                rho: Some(rho),
                ordered,
                accuracy,
                accuracy_norm: accuracy / baseline_accuracy.max(1e-12),
                comparisons_norm: cmp_frac_sum / total.max(1) as f64,
            });
        }
    }
    Fig3 { points }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SuiteConfig;
    use mann_babi::TaskId;

    fn suite() -> TaskSuite {
        let cfg = SuiteConfig {
            tasks: vec![TaskId::SingleSupportingFact],
            train_samples: 200,
            test_samples: 30,
            ..SuiteConfig::quick()
        };
        TaskSuite::build(&cfg)
    }

    #[test]
    fn figure_has_baseline_plus_grid() {
        let f = run(&suite(), &Fig3Config::default());
        assert_eq!(f.points.len(), 1 + 2 * 4);
        assert!(f.point(None, true).is_some());
        assert!(f.point(Some(0.9), false).is_some());
        let rendered = f.render();
        assert!(rendered.contains("w/o ITH"));
        assert!(rendered.contains("w/o ordering"));
    }

    #[test]
    fn comparisons_fall_as_rho_falls_and_baseline_is_one() {
        let f = run(&suite(), &Fig3Config::default());
        assert!((f.point(None, true).unwrap().comparisons_norm - 1.0).abs() < 1e-9);
        let c: Vec<f64> = [1.0f32, 0.99, 0.95, 0.9]
            .iter()
            .map(|&r| f.point(Some(r), true).unwrap().comparisons_norm)
            .collect();
        assert!(c[0] < 1.0, "rho=1.0 saves nothing: {}", c[0]);
        for w in c.windows(2) {
            assert!(w[1] <= w[0] + 1e-6, "comparisons rose: {c:?}");
        }
    }

    #[test]
    fn rho_one_accuracy_within_tolerance() {
        let f = run(&suite(), &Fig3Config::default());
        let p = f.point(Some(1.0), true).unwrap();
        // Paper: < 0.1 % loss; allow a little more on a 30-question split.
        assert!(p.accuracy_norm > 0.93, "accuracy_norm {}", p.accuracy_norm);
    }

    #[test]
    fn ordering_does_not_cost_comparisons() {
        let f = run(&suite(), &Fig3Config::default());
        for rho in [1.0f32, 0.99, 0.95, 0.9] {
            let o = f.point(Some(rho), true).unwrap().comparisons_norm;
            let u = f.point(Some(rho), false).unwrap().comparisons_norm;
            assert!(o <= u * 1.1, "rho {rho}: ordered {o} vs unordered {u}");
        }
    }
}
