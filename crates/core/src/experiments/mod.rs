//! Experiment runners — one module per paper artifact.
//!
//! | module   | paper artifact | regenerating binary |
//! |----------|----------------|---------------------|
//! | [`table1`] | Table I      | `cargo run -p mann-bench --bin table1` |
//! | [`fig2b`]  | Fig 2(b)     | `cargo run -p mann-bench --bin fig2b`  |
//! | [`fig3`]   | Fig 3        | `cargo run -p mann-bench --bin fig3`   |
//! | [`fig4`]   | Fig 4        | `cargo run -p mann-bench --bin fig4`   |

pub mod fig2b;
pub mod fig3;
pub mod fig4;
pub mod table1;

mod fpga_suite;

pub use fpga_suite::SuiteFpga;
