//! Fig 2(b): the per-class logit mixture distributions that motivate
//! inference thresholding.

use mann_ith::LogitStats;
use serde::{Deserialize, Serialize};

use crate::report::fnum;
use crate::TrainedTask;

/// Histogram view of one class's logit mixture.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClassDistribution {
    /// Class index.
    pub class: usize,
    /// The class token, when resolvable.
    pub token: Option<String>,
    /// On-class sample count (`z_i` when `i` is the answer).
    pub on_count: usize,
    /// Off-class sample count.
    pub off_count: usize,
    /// Binned on-class frequencies.
    pub on_bins: Vec<f32>,
    /// Binned off-class frequencies.
    pub off_bins: Vec<f32>,
    /// Bin range `[lo, hi]`.
    pub range: (f32, f32),
    /// Silhouette coefficient of the class.
    pub silhouette: f32,
}

/// The Fig 2(b) result: the most-populated classes of one task.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig2b {
    /// Task number.
    pub task_number: usize,
    /// Per-class distributions, most-populated first.
    pub classes: Vec<ClassDistribution>,
}

impl Fig2b {
    /// Renders text histograms (each bin as a height-coded glyph).
    pub fn render(&self) -> String {
        let glyphs = [' ', '.', ':', '-', '=', '+', '*', '#', '%', '@'];
        let spark = |bins: &[f32]| -> String {
            let max = bins.iter().copied().fold(0.0f32, f32::max).max(1e-9);
            bins.iter()
                .map(|&b| glyphs[((b / max) * 9.0).round() as usize])
                .collect()
        };
        let mut out = String::new();
        out.push_str(&format!(
            "Logit distributions, task {} (rows: on-class vs off-class)\n",
            self.task_number
        ));
        for c in &self.classes {
            out.push_str(&format!(
                "class {:>4} {:<12} silhouette {:>6}  range [{:.2}, {:.2}]\n",
                c.class,
                c.token.as_deref().unwrap_or("?"),
                fnum(c.silhouette as f64, 3),
                c.range.0,
                c.range.1,
            ));
            out.push_str(&format!(
                "  on  ({:>5}) |{}|\n",
                c.on_count,
                spark(&c.on_bins)
            ));
            out.push_str(&format!(
                "  off ({:>5}) |{}|\n",
                c.off_count,
                spark(&c.off_bins)
            ));
        }
        out
    }
}

/// Collects the logit mixtures of the `top_k` most-populated answer classes
/// of one trained task.
pub fn run(task: &TrainedTask, top_k: usize, bins: usize) -> Fig2b {
    let stats = LogitStats::collect(&task.model, &task.train_set);
    let mut by_count: Vec<usize> = (0..stats.on.len()).collect();
    by_count.sort_by_key(|&i| std::cmp::Reverse(stats.on[i].len()));
    let classes = by_count
        .into_iter()
        .take(top_k)
        .filter(|&i| !stats.on[i].is_empty())
        .map(|i| {
            let on = &stats.on[i];
            let off = &stats.off[i];
            let lo = on
                .min()
                .unwrap_or(0.0)
                .min(off.min().unwrap_or(f32::INFINITY))
                - 0.5;
            let hi = on
                .max()
                .unwrap_or(1.0)
                .max(off.max().unwrap_or(f32::NEG_INFINITY))
                + 0.5;
            ClassDistribution {
                class: i,
                token: task.model.encoder.vocab().token(i).map(str::to_owned),
                on_count: on.len(),
                off_count: off.len(),
                on_bins: on.binned(bins, lo, hi),
                off_bins: off.binned(bins, lo, hi),
                range: (lo, hi),
                silhouette: task.ith.silhouettes[i],
            }
        })
        .collect();
    Fig2b {
        task_number: task.task.number(),
        classes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{SuiteConfig, TaskSuite};
    use mann_babi::TaskId;

    fn task() -> TrainedTask {
        let cfg = SuiteConfig {
            tasks: vec![TaskId::SingleSupportingFact],
            train_samples: 150,
            test_samples: 10,
            ..SuiteConfig::quick()
        };
        TaskSuite::build(&cfg).tasks.remove(0)
    }

    #[test]
    fn distributions_cover_populated_classes() {
        let f = run(&task(), 4, 24);
        assert!(!f.classes.is_empty());
        for c in &f.classes {
            assert!(c.on_count > 0);
            assert_eq!(c.on_bins.len(), 24);
            assert!(c.range.0 < c.range.1);
            // Answer classes in task 1 are locations.
            assert!(c.token.is_some());
        }
        // Sorted by population.
        for w in f.classes.windows(2) {
            assert!(w[0].on_count >= w[1].on_count);
        }
    }

    #[test]
    fn on_class_sits_right_of_off_class() {
        // The motivating structure: logits of the true class concentrate at
        // higher values than off-class logits.
        let f = run(&task(), 2, 32);
        for c in &f.classes {
            let centroid = |bins: &[f32]| -> f32 {
                let total: f32 = bins.iter().sum();
                bins.iter()
                    .enumerate()
                    .map(|(i, b)| i as f32 * b)
                    .sum::<f32>()
                    / total.max(1e-9)
            };
            assert!(
                centroid(&c.on_bins) > centroid(&c.off_bins),
                "class {} on-centroid not right of off-centroid",
                c.class
            );
        }
    }

    #[test]
    fn render_contains_sparklines() {
        let f = run(&task(), 2, 16);
        let s = f.render();
        assert!(s.contains("on  ("));
        assert!(s.contains("off ("));
        assert!(s.contains("silhouette"));
    }
}
