//! Integration tests for the gated (GRU) READ controller: functional
//! equivalence with the f32 reference model and the gating cycle tax.

use mann_babi::EncodedSample;
use mann_hw::{AccelConfig, Accelerator};
use memn2n::{ControllerKind, ModelConfig, Params, TrainedModel};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn model(controller: ControllerKind, seed: u64) -> TrainedModel {
    let params = Params::init(
        ModelConfig {
            embed_dim: 12,
            hops: 2,
            tie_embeddings: false,
            controller,
        },
        30,
        &mut StdRng::seed_from_u64(seed),
    );
    TrainedModel {
        task: mann_babi::TaskId::SingleSupportingFact,
        params,
        encoder: mann_babi::Encoder::with_time_tokens(mann_babi::Vocab::new(), 0),
    }
}

fn sample(seed: u64) -> EncodedSample {
    let mut rng = StdRng::seed_from_u64(seed);
    EncodedSample {
        sentences: (0..6)
            .map(|_| (0..4).map(|_| rng.gen_range(0..30)).collect())
            .collect(),
        question: vec![rng.gen_range(0..30), rng.gen_range(0..30)],
        answer: 0,
    }
}

#[test]
fn gru_accelerator_matches_reference_predictions() {
    let m = model(ControllerKind::Gru, 5);
    let accel = Accelerator::new(m.clone(), AccelConfig::default());
    let mut agree = 0usize;
    let n = 40;
    for s in 0..n {
        let sm = sample(s);
        let hw = accel.run(&sm).answer;
        let sw = m.predict(&sm);
        // Allow quantization slack: the hw answer's reference logit must be
        // within tolerance of the reference winner.
        let trace = memn2n::forward(&m.params, &sm);
        if hw == sw || trace.logits[sw] - trace.logits[hw] < 0.02 {
            agree += 1;
        }
    }
    assert!(agree * 10 >= n as usize * 9, "{agree}/{n}");
}

#[test]
fn gating_costs_controller_cycles() {
    let linear = Accelerator::new(model(ControllerKind::Linear, 7), AccelConfig::default());
    let gated = Accelerator::new(model(ControllerKind::Gru, 7), AccelConfig::default());
    let s = sample(99);
    let rl = linear.run(&s);
    let rg = gated.run(&s);
    // The GRU runs six matvecs plus sigmoid/tanh (exp + sequential divides)
    // against the linear controller's single matvec.
    assert!(
        rg.phases.controller.get() > 4 * rl.phases.controller.get(),
        "gru {} vs linear {}",
        rg.phases.controller,
        rl.phases.controller
    );
    // Other phases are unaffected.
    assert_eq!(rg.phases.write, rl.phases.write);
    assert_eq!(rg.phases.output, rl.phases.output);
}

#[test]
fn gru_training_learns_a_simple_task() {
    use mann_babi::{DatasetBuilder, TaskId};
    use memn2n::{TrainConfig, Trainer};
    let data = DatasetBuilder::new()
        .train_samples(200)
        .test_samples(30)
        .seed(8)
        .build_task(TaskId::AgentMotivations);
    let mut trainer = Trainer::from_task_data(
        &data,
        ModelConfig {
            embed_dim: 16,
            hops: 2,
            tie_embeddings: false,
            controller: ControllerKind::Gru,
        },
        TrainConfig {
            epochs: 25,
            learning_rate: 0.05,
            decay_every: 10,
            clip_norm: 40.0,
            seed: 8,
            ..TrainConfig::default()
        },
    );
    let report = trainer.train();
    assert!(
        report.final_test_accuracy > 0.5,
        "gru test accuracy {}",
        report.final_test_accuracy
    );
    // And the trained GRU model runs on the accelerator.
    let (m, _, test) = trainer.into_parts();
    let accel = Accelerator::new(m, AccelConfig::default());
    let run = accel.run(&test[0]);
    assert!(run.cycles.get() > 0);
}
