//! Degenerate-input robustness: the accelerator and its modules must handle
//! empty stories, empty questions, single-token inputs, and extreme clock
//! settings without panicking or producing non-finite state.

use mann_babi::EncodedSample;
use mann_hw::write_path::WritePathSim;
use mann_hw::{AccelConfig, Accelerator, ClockDomain, DatapathConfig, PcieLink};
use memn2n::{ModelConfig, Params, TrainedModel};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn model(vocab: usize, e: usize, hops: usize) -> TrainedModel {
    let params = Params::init(
        ModelConfig {
            embed_dim: e,
            hops,
            tie_embeddings: false,
            ..ModelConfig::default()
        },
        vocab,
        &mut StdRng::seed_from_u64(1),
    );
    TrainedModel {
        task: mann_babi::TaskId::SingleSupportingFact,
        params,
        encoder: mann_babi::Encoder::with_time_tokens(mann_babi::Vocab::new(), 0),
    }
}

#[test]
fn empty_story_still_answers() {
    let accel = Accelerator::new(model(10, 6, 2), AccelConfig::default());
    let sample = EncodedSample {
        sentences: vec![],
        question: vec![1, 2],
        answer: 0,
    };
    let run = accel.run(&sample);
    assert!(run.answer < 10);
    assert!(run.cycles.get() > 0);
    assert!(run.total_s.is_finite());
}

#[test]
fn empty_question_embeds_to_zero_and_still_answers() {
    let accel = Accelerator::new(model(10, 6, 2), AccelConfig::default());
    let sample = EncodedSample {
        sentences: vec![vec![1, 2], vec![3]],
        question: vec![],
        answer: 0,
    };
    let run = accel.run(&sample);
    assert!(run.answer < 10);
}

#[test]
fn single_word_single_sentence_minimum() {
    let accel = Accelerator::new(model(4, 2, 1), AccelConfig::default());
    let sample = EncodedSample {
        sentences: vec![vec![0]],
        question: vec![1],
        answer: 2,
    };
    let run = accel.run(&sample);
    assert!(run.answer < 4);
    assert_eq!(run.comparisons, 4);
}

#[test]
fn long_stories_scale_without_overflow() {
    let accel = Accelerator::new(model(30, 8, 3), AccelConfig::default());
    let sample = EncodedSample {
        sentences: (0..200)
            .map(|i| vec![i % 30, (i + 1) % 30, (i + 2) % 30])
            .collect(),
        question: vec![1],
        answer: 0,
    };
    let run = accel.run(&sample);
    assert!(run.cycles.get() > 10_000);
    assert!(run.total_s.is_finite() && run.total_s > 0.0);
}

#[test]
fn extreme_clocks_are_usable() {
    let m = model(10, 6, 1);
    let sample = EncodedSample {
        sentences: vec![vec![1]],
        question: vec![2],
        answer: 0,
    };
    for mhz in [0.001f64, 1.0, 10_000.0] {
        let accel = Accelerator::new(
            m.clone(),
            AccelConfig {
                clock: ClockDomain::mhz(mhz),
                ..AccelConfig::default()
            },
        );
        let run = accel.run(&sample);
        assert!(
            run.compute_s.is_finite() && run.compute_s > 0.0,
            "{mhz} MHz"
        );
    }
}

#[test]
fn narrowest_datapath_still_functions() {
    let accel = Accelerator::new(
        model(12, 4, 2),
        AccelConfig {
            datapath: DatapathConfig {
                tree_width: 1,
                output_lanes: 1,
                exp_lut_entries: 2,
                frac_bits: 1,
                ..DatapathConfig::default()
            },
            ..AccelConfig::default()
        },
    );
    let sample = EncodedSample {
        sentences: vec![vec![1, 2]],
        question: vec![3],
        answer: 0,
    };
    // Q31.1 arithmetic is uselessly coarse, but must not panic.
    let run = accel.run(&sample);
    assert!(run.answer < 12);
}

#[test]
fn write_path_sim_handles_minimal_and_empty_stories() {
    let sim = WritePathSim::new(8, PcieLink::default(), ClockDomain::mhz(50.0));
    let minimal = EncodedSample {
        sentences: vec![vec![0]],
        question: vec![1],
        answer: 0,
    };
    let r = sim.run(&minimal);
    assert_eq!(r.words, 1 + 2 + 2 + 1);
    let empty_story = EncodedSample {
        sentences: vec![],
        question: vec![1],
        answer: 0,
    };
    let r = sim.run(&empty_story);
    assert_eq!(r.words, 1 + 2 + 1);
    assert!(r.cycles.get() > 0);
}
