//! End-to-end SEU ablation: radiation-style bit flips in the quantized
//! weight BRAMs, pushed through the full [`Accelerator`] pipeline.
//!
//! Pins the qualitative result behind the serve layer's scrub-and-reupload
//! recovery policy: fractional-bit upsets perturb weights by less than one
//! integer ULP and are largely absorbed by the output argmax, while
//! sign-bit upsets corrupt whole embedding columns — so scrubbing is worth
//! real link and compute cycles even at low upset counts.

use std::sync::OnceLock;

use mann_babi::{DatasetBuilder, EncodedSample, TaskId};
use mann_hw::{inject_upsets_in_bits, AccelConfig, Accelerator};
use memn2n::{ModelConfig, TrainConfig, TrainedModel, Trainer};

fn trained() -> &'static (TrainedModel, Vec<EncodedSample>) {
    static MODEL: OnceLock<(TrainedModel, Vec<EncodedSample>)> = OnceLock::new();
    MODEL.get_or_init(|| {
        let data = DatasetBuilder::new()
            .train_samples(120)
            .test_samples(24)
            .seed(9)
            .build_task(TaskId::SingleSupportingFact);
        let mut trainer = Trainer::from_task_data(
            &data,
            ModelConfig {
                embed_dim: 16,
                hops: 2,
                ..ModelConfig::default()
            },
            TrainConfig {
                epochs: 12,
                ..TrainConfig::default()
            },
        );
        trainer.train();
        let (model, _, test) = trainer.into_parts();
        (model, test)
    })
}

/// Answers of the accelerator with `upsets` bit flips in `bits`.
fn answers_with(upsets: usize, bits: std::ops::Range<u32>, seed: u64) -> Vec<usize> {
    let (model, test) = trained();
    let (faulted, _) = inject_upsets_in_bits(&model.params, upsets, bits, seed);
    let accel = Accelerator::new(
        TrainedModel {
            task: model.task,
            params: faulted,
            encoder: model.encoder.clone(),
        },
        AccelConfig::default(),
    );
    test.iter().map(|s| accel.run(s).answer).collect()
}

fn changed(a: &[usize], b: &[usize]) -> usize {
    a.iter().zip(b).filter(|(x, y)| x != y).count()
}

#[test]
fn injection_is_deterministic_per_seed() {
    let (model, _) = trained();
    let (fault_a, sites_a) = inject_upsets_in_bits(&model.params, 20, 0..32, 5);
    let (fault_b, sites_b) = inject_upsets_in_bits(&model.params, 20, 0..32, 5);
    assert_eq!(sites_a, sites_b, "same seed must pick the same sites");
    assert_eq!(
        answers_with(20, 0..32, 5),
        answers_with(20, 0..32, 5),
        "same seed must produce identical faulted answers"
    );
    // Different seeds pick different sites (overwhelmingly likely across
    // thousands of candidate bits; pinned here since everything is seeded).
    let (_, sites_c) = inject_upsets_in_bits(&model.params, 20, 0..32, 6);
    assert_ne!(sites_a, sites_c, "different seeds must diverge");
    drop((fault_a, fault_b));
}

#[test]
fn low_fractional_bits_barely_move_answers() {
    let baseline = answers_with(0, 0..8, 1);
    // 64 upsets confined to bits 0..8 perturb each hit weight by at most
    // 2^-8 ≈ 0.004 — the argmax absorbs nearly all of it.
    let mut worst = 0usize;
    for seed in [1u64, 2, 3] {
        let faulted = answers_with(64, 0..8, seed);
        worst = worst.max(changed(&baseline, &faulted));
    }
    let n = baseline.len();
    assert!(
        worst * 4 <= n,
        "low-bit upsets changed {worst}/{n} answers; expected at most a quarter"
    );
}

#[test]
fn sign_bit_upsets_are_strictly_worse() {
    let baseline = answers_with(0, 0..8, 1);
    let n = baseline.len();
    // The same upset count aimed at the sign bit flips weights by ~2^15 in
    // Q16.16 — each hit corrupts an entire embedding column's dot products.
    let (mut low_total, mut sign_total) = (0usize, 0usize);
    for seed in [1u64, 2, 3] {
        low_total += changed(&baseline, &answers_with(64, 0..8, seed));
        sign_total += changed(&baseline, &answers_with(64, 31..32, seed));
    }
    assert!(
        sign_total > low_total,
        "sign-bit upsets ({sign_total}/{} over 3 seeds) should break more answers \
         than fractional-bit upsets ({low_total}/{})",
        3 * n,
        3 * n
    );
    assert!(
        sign_total * 4 >= 3 * n,
        "64 sign-bit upsets changed only {sign_total}/{} answers; expected heavy damage",
        3 * n
    );
}
