//! Property tests for the host-interface model and the bounded FIFOs:
//! transfer-time monotonicity, lossless in-order link arbitration, and
//! overflow/deadlock freedom under arbitrary push/pop interleavings.

use mann_hw::fifo::HwFifo;
use mann_hw::{LinkArbiter, PcieLink, SimTime};
use proptest::prelude::*;

/// A random but physically plausible link model.
fn link(bw_gbps: f64, lat_us: f64) -> PcieLink {
    PcieLink {
        bandwidth_bytes_per_s: bw_gbps * 1e9,
        latency_per_transfer_s: lat_us * 1e-6,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Transfer time is monotone in payload size for any link parameters:
    /// more bytes never transfer faster.
    #[test]
    fn transfer_time_monotone_in_payload(
        bw in 0.1f64..16.0,
        lat in 1.0f64..500.0,
        a in 0u64..1_000_000,
        b in 0u64..1_000_000,
    ) {
        let l = link(bw, lat);
        let (small, big) = (a.min(b), a.max(b));
        prop_assert!(l.transfer_time_s(small) <= l.transfer_time_s(big));
        // Same for the word-level QA helpers.
        prop_assert!(l.input_transfer_time_s(small as usize % 4096)
            <= l.input_transfer_time_s(big as usize % 4096 + (small as usize % 4096)));
    }

    /// Batching N payloads into one grant never costs more than N separate
    /// grants, and a batch is never cheaper than its bandwidth floor.
    #[test]
    fn batched_transfer_bounds(
        bw in 0.1f64..16.0,
        lat in 1.0f64..500.0,
        sizes in proptest::collection::vec(1u64..100_000, 1..16),
    ) {
        let l = link(bw, lat);
        let total: u64 = sizes.iter().sum();
        let separate: f64 = sizes.iter().map(|&b| l.transfer_time_s(b)).sum();
        let batched = l.batched_transfer_time_s(total, sizes.len());
        prop_assert!(batched <= separate + 1e-12);
        prop_assert!(batched >= total as f64 / l.bandwidth_bytes_per_s);
    }

    /// For any schedule of submissions (nondecreasing submit times, random
    /// payloads), the arbiter grants every job exactly once, in submission
    /// order, with non-overlapping windows that never start before the job
    /// was submitted.
    #[test]
    fn arbiter_is_lossless_in_order_and_non_overlapping(
        jobs in proptest::collection::vec((0u64..1_000_000, 1u64..100_000), 1..40),
    ) {
        let mut arb = LinkArbiter::new(PcieLink::default());
        // Build nondecreasing submit times from random deltas.
        let mut t = 0u64;
        let submits: Vec<(u64, SimTime, u64)> = jobs
            .iter()
            .enumerate()
            .map(|(i, &(dt, bytes))| {
                t += dt;
                (i as u64, SimTime::from_ps(t), bytes)
            })
            .collect();
        // Drive the arbiter event-style: submit everything that has arrived
        // by `now`, then grant/complete one job at a time.
        let mut grants = Vec::new();
        let mut next_submit = 0usize;
        let mut now = SimTime::ZERO;
        while grants.len() < submits.len() {
            // Submit arrivals up to `now`, plus — if the link would idle —
            // jump to the next arrival.
            while next_submit < submits.len() && submits[next_submit].1 <= now {
                let (id, _, bytes) = submits[next_submit];
                arb.submit(id, bytes, 1);
                next_submit += 1;
            }
            match arb.try_grant(now) {
                Some(g) => {
                    now = g.end;
                    arb.complete(g.id);
                    grants.push(g);
                }
                None => {
                    // Nothing pending: advance to the next submission.
                    prop_assert!(next_submit < submits.len(), "deadlock: no work, none arriving");
                    now = now.max(submits[next_submit].1);
                }
            }
        }
        // Lossless: every job granted exactly once, in submission order.
        prop_assert_eq!(grants.len(), submits.len());
        for (g, s) in grants.iter().zip(&submits) {
            prop_assert_eq!(g.id, s.0);
            prop_assert_eq!(g.bytes, s.2);
            prop_assert!(g.start >= s.1, "grant before submission");
            prop_assert!(g.end >= g.start);
        }
        // Non-overlapping, time-ordered windows.
        for w in grants.windows(2) {
            prop_assert!(w[1].start >= w[0].end, "overlapping grants");
        }
        // Accounting adds up.
        let busy: SimTime = grants
            .iter()
            .map(|g| g.end.saturating_sub(g.start))
            .sum();
        prop_assert_eq!(arb.busy_time(), busy);
        prop_assert_eq!(arb.grants(), grants.len() as u64);
    }

    /// A bounded FIFO under an arbitrary push/pop interleaving never
    /// exceeds its capacity, refuses pushes exactly when full, pops exactly
    /// when nonempty (no deadlock), and delivers values in push order.
    #[test]
    fn bounded_fifo_never_overflows_or_deadlocks(
        capacity in 1usize..16,
        ops in proptest::collection::vec(any::<u8>(), 1..200),
    ) {
        let mut fifo = HwFifo::new(capacity);
        let mut reference = std::collections::VecDeque::new();
        let mut next_value = 0u32;
        for op in ops {
            if op % 3 != 0 {
                // Push twice as often as pop to exercise backpressure.
                let was_full = fifo.is_full();
                match fifo.push(next_value) {
                    Ok(()) => {
                        prop_assert!(!was_full, "push accepted while full");
                        reference.push_back(next_value);
                    }
                    Err(v) => {
                        prop_assert!(was_full, "push refused while not full");
                        prop_assert_eq!(v, next_value, "backpressure lost the value");
                    }
                }
                next_value += 1;
            } else {
                let popped = fifo.pop();
                prop_assert_eq!(popped, reference.pop_front(), "order or liveness violated");
            }
            prop_assert!(fifo.len() <= capacity, "occupancy exceeded capacity");
            prop_assert_eq!(fifo.len(), reference.len());
            prop_assert_eq!(fifo.is_empty(), reference.is_empty());
        }
        // Drain: everything pushed comes out, in order — nothing lost.
        while let Some(v) = fifo.pop() {
            prop_assert_eq!(Some(v), reference.pop_front());
        }
        prop_assert!(reference.is_empty());
    }
}
