//! Property tests for the hardware simulator: protocol robustness,
//! functional equivalence with the reference model, timing monotonicity.

use mann_babi::EncodedSample;
use mann_hw::modules::{decode_stream, encode_sample_stream, OutputModule};
use mann_hw::{AccelConfig, Accelerator, ClockDomain, DatapathConfig, MemIndexConfig};
use mann_ith::threshold::ClassThreshold;
use mann_ith::{ExitGuard, HopPrune, Kernel, ThresholdingModel};
use mann_linalg::Matrix;
use memn2n::{ModelConfig, Params, TrainedModel};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// A random tiny model + sample pair (untrained weights — equivalence must
/// hold regardless of training).
fn random_case(seed: u64, vocab: usize, e: usize, hops: usize) -> (TrainedModel, EncodedSample) {
    let params = Params::init(
        ModelConfig {
            embed_dim: e,
            hops,
            tie_embeddings: false,
            ..ModelConfig::default()
        },
        vocab,
        &mut StdRng::seed_from_u64(seed),
    );
    let mut r = StdRng::seed_from_u64(seed ^ 0xABCD);
    use rand::Rng;
    let n_sent = r.gen_range(1..6);
    let sentences = (0..n_sent)
        .map(|_| {
            (0..r.gen_range(1..6))
                .map(|_| r.gen_range(0..vocab))
                .collect()
        })
        .collect();
    let question = (0..r.gen_range(1..4))
        .map(|_| r.gen_range(0..vocab))
        .collect();
    let sample = EncodedSample {
        sentences,
        question,
        answer: 0,
    };
    // A TrainedModel needs an encoder; build a dummy vocabulary of the right
    // size.
    let mut v = mann_babi::Vocab::new();
    for i in 0..vocab {
        v.intern(&format!("w{i}"));
    }
    // Vocab::new already holds <pad>; trim logic not needed as long as
    // params.vocab_size == vocab — assert to be safe.
    let model = TrainedModel {
        task: mann_babi::TaskId::SingleSupportingFact,
        params,
        encoder: mann_babi::Encoder::with_time_tokens(v, 0),
    };
    (model, sample)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The CONTROL decoder never panics on arbitrary word soup.
    #[test]
    fn decoder_is_total(words in proptest::collection::vec(any::<u32>(), 0..64)) {
        let _ = decode_stream(&words);
    }

    /// Encode → decode is the identity for any structurally valid sample.
    #[test]
    fn stream_round_trip(
        sents in proptest::collection::vec(proptest::collection::vec(0usize..5000, 1..8), 1..6),
        q in proptest::collection::vec(0usize..5000, 1..5),
    ) {
        let sample = EncodedSample { sentences: sents.clone(), question: q.clone(), answer: 0 };
        let words = encode_sample_stream(&sample);
        let (ds, dq) = decode_stream(&words).expect("well-formed");
        prop_assert_eq!(ds, sents);
        prop_assert_eq!(dq, q);
    }

    /// The fixed-point accelerator agrees with the f32 reference model on
    /// random (untrained) weights in the vast majority of cases, and its
    /// logits pipeline never panics.
    #[test]
    fn hw_sw_equivalence(seed in 0u64..500) {
        let (model, sample) = random_case(seed, 20, 8, 2);
        let accel = Accelerator::new(model.clone(), AccelConfig::default());
        let hw = accel.run(&sample);
        let sw = model.predict(&sample);
        // Random logits can tie closely; require the hw answer to be within
        // quantization slack of the sw winner.
        let trace = memn2n::forward(&model.params, &sample);
        let z_hw = trace.logits[hw.answer];
        let z_sw = trace.logits[sw];
        prop_assert!(z_sw - z_hw < 0.02, "hw {} ({z_hw}) vs sw {} ({z_sw})", hw.answer, z_sw);
    }

    /// More memory slots never make addressing cheaper; higher clock never
    /// makes compute slower.
    #[test]
    fn timing_monotonicity(seed in 0u64..100) {
        let (model, sample) = random_case(seed, 15, 8, 2);
        let mut bigger = sample.clone();
        bigger.sentences.push(vec![1, 2, 3]);
        let accel = Accelerator::new(model, AccelConfig::default());
        let small_run = accel.run(&sample);
        let big_run = accel.run(&bigger);
        prop_assert!(big_run.cycles >= small_run.cycles);
    }

    /// Tree width only affects timing, never the computed answer.
    #[test]
    fn tree_width_is_functionally_transparent(seed in 0u64..100, width in 1usize..32) {
        let (model, sample) = random_case(seed, 12, 8, 1);
        let base = Accelerator::new(model.clone(), AccelConfig::default()).run(&sample);
        let other = Accelerator::new(
            model,
            AccelConfig {
                datapath: DatapathConfig { tree_width: width, ..DatapathConfig::default() },
                ..AccelConfig::default()
            },
        )
        .run(&sample);
        prop_assert_eq!(base.answer, other.answer);
    }

    /// The exit guard is a pure veto on *flagged* exits: on numerically
    /// clean searches (small weights and hidden states, far from
    /// saturation) a guarded search is field-for-field identical to an
    /// unguarded one — for any thresholds and any guard band.
    #[test]
    fn guard_never_changes_clean_answers(
        weights in proptest::collection::vec(-1.0f32..1.0, 12),
        h in proptest::collection::vec(-10.0f32..10.0, 4),
        thetas in proptest::collection::vec(proptest::option::of(-5.0f32..5.0), 3),
        band in 0.0f32..2.0,
    ) {
        let mut w_o = Matrix::zeros(3, 4);
        for (i, w) in weights.iter().enumerate() {
            w_o[(i / 4, i % 4)] = *w;
        }
        let n = thetas.len();
        let ith = ThresholdingModel {
            thresholds: thetas.into_iter().map(|theta| ClassThreshold { theta }).collect(),
            order: (0..n).collect(),
            silhouettes: vec![0.0; n],
            rho: 1.0,
            kernel: Kernel::Epanechnikov,
        };
        let dp = DatapathConfig::default();
        let guarded = OutputModule::new(w_o.clone(), &dp)
            .with_thresholding(&ith, true)
            .with_guard(ExitGuard::with_band(band))
            .search(&h);
        let unguarded = OutputModule::new(w_o, &dp)
            .with_thresholding(&ith, true)
            .with_guard(ExitGuard::off())
            .search(&h);
        prop_assert!(guarded.numeric.is_clean());
        prop_assert_eq!(guarded, unguarded);
    }

    /// Compute seconds scale exactly inversely with frequency.
    #[test]
    fn clock_scaling_is_exact(seed in 0u64..50, mhz in 10.0f64..400.0) {
        let (model, sample) = random_case(seed, 12, 8, 2);
        let base = Accelerator::new(model.clone(), AccelConfig {
            clock: ClockDomain::mhz(100.0), ..AccelConfig::default()
        }).run(&sample);
        let other = Accelerator::new(model, AccelConfig {
            clock: ClockDomain::mhz(mhz), ..AccelConfig::default()
        }).run(&sample);
        prop_assert_eq!(base.cycles, other.cycles);
        let expect = base.compute_s * 100.0 / mhz;
        prop_assert!((other.compute_s - expect).abs() < 1e-9 * expect.max(1.0));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// A disabled pruner is byte-invisible: whatever threshold it carries,
    /// the run is field-for-field identical to the default config's.
    #[test]
    fn disabled_pruning_is_byte_identical(seed in 0u64..100, threshold in 0.05f32..1.0) {
        let (model, sample) = random_case(seed, 15, 8, 2);
        let base = Accelerator::new(model.clone(), AccelConfig::default()).run(&sample);
        let armed_off = Accelerator::new(
            model,
            AccelConfig {
                hop_prune: HopPrune { enabled: false, threshold },
                ..AccelConfig::default()
            },
        )
        .run(&sample);
        prop_assert_eq!(base, armed_off);
    }

    /// Loosening the prune threshold never executes more hops: the
    /// trajectories are identical until the first fire, and a criterion
    /// that fires at `tight` also fires at any looser threshold.
    #[test]
    fn prune_savings_are_monotone_in_threshold(
        seed in 0u64..100,
        lo in 0.05f32..0.9,
        delta in 0.01f32..0.1,
    ) {
        let (model, sample) = random_case(seed, 15, 8, 3);
        let run_at = |threshold: f32| {
            Accelerator::new(
                model.clone(),
                AccelConfig {
                    hop_prune: HopPrune::with_threshold(threshold),
                    ..AccelConfig::default()
                },
            )
            .run(&sample)
        };
        let loose = run_at(lo);
        let tight = run_at((lo + delta).min(1.0));
        prop_assert!(
            loose.hops_saved >= tight.hops_saved,
            "loose saved {} < tight saved {}",
            loose.hops_saved,
            tight.hops_saved
        );
    }

    /// A disabled candidate index is byte-invisible: whatever `k`, `nprobe`
    /// and `band` the config carries, an `enabled: false` run is
    /// field-for-field identical to the default config's.
    #[test]
    fn disabled_index_is_byte_identical(
        seed in 0u64..100,
        k in 1usize..32,
        probe_frac in 1usize..32,
        band in 0.0f32..4.0,
    ) {
        let (model, sample) = random_case(seed, 15, 8, 2);
        let base = Accelerator::new(model.clone(), AccelConfig::default()).run(&sample);
        let armed_off = Accelerator::new(
            model,
            AccelConfig {
                mem_index: MemIndexConfig {
                    enabled: false,
                    k,
                    nprobe: probe_frac.min(k),
                    band,
                },
                ..AccelConfig::default()
            },
        )
        .run(&sample);
        prop_assert_eq!(base, armed_off);
    }

    /// Widening the fallback band never skips more slots and never loses
    /// argmax agreement with the exact oracle: a hop that falls back at a
    /// narrow band also falls back at any wider one, and a fallback hop is
    /// bit-identical to the exact pass. Single-hop runs isolate the
    /// per-hop property (after a differing fallback decision, later hops
    /// of a multi-hop run see different keys and are incomparable).
    #[test]
    fn wider_band_is_monotone_in_scans_and_agreement(
        seed in 0u64..80,
        narrow in 0.0f32..2.0,
        delta in 0.0f32..8.0,
    ) {
        let (model, sample) = random_case(seed, 15, 8, 1);
        let exact = Accelerator::new(model.clone(), AccelConfig::default()).run(&sample);
        let run_at = |band: f32| {
            Accelerator::new(
                model.clone(),
                AccelConfig {
                    mem_index: MemIndexConfig::with_params(4, 2, band),
                    ..AccelConfig::default()
                },
            )
            .run(&sample)
        };
        let tight = run_at(narrow);
        let wide = run_at(narrow + delta);
        prop_assert!(
            wide.index.scanned_slots >= tight.index.scanned_slots,
            "wider band scanned {} < {}",
            wide.index.scanned_slots,
            tight.index.scanned_slots
        );
        prop_assert!(wide.index.skipped_slots <= tight.index.skipped_slots);
        prop_assert!(wide.index.fallbacks >= tight.index.fallbacks);
        // Agreement never decreases: if the tight run matched the oracle,
        // the wide run (same candidates, more fallbacks) must too.
        if tight.answer == exact.answer {
            prop_assert_eq!(wide.answer, exact.answer);
        }
    }

    /// The index counters partition the memory: every hop accounts each
    /// slot as scanned or skipped, exactly once.
    #[test]
    fn index_counters_partition_the_memory(
        seed in 0u64..100,
        k in 1usize..16,
        band in 0.0f32..2.0,
    ) {
        let (model, sample) = random_case(seed, 15, 8, 2);
        let run = Accelerator::new(
            model,
            AccelConfig {
                mem_index: MemIndexConfig::with_params(k, 1.max(k / 2), band),
                ..AccelConfig::default()
            },
        )
        .run(&sample);
        let slots = sample.sentences.len() as u64;
        prop_assert_eq!(
            run.index.scanned_slots + run.index.skipped_slots,
            slots * run.hops_executed as u64,
            "scanned {} + skipped {} != {} slots x {} hops",
            run.index.scanned_slots,
            run.index.skipped_slots,
            slots,
            run.hops_executed
        );
        prop_assert!(run.index.fallbacks <= run.hops_executed as u64);
        prop_assert!(run.index.build_cycles > 0);
    }

    /// Batched shared-story querying is bit-identical to querying one at a
    /// time, for any group size and any pruning threshold.
    #[test]
    fn batched_queries_are_bit_identical(seed in 0u64..60, threshold in 0.05f32..1.0) {
        let (model, sample) = random_case(seed, 15, 8, 2);
        // Same story, three different questions.
        let mut q2 = sample.clone();
        q2.question.rotate_left(1);
        q2.question.push(1);
        let mut q3 = sample.clone();
        q3.question = vec![2, 3];
        let accel = Accelerator::new(
            model,
            AccelConfig {
                hop_prune: HopPrune::with_threshold(threshold),
                ..AccelConfig::default()
            },
        );
        let story = accel.write_story(&sample);
        let batch = [&sample, &q2, &q3];
        let (runs, _) = accel.query_batch(&story, &batch);
        prop_assert_eq!(runs.len(), batch.len());
        for (run, s) in runs.iter().zip(batch) {
            prop_assert_eq!(run, &accel.answer_query(&story, s));
        }
    }
}
