//! Sigmoid / tanh unit built from the exp LUT and the divider.
//!
//! A gated controller needs `σ` and `tanh`; on the FPGA both reduce to the
//! units already on the die: `σ(x) = 1 / (1 + e^{-|x|})` for `x ≥ 0` (and
//! `e^{-|x|} / (1 + e^{-|x|})` for `x < 0`) — one exp-LUT lookup plus one
//! divide per element — and `tanh(x) = 2σ(2x) - 1`.

use mann_linalg::activation::ExpLut;
use mann_linalg::{Fixed, NumericStatus};

use crate::div_unit::DivUnit;
use crate::exp_unit::ExpUnit;
use crate::{Cycles, DatapathConfig};

/// The shared σ/tanh evaluation unit.
#[derive(Debug, Clone)]
pub struct SigmoidUnit {
    exp: ExpUnit,
    div: DivUnit,
}

impl SigmoidUnit {
    /// Builds the unit from the datapath configuration (shares the exp-LUT
    /// geometry and divider latency with the MEM module).
    pub fn new(dp: &DatapathConfig) -> Self {
        Self {
            exp: ExpUnit::new(ExpLut::new(dp.exp_lut_entries, -16.0), dp.exp_latency),
            div: DivUnit::new(dp.div_latency),
        }
    }

    /// Evaluates `σ(x)` for a batch, returning fixed-point results and the
    /// occupancy: `n + exp_latency` (pipelined lookups) plus `n` sequential
    /// divides.
    pub fn sigmoid_batch(&self, xs: &[f32]) -> (Vec<Fixed>, Cycles) {
        self.sigmoid_batch_tracked(xs, &mut NumericStatus::default())
    }

    /// [`SigmoidUnit::sigmoid_batch`] with numeric-event accounting across
    /// the exp lookup, the `1 + e` adder and the divider. Results are
    /// bit-identical to the untracked batch.
    pub fn sigmoid_batch_tracked(
        &self,
        xs: &[f32],
        st: &mut NumericStatus,
    ) -> (Vec<Fixed>, Cycles) {
        if xs.is_empty() {
            return (Vec::new(), Cycles::ZERO);
        }
        let negabs: Vec<f32> = xs.iter().map(|&x| -x.abs()).collect();
        let (exps, exp_cycles) = self.exp.eval_batch_tracked(&negabs, st);
        let mut out = Vec::with_capacity(xs.len());
        let mut div_cycles = Cycles::ZERO;
        for (&x, e) in xs.iter().zip(exps) {
            let denom = Fixed::ONE.add_tracked(e, st);
            let (q, c) =
                self.div
                    .div_batch_tracked(&[if x >= 0.0 { Fixed::ONE } else { e }], denom, st);
            out.push(q[0]);
            div_cycles += c;
        }
        (out, exp_cycles + div_cycles)
    }

    /// Evaluates `tanh(x)` via `2σ(2x) - 1`.
    pub fn tanh_batch(&self, xs: &[f32]) -> (Vec<Fixed>, Cycles) {
        self.tanh_batch_tracked(xs, &mut NumericStatus::default())
    }

    /// [`SigmoidUnit::tanh_batch`] with numeric-event accounting.
    pub fn tanh_batch_tracked(&self, xs: &[f32], st: &mut NumericStatus) -> (Vec<Fixed>, Cycles) {
        let doubled: Vec<f32> = xs.iter().map(|&x| 2.0 * x).collect();
        let (sig, cycles) = self.sigmoid_batch_tracked(&doubled, st);
        let two = Fixed::from_f32(2.0);
        let out = sig
            .into_iter()
            .map(|s| two.mul_tracked(s, st).sub_tracked(Fixed::ONE, st))
            .collect();
        (out, cycles + Cycles::new(1))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mann_linalg::activation::sigmoid;

    fn unit() -> SigmoidUnit {
        SigmoidUnit::new(&DatapathConfig::default())
    }

    #[test]
    fn sigmoid_matches_reference() {
        let u = unit();
        let xs = [-4.0f32, -1.0, -0.25, 0.0, 0.25, 1.0, 4.0];
        let (out, _) = u.sigmoid_batch(&xs);
        for (o, &x) in out.iter().zip(&xs) {
            let expect = sigmoid(x);
            assert!(
                (o.to_f32() - expect).abs() < 5e-3,
                "sigma({x}) = {} vs {expect}",
                o.to_f32()
            );
        }
    }

    #[test]
    fn tanh_matches_reference() {
        let u = unit();
        let xs = [-3.0f32, -0.5, 0.0, 0.5, 3.0];
        let (out, _) = u.tanh_batch(&xs);
        for (o, &x) in out.iter().zip(&xs) {
            assert!(
                (o.to_f32() - x.tanh()).abs() < 1e-2,
                "tanh({x}) = {} vs {}",
                o.to_f32(),
                x.tanh()
            );
        }
    }

    #[test]
    fn occupancy_includes_sequential_divides() {
        let u = unit();
        let (_, c) = u.sigmoid_batch(&[0.5; 8]);
        let dp = DatapathConfig::default();
        assert!(c.get() >= 8 * dp.div_latency);
        let (_, empty) = u.sigmoid_batch(&[]);
        assert_eq!(empty, Cycles::ZERO);
    }

    #[test]
    fn outputs_stay_in_valid_ranges() {
        let u = unit();
        let xs: Vec<f32> = (-40..=40).map(|i| i as f32 * 0.25).collect();
        let (sig, _) = u.sigmoid_batch(&xs);
        assert!(sig.iter().all(|s| (0.0..=1.0).contains(&s.to_f32())));
        let (th, _) = u.tanh_batch(&xs);
        assert!(th.iter().all(|t| (-1.01..=1.01).contains(&t.to_f32())));
    }
}
