//! Content-addressed story residency: digests, the LRU residency model,
//! and the bounded [`StoryCache`] of populated memories.
//!
//! The paper's MEM module writes a story into address/content memory once
//! and then answers queries against it (Fig 1). A served trace with many
//! questions over the same story — the bAbI access pattern — therefore
//! re-pays the INPUT & WRITE phase and the PCIe story upload for work the
//! on-chip memories already hold. `StoryCache` models keeping the last `K`
//! written stories resident per accelerator instance: a hit skips the
//! write-phase cycles and ships only the question over the link.
//!
//! Capacity models on-chip memory: one resident story occupies `2 * L * E`
//! fixed-point words of BRAM (address + content rows), so a bounded LRU of
//! whole stories is exactly what a double-buffered BRAM allocator would
//! hold. Eviction is least-recently-used, matching a hardware replacement
//! register file.

use mann_babi::EncodedSample;
use serde::{Deserialize, Serialize};

use crate::accel::ResidentStory;

/// Default resident-story capacity per instance (see `MANN_STORY_CACHE`).
pub const DEFAULT_STORY_CACHE: usize = 16;

/// An unusable `MANN_STORY_CACHE` value: set, but not a non-negative
/// integer story count (`0` disables caching).
#[derive(Debug, Clone, PartialEq, Eq, thiserror::Error)]
#[error("invalid MANN_STORY_CACHE value {value:?}: expected a non-negative integer story count (0 disables caching)")]
pub struct StoryCacheEnvError {
    /// The rejected input.
    pub value: String,
}

/// FNV-1a digest of a sample's *story* (sentence shapes and word indices;
/// the question is deliberately excluded). Two samples with the same story
/// but different questions collide on purpose — that is the reuse the
/// cache exploits.
pub fn story_digest(sample: &EncodedSample) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    let mut absorb = |v: u64| {
        for byte in v.to_le_bytes() {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
    };
    absorb(sample.sentences.len() as u64);
    for sent in &sample.sentences {
        absorb(sent.len() as u64);
        for &w in sent {
            absorb(w as u64);
        }
    }
    hash
}

/// Hit/miss/eviction counters of one cache (or one instance's residency
/// model).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheStats {
    /// Lookups that found the story resident.
    pub hits: u64,
    /// Lookups that had to write the story.
    pub misses: u64,
    /// Resident stories displaced to make room.
    pub evictions: u64,
}

impl CacheStats {
    /// `hits / (hits + misses)`, zero when nothing was looked up.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

impl std::ops::AddAssign for CacheStats {
    fn add_assign(&mut self, rhs: CacheStats) {
        self.hits += rhs.hits;
        self.misses += rhs.misses;
        self.evictions += rhs.evictions;
    }
}

/// Outcome of admitting a key into an LRU set.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Admission {
    /// Whether the key was already resident (and clean).
    pub hit: bool,
    /// The key evicted to make room, if any.
    pub evicted: Option<u64>,
    /// Whether the key was resident but poisoned by an SEU: the digest
    /// check caught the corruption, so the admit counts as a miss (the
    /// story must be re-uploaded and re-written) and the entry comes back
    /// clean.
    pub scrubbed: bool,
}

/// A bounded LRU set of story keys — the digest-only residency model the
/// serving layer keeps per instance (the payloads live in the precomputed
/// [`ResidentStory`] table, so instances only track *which* stories they
/// hold).
///
/// Keys are ordered least- to most-recently used in a `Vec`; capacities are
/// small (on-chip memory holds a handful of stories), so the `O(capacity)`
/// scan is cheaper than hashing and the iteration order is deterministic.
#[derive(Debug, Clone, Default)]
pub struct LruSet {
    capacity: usize,
    keys: Vec<u64>,
    // Resident keys whose BRAM image took a runtime SEU: still occupying a
    // slot, but the next admit detects the bad digest and scrubs.
    poisoned: Vec<u64>,
    stats: CacheStats,
}

impl LruSet {
    /// An empty set holding at most `capacity` keys (0 disables residency:
    /// every admit misses and nothing is retained).
    pub fn new(capacity: usize) -> Self {
        Self {
            capacity,
            keys: Vec::with_capacity(capacity),
            poisoned: Vec::new(),
            stats: CacheStats::default(),
        }
    }

    /// Maximum resident keys.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Currently resident keys.
    pub fn len(&self) -> usize {
        self.keys.len()
    }

    /// Whether no keys are resident.
    pub fn is_empty(&self) -> bool {
        self.keys.is_empty()
    }

    /// Whether `key` is resident (does not touch recency or stats).
    pub fn contains(&self, key: u64) -> bool {
        self.keys.contains(&key)
    }

    /// Accumulated hit/miss/eviction counters.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Resident keys in least- to most-recently-used order.
    pub fn keys(&self) -> &[u64] {
        &self.keys
    }

    /// Marks a resident key as SEU-poisoned: it keeps its slot, but the
    /// next admit of that key detects the digest mismatch and scrubs
    /// instead of hitting. Returns whether the key was resident (a flip in
    /// an unoccupied BRAM row is harmless). Idempotent.
    pub fn poison(&mut self, key: u64) -> bool {
        if !self.keys.contains(&key) {
            return false;
        }
        if !self.poisoned.contains(&key) {
            self.poisoned.push(key);
        }
        true
    }

    /// Whether `key` is resident but carrying an undetected SEU.
    pub fn is_poisoned(&self, key: u64) -> bool {
        self.poisoned.contains(&key)
    }

    /// Drops every resident key (and any pending poison marks) while
    /// keeping the counters — the failover invalidation: a recovering
    /// instance's BRAM contents cannot be trusted after a crash.
    pub fn clear_resident(&mut self) {
        self.keys.clear();
        self.poisoned.clear();
    }

    /// Admits `key`: a clean resident key is refreshed to
    /// most-recently-used, a new key is inserted, evicting the LRU key when
    /// full. A poisoned resident key is scrubbed: the admit counts as a
    /// miss (the caller re-pays the upload and write phase), the entry is
    /// refreshed and comes back clean.
    pub fn admit(&mut self, key: u64) -> Admission {
        if let Some(pos) = self.keys.iter().position(|&k| k == key) {
            self.keys.remove(pos);
            self.keys.push(key);
            if let Some(p) = self.poisoned.iter().position(|&k| k == key) {
                self.poisoned.remove(p);
                self.stats.misses += 1;
                return Admission {
                    hit: false,
                    evicted: None,
                    scrubbed: true,
                };
            }
            self.stats.hits += 1;
            return Admission {
                hit: true,
                evicted: None,
                scrubbed: false,
            };
        }
        self.stats.misses += 1;
        if self.capacity == 0 {
            return Admission {
                hit: false,
                evicted: None,
                scrubbed: false,
            };
        }
        let evicted = if self.keys.len() == self.capacity {
            self.stats.evictions += 1;
            let gone = self.keys.remove(0);
            self.poisoned.retain(|&k| k != gone);
            Some(gone)
        } else {
            None
        };
        self.keys.push(key);
        Admission {
            hit: false,
            evicted,
            scrubbed: false,
        }
    }
}

/// A bounded LRU of populated [`ResidentStory`] payloads, keyed by
/// [`story_digest`] — what one standalone accelerator instance holds in
/// its on-chip memories.
#[derive(Debug, Clone, Default)]
pub struct StoryCache {
    capacity: usize,
    // LRU order: index 0 is least recently used.
    entries: Vec<ResidentStory>,
    stats: CacheStats,
}

impl StoryCache {
    /// An empty cache holding at most `capacity` stories (0 disables
    /// caching).
    pub fn new(capacity: usize) -> Self {
        Self {
            capacity,
            entries: Vec::with_capacity(capacity),
            stats: CacheStats::default(),
        }
    }

    /// Capacity override from the `MANN_STORY_CACHE` environment variable:
    /// `Ok(None)` when unset, `Ok(Some(n))` when set to a story count.
    /// An unparseable value is an error, not a silent fallback —
    /// `MANN_STORY_CACHE=sixteen` should fail loudly rather than quietly
    /// serve with the default capacity.
    ///
    /// # Errors
    ///
    /// Returns [`StoryCacheEnvError`] when the variable is set but not a
    /// non-negative integer.
    pub fn capacity_from_env() -> Result<Option<usize>, StoryCacheEnvError> {
        match std::env::var("MANN_STORY_CACHE") {
            Err(_) => Ok(None),
            Ok(v) => match v.parse() {
                Ok(n) => Ok(Some(n)),
                Err(_) => Err(StoryCacheEnvError { value: v }),
            },
        }
    }

    /// Capacity from the `MANN_STORY_CACHE` environment variable, falling
    /// back to [`DEFAULT_STORY_CACHE`] when unset.
    ///
    /// # Errors
    ///
    /// Returns [`StoryCacheEnvError`] when the variable is set but
    /// unparseable.
    pub fn from_env() -> Result<Self, StoryCacheEnvError> {
        Ok(Self::new(
            Self::capacity_from_env()?.unwrap_or(DEFAULT_STORY_CACHE),
        ))
    }

    /// Maximum resident stories.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Currently resident stories.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether no stories are resident.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Accumulated hit/miss/eviction counters.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Whether `digest` is resident (does not touch recency or stats).
    pub fn contains(&self, digest: u64) -> bool {
        self.entries.iter().any(|e| e.digest() == digest)
    }

    /// Drops every resident story; counters are kept.
    pub fn clear(&mut self) {
        self.entries.clear();
    }

    /// Looks up `digest`, refreshing it to most-recently-used on a hit.
    /// Counts a hit or a miss.
    pub fn lookup(&mut self, digest: u64) -> Option<&ResidentStory> {
        match self.entries.iter().position(|e| e.digest() == digest) {
            Some(pos) => {
                self.stats.hits += 1;
                let entry = self.entries.remove(pos);
                self.entries.push(entry);
                Some(self.entries.last().expect("just pushed"))
            }
            None => {
                self.stats.misses += 1;
                None
            }
        }
    }

    /// Inserts `story` as most-recently-used, evicting the LRU story when
    /// full. A story already resident under the same digest is replaced
    /// without counting an eviction. No-op at capacity 0.
    pub fn insert(&mut self, story: ResidentStory) {
        if self.capacity == 0 {
            return;
        }
        if let Some(pos) = self
            .entries
            .iter()
            .position(|e| e.digest() == story.digest())
        {
            self.entries.remove(pos);
        } else if self.entries.len() == self.capacity {
            self.stats.evictions += 1;
            self.entries.remove(0);
        }
        self.entries.push(story);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(sentences: Vec<Vec<usize>>, question: Vec<usize>) -> EncodedSample {
        EncodedSample {
            sentences,
            question,
            answer: 0,
        }
    }

    #[test]
    fn digest_ignores_question_but_not_story() {
        let a = sample(vec![vec![1, 2], vec![3]], vec![9]);
        let b = sample(vec![vec![1, 2], vec![3]], vec![7, 8]);
        let c = sample(vec![vec![1, 2], vec![4]], vec![9]);
        assert_eq!(story_digest(&a), story_digest(&b));
        assert_ne!(story_digest(&a), story_digest(&c));
    }

    #[test]
    fn digest_distinguishes_sentence_boundaries() {
        // Same word sequence, different sentence split.
        let a = sample(vec![vec![1, 2, 3]], vec![0]);
        let b = sample(vec![vec![1, 2], vec![3]], vec![0]);
        let c = sample(vec![vec![1], vec![2, 3]], vec![0]);
        assert_ne!(story_digest(&a), story_digest(&b));
        assert_ne!(story_digest(&b), story_digest(&c));
    }

    #[test]
    fn lru_set_admits_hits_and_evicts_in_lru_order() {
        let mut s = LruSet::new(2);
        assert!(!s.admit(1).hit);
        assert!(!s.admit(2).hit);
        assert!(s.admit(1).hit); // refresh 1 → LRU is now 2
        let a = s.admit(3);
        assert!(!a.hit);
        assert_eq!(a.evicted, Some(2));
        assert!(s.contains(1) && s.contains(3) && !s.contains(2));
        let st = s.stats();
        assert_eq!((st.hits, st.misses, st.evictions), (1, 3, 1));
    }

    #[test]
    fn zero_capacity_lru_never_retains() {
        let mut s = LruSet::new(0);
        for _ in 0..3 {
            let a = s.admit(7);
            assert!(!a.hit);
            assert_eq!(a.evicted, None);
        }
        assert!(s.is_empty());
        assert_eq!(s.stats().misses, 3);
        assert_eq!(s.stats().evictions, 0);
    }

    #[test]
    fn poisoned_key_scrubs_once_then_hits_clean() {
        let mut s = LruSet::new(2);
        s.admit(1);
        s.admit(2);
        assert!(s.poison(1));
        assert!(s.is_poisoned(1));
        assert!(!s.poison(99), "non-resident keys cannot be poisoned");
        let a = s.admit(1);
        assert!(a.scrubbed && !a.hit, "scrub counts as a miss");
        assert!(!s.is_poisoned(1));
        let b = s.admit(1);
        assert!(b.hit && !b.scrubbed, "scrubbed entry is clean again");
        let st = s.stats();
        assert_eq!((st.hits, st.misses), (1, 3));
    }

    #[test]
    fn eviction_and_clear_drop_poison_marks() {
        let mut s = LruSet::new(1);
        s.admit(5);
        s.poison(5);
        s.admit(6); // evicts 5
        s.admit(5); // 5 re-enters clean (the flip died with the old image)
        assert!(!s.is_poisoned(5));
        s.poison(5);
        let stats_before = s.stats();
        s.clear_resident();
        assert!(s.is_empty());
        assert!(!s.is_poisoned(5));
        assert_eq!(s.stats(), stats_before, "clear keeps the counters");
        assert!(!s.admit(5).scrubbed);
    }

    #[test]
    fn keys_expose_lru_order() {
        let mut s = LruSet::new(3);
        s.admit(1);
        s.admit(2);
        s.admit(1);
        assert_eq!(s.keys(), &[2, 1]);
    }

    #[test]
    fn hit_rate_is_well_defined() {
        assert_eq!(CacheStats::default().hit_rate(), 0.0);
        let s = CacheStats {
            hits: 3,
            misses: 1,
            evictions: 0,
        };
        assert!((s.hit_rate() - 0.75).abs() < 1e-12);
    }
}
