//! VCD-lite signal tracing.
//!
//! A minimal value-change-dump writer so accelerator runs can be inspected
//! in a waveform viewer (GTKWave reads the output). The accelerator records
//! phase-level signals (module busy flags, attention argmax, output
//! comparisons); tests and the `hw_trace` example exercise the writer.

use std::fmt::Write as _;

/// Handle to a declared signal.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SignalId(usize);

/// An in-memory VCD recording.
#[derive(Debug, Clone, Default)]
pub struct SignalTrace {
    signals: Vec<(String, u32)>,
    events: Vec<(u64, usize, u64)>,
}

impl SignalTrace {
    /// Creates an empty trace.
    pub fn new() -> Self {
        Self::default()
    }

    /// Declares a signal of `width` bits.
    ///
    /// # Panics
    ///
    /// Panics if `width` is 0 or over 64.
    pub fn add_signal(&mut self, name: &str, width: u32) -> SignalId {
        assert!((1..=64).contains(&width), "width {width} outside 1..=64");
        self.signals.push((name.to_owned(), width));
        SignalId(self.signals.len() - 1)
    }

    /// Records `value` on `signal` at `cycle`.
    ///
    /// # Panics
    ///
    /// Panics if the signal was not declared by this trace.
    pub fn record(&mut self, signal: SignalId, cycle: u64, value: u64) {
        assert!(signal.0 < self.signals.len(), "undeclared signal");
        self.events.push((cycle, signal.0, value));
    }

    /// Number of recorded events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether no events were recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Serializes the recording as a VCD document (1 ns per cycle).
    pub fn to_vcd(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "$timescale 1ns $end");
        let _ = writeln!(out, "$scope module accelerator $end");
        for (i, (name, width)) in self.signals.iter().enumerate() {
            let _ = writeln!(out, "$var wire {width} {} {name} $end", ident(i));
        }
        let _ = writeln!(out, "$upscope $end");
        let _ = writeln!(out, "$enddefinitions $end");
        let mut events = self.events.clone();
        events.sort_by_key(|(cycle, sig, _)| (*cycle, *sig));
        let mut last_cycle = None;
        for (cycle, sig, value) in events {
            if last_cycle != Some(cycle) {
                let _ = writeln!(out, "#{cycle}");
                last_cycle = Some(cycle);
            }
            let width = self.signals[sig].1;
            if width == 1 {
                let _ = writeln!(out, "{}{}", value & 1, ident(sig));
            } else {
                let _ = writeln!(out, "b{value:b} {}", ident(sig));
            }
        }
        out
    }
}

/// VCD identifier characters for signal `i` (printable ASCII, base 94).
fn ident(mut i: usize) -> String {
    let mut s = String::new();
    loop {
        s.push((33 + (i % 94)) as u8 as char);
        i /= 94;
        if i == 0 {
            break;
        }
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vcd_contains_declarations_and_events() {
        let mut t = SignalTrace::new();
        let busy = t.add_signal("mem_busy", 1);
        let cmp = t.add_signal("output_comparisons", 16);
        t.record(busy, 0, 1);
        t.record(busy, 10, 0);
        t.record(cmp, 10, 42);
        let vcd = t.to_vcd();
        assert!(vcd.contains("$var wire 1"));
        assert!(vcd.contains("mem_busy"));
        assert!(vcd.contains("#0"));
        assert!(vcd.contains("#10"));
        assert!(vcd.contains("b101010"));
    }

    #[test]
    fn events_are_emitted_in_cycle_order() {
        let mut t = SignalTrace::new();
        let s = t.add_signal("x", 1);
        t.record(s, 20, 1);
        t.record(s, 5, 0);
        let vcd = t.to_vcd();
        let p5 = vcd.find("#5").expect("#5 present");
        let p20 = vcd.find("#20").expect("#20 present");
        assert!(p5 < p20);
    }

    #[test]
    fn ident_is_unique_for_many_signals() {
        let ids: Vec<String> = (0..200).map(ident).collect();
        let mut dedup = ids.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(dedup.len(), ids.len());
    }

    #[test]
    #[should_panic(expected = "undeclared")]
    fn recording_foreign_signal_panics() {
        let mut a = SignalTrace::new();
        let mut b = SignalTrace::new();
        let sig = b.add_signal("other", 1);
        let _ = b;
        a.record(sig, 0, 1);
    }
}
