//! FPGA power and energy model.
//!
//! Table I's measured board power grows sub-linearly with clock frequency
//! (14.71 W @ 25 MHz → 20.10 W @ 100 MHz) because at higher clocks the
//! fabric idles longer waiting on the host interface. The model splits power
//! into
//!
//! * static leakage + board overhead (fans, regulators, DDR refresh),
//! * clock-tree switching proportional to frequency,
//! * datapath activity proportional to frequency × busy fraction,
//! * a small adder for the inference-thresholding compare/threshold logic,
//!   which toggles every output cycle when enabled (the measured ITH
//!   configurations draw slightly more power while finishing sooner).

use serde::{Deserialize, Serialize};

/// Decomposed FPGA power model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PowerModel {
    /// Static + board power, watts.
    pub static_w: f64,
    /// Clock-tree power per MHz, watts.
    pub clock_w_per_mhz: f64,
    /// Datapath power per MHz at 100 % busy, watts.
    pub active_w_per_mhz: f64,
    /// Extra power of the thresholding comparators when enabled, watts.
    pub ith_overhead_w: f64,
}

impl Default for PowerModel {
    /// Calibrated against Table I (see `platform::calibration` for the
    /// derivation).
    fn default() -> Self {
        Self {
            static_w: 12.2,
            clock_w_per_mhz: 0.05,
            active_w_per_mhz: 0.055,
            ith_overhead_w: 1.5,
        }
    }
}

impl PowerModel {
    /// Average board power at `freq_mhz` with the fabric busy for
    /// `busy_fraction` of wall-clock time.
    ///
    /// # Panics
    ///
    /// Panics if `busy_fraction` is outside `[0, 1]` or `freq_mhz` is not
    /// positive.
    pub fn power_w(&self, freq_mhz: f64, busy_fraction: f64, ith_enabled: bool) -> f64 {
        assert!(freq_mhz > 0.0, "frequency must be positive");
        assert!(
            (0.0..=1.0).contains(&busy_fraction),
            "busy fraction {busy_fraction} outside [0, 1]"
        );
        self.static_w
            + self.clock_w_per_mhz * freq_mhz
            + self.active_w_per_mhz * freq_mhz * busy_fraction
            + if ith_enabled {
                self.ith_overhead_w
            } else {
                0.0
            }
    }

    /// Energy in joules for a run of `seconds` at the given operating point.
    pub fn energy_j(
        &self,
        freq_mhz: f64,
        busy_fraction: f64,
        ith_enabled: bool,
        seconds: f64,
    ) -> f64 {
        self.power_w(freq_mhz, busy_fraction, ith_enabled) * seconds
    }

    /// Energy in joules of a served interval: the board is powered for
    /// `wall_s` wall-clock seconds of which the fabric computes for
    /// `busy_s`. This is the serving layer's per-instance accounting — the
    /// busy fraction comes from the instance's measured occupancy rather
    /// than a single inference's compute/interface split. A zero-length
    /// interval costs nothing.
    pub fn interval_energy_j(
        &self,
        freq_mhz: f64,
        busy_s: f64,
        wall_s: f64,
        ith_enabled: bool,
    ) -> f64 {
        if wall_s <= 0.0 {
            return 0.0;
        }
        let busy_fraction = (busy_s / wall_s).clamp(0.0, 1.0);
        self.energy_j(freq_mhz, busy_fraction, ith_enabled, wall_s)
    }

    /// Activity-dependent energy alone for `busy_s` seconds of fabric work
    /// at `freq_mhz` — the marginal joules a unit of compute adds (or, for
    /// a cache hit, the write-phase energy *not* spent). Static and clock
    /// power are excluded: the board draws those whether or not the write
    /// phase runs. Negative durations cost nothing.
    pub fn active_energy_j(&self, freq_mhz: f64, busy_s: f64) -> f64 {
        self.active_w_per_mhz * freq_mhz * busy_s.max(0.0)
    }

    /// Energy attributed to link-level recovery: for `retry_s` seconds the
    /// board replays a corrupted PCIe transfer, so the fabric sits idle
    /// while static and clock-tree power keep burning. This is the joule
    /// cost the fault report charges to retransmissions (datapath activity
    /// is excluded — the DMA engine, not the fabric, is working). Negative
    /// durations cost nothing.
    ///
    /// # Panics
    ///
    /// Panics if `freq_mhz` is not positive.
    pub fn retry_energy_j(&self, freq_mhz: f64, retry_s: f64) -> f64 {
        assert!(freq_mhz > 0.0, "frequency must be positive");
        (self.static_w + self.clock_w_per_mhz * freq_mhz) * retry_s.max(0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn power_grows_with_frequency() {
        let m = PowerModel::default();
        let p25 = m.power_w(25.0, 0.4, false);
        let p100 = m.power_w(100.0, 0.15, false);
        assert!(p100 > p25);
    }

    #[test]
    fn calibration_is_in_table1_ballpark() {
        let m = PowerModel::default();
        // Busy fractions approximate the compute/interface split of Table I.
        let p25 = m.power_w(25.0, 0.40, false);
        let p100 = m.power_w(100.0, 0.15, false);
        assert!((13.0..17.0).contains(&p25), "25 MHz power {p25}");
        assert!((18.0..22.0).contains(&p100), "100 MHz power {p100}");
    }

    #[test]
    fn ith_adds_constant_overhead() {
        let m = PowerModel::default();
        let base = m.power_w(50.0, 0.3, false);
        let with = m.power_w(50.0, 0.3, true);
        assert!((with - base - m.ith_overhead_w).abs() < 1e-9);
    }

    #[test]
    fn energy_is_power_times_time() {
        let m = PowerModel::default();
        let e = m.energy_j(50.0, 0.5, false, 2.0);
        assert!((e - 2.0 * m.power_w(50.0, 0.5, false)).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "busy fraction")]
    fn invalid_busy_fraction_rejected() {
        let _ = PowerModel::default().power_w(25.0, 1.5, false);
    }

    #[test]
    fn interval_energy_matches_busy_fraction_form() {
        let m = PowerModel::default();
        let e = m.interval_energy_j(100.0, 1.0, 4.0, false);
        assert!((e - m.energy_j(100.0, 0.25, false, 4.0)).abs() < 1e-12);
        // Degenerate wall clocks cost nothing; over-busy clamps.
        assert_eq!(m.interval_energy_j(100.0, 1.0, 0.0, false), 0.0);
        let clamped = m.interval_energy_j(100.0, 9.0, 4.0, true);
        assert!((clamped - m.energy_j(100.0, 1.0, true, 4.0)).abs() < 1e-12);
    }

    #[test]
    fn retry_energy_is_idle_board_power_times_time() {
        let m = PowerModel::default();
        // Retry energy = full-interval energy with the fabric idle.
        let e = m.retry_energy_j(100.0, 2.0);
        assert!((e - m.energy_j(100.0, 0.0, false, 2.0)).abs() < 1e-12);
        assert_eq!(m.retry_energy_j(100.0, -1.0), 0.0);
        assert_eq!(m.retry_energy_j(100.0, 0.0), 0.0);
    }

    #[test]
    fn active_energy_is_the_marginal_term() {
        let m = PowerModel::default();
        // Marginal energy = full-interval energy delta between busy and idle
        // fabric over the same wall clock.
        let wall = 2.0;
        let delta = m.energy_j(100.0, 1.0, false, wall) - m.energy_j(100.0, 0.0, false, wall);
        assert!((m.active_energy_j(100.0, wall) - delta).abs() < 1e-12);
        assert_eq!(m.active_energy_j(100.0, -1.0), 0.0);
        assert_eq!(m.active_energy_j(100.0, 0.0), 0.0);
    }
}
