//! Host ↔ FPGA interface model.
//!
//! The paper observes that above ~50 MHz the host-FPGA interface dominates
//! inference time ("the improvement was not linear"). The model here is the
//! standard two-term DMA cost: a fixed per-transfer software/driver latency
//! plus bandwidth-limited streaming. Interface time is independent of the
//! fabric clock, which is exactly what flattens the frequency scaling.

use serde::{Deserialize, Serialize};

use crate::clock::SimTime;

/// PCIe link + driver-stack cost model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PcieLink {
    /// Effective streaming bandwidth in bytes/second (well below the wire
    /// rate: a Gen3 x8 link delivers ~1.5 GB/s to a single-channel DMA
    /// engine through a vendor driver).
    pub bandwidth_bytes_per_s: f64,
    /// Fixed software + DMA-setup latency per transfer, seconds.
    pub latency_per_transfer_s: f64,
}

impl Default for PcieLink {
    /// Calibrated so a QA inference (two small transfers) costs ~130 µs of
    /// interface time, reproducing Table I's sub-linear frequency scaling.
    fn default() -> Self {
        Self {
            bandwidth_bytes_per_s: 1.5e9,
            latency_per_transfer_s: 65e-6,
        }
    }
}

impl PcieLink {
    /// Payload bytes of one QA input stream: story + question words at
    /// 4 bytes each, plus 8 control words framing the stream.
    pub fn input_bytes(input_words: usize) -> u64 {
        (input_words as u64 + 8) * 4
    }

    /// Payload bytes of one answer read-back (answer index + status word).
    pub fn answer_bytes() -> u64 {
        8
    }

    /// Time for one transfer of `bytes` payload.
    pub fn transfer_time_s(&self, bytes: u64) -> f64 {
        self.latency_per_transfer_s + bytes as f64 / self.bandwidth_bytes_per_s
    }

    /// Time for one transfer that batches `transfers` logical payloads of
    /// `bytes` total: the DMA ring is set up once, so the fixed latency is
    /// paid once rather than per payload. `transfers == 0` costs nothing.
    pub fn batched_transfer_time_s(&self, bytes: u64, transfers: usize) -> f64 {
        if transfers == 0 {
            0.0
        } else {
            self.transfer_time_s(bytes)
        }
    }

    /// Upload time of one QA input stream of `input_words` words.
    pub fn input_transfer_time_s(&self, input_words: usize) -> f64 {
        self.transfer_time_s(Self::input_bytes(input_words))
    }

    /// Read-back time of one answer.
    pub fn answer_transfer_time_s(&self) -> f64 {
        self.transfer_time_s(Self::answer_bytes())
    }

    /// Interface time of one QA inference: the input stream upload plus the
    /// answer read-back.
    pub fn inference_time_s(&self, input_words: usize) -> f64 {
        self.input_transfer_time_s(input_words) + self.answer_transfer_time_s()
    }

    /// One-time cost of shipping the trained model (`bytes` of weights).
    pub fn model_upload_time_s(&self, bytes: u64) -> f64 {
        self.transfer_time_s(bytes)
    }
}

/// A grant issued by the [`LinkArbiter`]: job `id` owns the link for
/// `[start, end)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct LinkGrant {
    /// Caller-chosen job identifier.
    pub id: u64,
    /// Payload bytes of the job.
    pub bytes: u64,
    /// Simulated time the transfer starts.
    pub start: SimTime,
    /// Simulated time the transfer completes.
    pub end: SimTime,
}

/// FIFO arbitration of one shared PCIe link among many accelerator
/// instances.
///
/// Replicated instances share the single host interface, so their uploads
/// and answer read-backs contend for it. The arbiter is a strict FIFO —
/// jobs are granted in submission order, one at a time, never dropped and
/// never reordered (the property suite in `tests/link_proptests.rs` pins
/// this) — which keeps the serving schedule deterministic.
///
/// Protocol: [`submit`](LinkArbiter::submit) enqueues a job;
/// [`try_grant`](LinkArbiter::try_grant) starts the head job if the link is
/// idle, returning its grant window; [`complete`](LinkArbiter::complete)
/// retires the in-flight job (normally at the grant's `end` event).
#[derive(Debug, Clone)]
pub struct LinkArbiter {
    link: PcieLink,
    pending: std::collections::VecDeque<(u64, u64, usize)>,
    in_flight: Option<(u64, u64, usize)>,
    free_at: SimTime,
    busy: SimTime,
    grants: u64,
    bytes_moved: u64,
    retransmits: u64,
    retry_busy: SimTime,
}

impl LinkArbiter {
    /// An idle arbiter over `link`.
    pub fn new(link: PcieLink) -> Self {
        Self {
            link,
            pending: std::collections::VecDeque::new(),
            in_flight: None,
            free_at: SimTime::ZERO,
            busy: SimTime::ZERO,
            grants: 0,
            bytes_moved: 0,
            retransmits: 0,
            retry_busy: SimTime::ZERO,
        }
    }

    /// The arbitrated link model.
    pub fn link(&self) -> &PcieLink {
        &self.link
    }

    /// Enqueues a job of `bytes` payload comprising `transfers` batched
    /// logical payloads (1 for a plain transfer).
    pub fn submit(&mut self, id: u64, bytes: u64, transfers: usize) {
        self.pending.push_back((id, bytes, transfers.max(1)));
    }

    /// Jobs submitted but not yet granted.
    pub fn pending_len(&self) -> usize {
        self.pending.len()
    }

    /// Whether a granted job has not yet been completed.
    pub fn is_busy(&self) -> bool {
        self.in_flight.is_some()
    }

    /// Grants the head job if the link is idle and work is pending. The
    /// transfer starts at `max(now, previous grant end)`.
    pub fn try_grant(&mut self, now: SimTime) -> Option<LinkGrant> {
        if self.in_flight.is_some() {
            return None;
        }
        let (id, bytes, transfers) = self.pending.pop_front()?;
        let start = now.max(self.free_at);
        let duration = SimTime::from_s(self.link.batched_transfer_time_s(bytes, transfers));
        let end = start + duration;
        self.in_flight = Some((id, bytes, transfers));
        self.free_at = end;
        self.busy += duration;
        self.grants += 1;
        self.bytes_moved += bytes;
        Some(LinkGrant {
            id,
            bytes,
            start,
            end,
        })
    }

    /// Re-grants the in-flight job for a CRC-triggered retransmission
    /// starting at `resume_at` (the corrupted attempt's end plus the
    /// caller's backoff). The link stays **held** through the backoff gap —
    /// pending jobs cannot jump the queue, so strict FIFO order survives
    /// faults — while the replayed transfer accrues busy time and payload
    /// bytes like any other, plus the retry counters.
    ///
    /// # Panics
    ///
    /// Panics if `id` is not the job currently holding the link.
    pub fn retransmit(&mut self, id: u64, resume_at: SimTime) -> LinkGrant {
        let (current, bytes, transfers) = match self.in_flight {
            Some(job) if job.0 == id => job,
            other => panic!("retransmit for job {id} but in flight is {other:?}"),
        };
        let start = resume_at.max(self.free_at);
        let duration = SimTime::from_s(self.link.batched_transfer_time_s(bytes, transfers));
        let end = start + duration;
        self.free_at = end;
        self.busy += duration;
        self.retry_busy += duration;
        self.retransmits += 1;
        self.bytes_moved += bytes;
        LinkGrant {
            id: current,
            bytes,
            start,
            end,
        }
    }

    /// Retires the in-flight job.
    ///
    /// # Panics
    ///
    /// Panics if `id` is not the job currently holding the link — catching
    /// out-of-order completion bugs in the scheduler.
    pub fn complete(&mut self, id: u64) {
        match self.in_flight.take() {
            Some((current, _, _)) if current == id => {}
            other => panic!("link completion for job {id} but in flight is {other:?}"),
        }
    }

    /// Total time the link has been transferring.
    pub fn busy_time(&self) -> SimTime {
        self.busy
    }

    /// Number of grants issued.
    pub fn grants(&self) -> u64 {
        self.grants
    }

    /// Total payload bytes granted.
    pub fn bytes_moved(&self) -> u64 {
        self.bytes_moved
    }

    /// Number of retransmission grants issued via
    /// [`retransmit`](LinkArbiter::retransmit).
    pub fn retransmits(&self) -> u64 {
        self.retransmits
    }

    /// Link time spent replaying corrupted transfers (a subset of
    /// [`busy_time`](LinkArbiter::busy_time)).
    pub fn retry_busy_time(&self) -> SimTime {
        self.retry_busy
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latency_floor_dominates_small_transfers() {
        let link = PcieLink::default();
        let t_small = link.transfer_time_s(64);
        assert!(t_small >= link.latency_per_transfer_s);
        assert!(t_small < link.latency_per_transfer_s * 1.01);
    }

    #[test]
    fn bandwidth_dominates_large_transfers() {
        let link = PcieLink::default();
        let t = link.transfer_time_s(1_500_000_000);
        assert!((t - (1.0 + link.latency_per_transfer_s)).abs() < 1e-6);
    }

    #[test]
    fn inference_time_counts_two_transfers() {
        let link = PcieLink::default();
        let t = link.inference_time_s(50);
        assert!(t > 2.0 * link.latency_per_transfer_s);
        assert!(t < 2.5 * link.latency_per_transfer_s);
    }

    #[test]
    fn interface_time_is_clock_independent() {
        // The type has no clock input at all; this test documents the fact.
        let link = PcieLink::default();
        assert_eq!(link.inference_time_s(40), link.inference_time_s(40));
    }

    #[test]
    fn inference_time_splits_into_input_and_answer() {
        let link = PcieLink::default();
        let t = link.input_transfer_time_s(50) + link.answer_transfer_time_s();
        assert!((t - link.inference_time_s(50)).abs() < 1e-15);
        assert_eq!(PcieLink::input_bytes(50), (50 + 8) * 4);
        assert_eq!(PcieLink::answer_bytes(), 8);
    }

    #[test]
    fn batching_amortizes_the_fixed_latency() {
        let link = PcieLink::default();
        let bytes = PcieLink::input_bytes(40);
        let separate = 4.0 * link.transfer_time_s(bytes);
        let batched = link.batched_transfer_time_s(4 * bytes, 4);
        assert!(batched < separate, "{batched} !< {separate}");
        // Exactly three fixed latencies saved.
        assert!((separate - batched - 3.0 * link.latency_per_transfer_s).abs() < 1e-12);
        assert_eq!(link.batched_transfer_time_s(0, 0), 0.0);
    }

    #[test]
    fn arbiter_serves_fifo_without_overlap() {
        let mut arb = LinkArbiter::new(PcieLink::default());
        arb.submit(1, 64, 1);
        arb.submit(2, 128, 1);
        arb.submit(3, 32, 1);
        let g1 = arb.try_grant(SimTime::ZERO).unwrap();
        assert_eq!(g1.id, 1);
        // Link busy: nothing else grants until completion.
        assert!(arb.try_grant(g1.start).is_none());
        arb.complete(1);
        let g2 = arb.try_grant(g1.end).unwrap();
        assert_eq!(g2.id, 2);
        assert!(g2.start >= g1.end);
        arb.complete(2);
        let g3 = arb.try_grant(g2.end).unwrap();
        assert_eq!(g3.id, 3);
        arb.complete(3);
        assert_eq!(arb.grants(), 3);
        assert_eq!(arb.bytes_moved(), 64 + 128 + 32);
        assert_eq!(arb.pending_len(), 0);
        assert!(!arb.is_busy());
    }

    #[test]
    fn retransmit_holds_the_link_and_accrues_retry_time() {
        let mut arb = LinkArbiter::new(PcieLink::default());
        arb.submit(1, 256, 1);
        arb.submit(2, 64, 1);
        let g1 = arb.try_grant(SimTime::ZERO).unwrap();
        // Corrupted: replay after a backoff gap. The link stays held, so
        // job 2 cannot be granted in the gap.
        let backoff = SimTime::from_s(10e-6);
        let r = arb.retransmit(1, g1.end + backoff);
        assert_eq!(r.id, 1);
        assert_eq!(r.start, g1.end + backoff);
        assert!(arb.try_grant(r.start).is_none(), "link must stay held");
        assert_eq!(arb.retransmits(), 1);
        let first = g1.end.saturating_sub(g1.start);
        let replay = r.end.saturating_sub(r.start);
        assert_eq!(arb.retry_busy_time(), replay);
        assert_eq!(arb.busy_time(), first + replay);
        assert_eq!(arb.bytes_moved(), 2 * 256);
        // Grants counts logical jobs, not replays.
        assert_eq!(arb.grants(), 1);
        arb.complete(1);
        let g2 = arb.try_grant(r.end).unwrap();
        assert_eq!(g2.id, 2);
        assert!(g2.start >= r.end, "FIFO order survives the retry");
    }

    #[test]
    #[should_panic(expected = "in flight")]
    fn retransmit_requires_the_holding_job() {
        let mut arb = LinkArbiter::new(PcieLink::default());
        arb.submit(1, 64, 1);
        let _ = arb.try_grant(SimTime::ZERO).unwrap();
        let _ = arb.retransmit(2, SimTime::ZERO);
    }

    #[test]
    #[should_panic(expected = "in flight")]
    fn arbiter_rejects_wrong_completion() {
        let mut arb = LinkArbiter::new(PcieLink::default());
        arb.submit(1, 64, 1);
        let _ = arb.try_grant(SimTime::ZERO).unwrap();
        arb.complete(99);
    }
}
