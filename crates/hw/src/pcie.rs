//! Host ↔ FPGA interface model.
//!
//! The paper observes that above ~50 MHz the host-FPGA interface dominates
//! inference time ("the improvement was not linear"). The model here is the
//! standard two-term DMA cost: a fixed per-transfer software/driver latency
//! plus bandwidth-limited streaming. Interface time is independent of the
//! fabric clock, which is exactly what flattens the frequency scaling.

use serde::{Deserialize, Serialize};

/// PCIe link + driver-stack cost model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PcieLink {
    /// Effective streaming bandwidth in bytes/second (well below the wire
    /// rate: a Gen3 x8 link delivers ~1.5 GB/s to a single-channel DMA
    /// engine through a vendor driver).
    pub bandwidth_bytes_per_s: f64,
    /// Fixed software + DMA-setup latency per transfer, seconds.
    pub latency_per_transfer_s: f64,
}

impl Default for PcieLink {
    /// Calibrated so a QA inference (two small transfers) costs ~130 µs of
    /// interface time, reproducing Table I's sub-linear frequency scaling.
    fn default() -> Self {
        Self {
            bandwidth_bytes_per_s: 1.5e9,
            latency_per_transfer_s: 65e-6,
        }
    }
}

impl PcieLink {
    /// Time for one transfer of `bytes` payload.
    pub fn transfer_time_s(&self, bytes: u64) -> f64 {
        self.latency_per_transfer_s + bytes as f64 / self.bandwidth_bytes_per_s
    }

    /// Interface time of one QA inference: the input stream (story +
    /// question words, 4 bytes each, plus control words) and the answer
    /// read-back.
    pub fn inference_time_s(&self, input_words: usize) -> f64 {
        let in_bytes = (input_words as u64 + 8) * 4; // +8 control words
        let out_bytes = 8; // answer index + status
        self.transfer_time_s(in_bytes) + self.transfer_time_s(out_bytes)
    }

    /// One-time cost of shipping the trained model (`bytes` of weights).
    pub fn model_upload_time_s(&self, bytes: u64) -> f64 {
        self.transfer_time_s(bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latency_floor_dominates_small_transfers() {
        let link = PcieLink::default();
        let t_small = link.transfer_time_s(64);
        assert!(t_small >= link.latency_per_transfer_s);
        assert!(t_small < link.latency_per_transfer_s * 1.01);
    }

    #[test]
    fn bandwidth_dominates_large_transfers() {
        let link = PcieLink::default();
        let t = link.transfer_time_s(1_500_000_000);
        assert!((t - (1.0 + link.latency_per_transfer_s)).abs() < 1e-6);
    }

    #[test]
    fn inference_time_counts_two_transfers() {
        let link = PcieLink::default();
        let t = link.inference_time_s(50);
        assert!(t > 2.0 * link.latency_per_transfer_s);
        assert!(t < 2.5 * link.latency_per_transfer_s);
    }

    #[test]
    fn interface_time_is_clock_independent() {
        // The type has no clock input at all; this test documents the fact.
        let link = PcieLink::default();
        assert_eq!(link.inference_time_s(40), link.inference_time_s(40));
    }
}
