//! The assembled accelerator (Fig 1) and its per-inference accounting.

use mann_babi::EncodedSample;
use mann_ith::ThresholdingModel;
use memn2n::flops::{count_inference_with_output_rows, FlopBreakdown};
use memn2n::TrainedModel;
use serde::{Deserialize, Serialize};

use crate::modules::{
    encode_sample_stream, ControlModule, InputWriteModule, MemModule, OutputModule, ReadModule,
};
use crate::trace::SignalTrace;
use crate::{quantize_params, ClockDomain, Cycles, DatapathConfig, PcieLink, PowerModel};

/// Accelerator configuration: operating point, datapath, interface, power
/// model, and optional inference thresholding.
#[derive(Debug, Clone, Default)]
pub struct AccelConfig {
    /// Fabric clock (the paper sweeps 25/50/75/100 MHz).
    pub clock: ClockDomain,
    /// Structural datapath parameters.
    pub datapath: DatapathConfig,
    /// Host interface model.
    pub pcie: PcieLink,
    /// Power model.
    pub power: PowerModel,
    /// Calibrated thresholding model; `None` runs the conventional search.
    pub ith: Option<ThresholdingModel>,
    /// Whether thresholding probes in silhouette order (Step 3).
    pub use_ordering: bool,
}

impl AccelConfig {
    /// Convenience: the paper's full method (ITH + ordering) at `clock`.
    pub fn with_thresholding(clock: ClockDomain, ith: ThresholdingModel) -> Self {
        Self {
            clock,
            ith: Some(ith),
            use_ordering: true,
            ..Self::default()
        }
    }
}

/// Compute cycles per pipeline phase.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct PhaseCycles {
    /// Host stream decode (CONTROL).
    pub control: Cycles,
    /// Sentence + question embedding and memory writes (INPUT & WRITE).
    pub write: Cycles,
    /// Content-based addressing over all hops (MEM).
    pub addressing: Cycles,
    /// Soft reads over all hops (MEM).
    pub read: Cycles,
    /// Controller steps over all hops (READ).
    pub controller: Cycles,
    /// Output-layer search (OUTPUT).
    pub output: Cycles,
}

impl PhaseCycles {
    /// Total compute cycles.
    pub fn total(&self) -> Cycles {
        self.control + self.write + self.addressing + self.read + self.controller + self.output
    }
}

impl std::ops::Add for PhaseCycles {
    type Output = PhaseCycles;
    fn add(self, rhs: PhaseCycles) -> PhaseCycles {
        PhaseCycles {
            control: self.control + rhs.control,
            write: self.write + rhs.write,
            addressing: self.addressing + rhs.addressing,
            read: self.read + rhs.read,
            controller: self.controller + rhs.controller,
            output: self.output + rhs.output,
        }
    }
}

impl std::ops::AddAssign for PhaseCycles {
    fn add_assign(&mut self, rhs: PhaseCycles) {
        *self = *self + rhs;
    }
}

impl std::iter::Sum for PhaseCycles {
    fn sum<I: Iterator<Item = PhaseCycles>>(iter: I) -> PhaseCycles {
        iter.fold(PhaseCycles::default(), |a, b| a + b)
    }
}

/// Everything measured about one inference on the accelerator.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct InferenceRun {
    /// Predicted class.
    pub answer: usize,
    /// Whether a threshold fired (early exit).
    pub speculated: bool,
    /// Output rows evaluated.
    pub comparisons: usize,
    /// Per-phase compute cycles.
    pub phases: PhaseCycles,
    /// Total compute cycles.
    pub cycles: Cycles,
    /// Fabric compute time, seconds.
    pub compute_s: f64,
    /// Host-interface time, seconds.
    pub interface_s: f64,
    /// End-to-end latency, seconds.
    pub total_s: f64,
    /// FLOPs the inference represents (for FLOPS/kJ).
    pub flops: FlopBreakdown,
}

impl InferenceRun {
    /// Fraction of the end-to-end latency spent computing (drives the
    /// activity-dependent part of the power model).
    pub fn busy_fraction(&self) -> f64 {
        if self.total_s <= 0.0 {
            0.0
        } else {
            (self.compute_s / self.total_s).clamp(0.0, 1.0)
        }
    }

    /// Simulated duration of the compute phase in `clock`'s domain —
    /// the serving scheduler's per-request service time.
    pub fn compute_time(&self, clock: ClockDomain) -> crate::clock::SimTime {
        clock.sim_time(self.cycles)
    }
}

/// The assembled Fig 1 pipeline for one trained model.
#[derive(Debug, Clone)]
pub struct Accelerator {
    model: TrainedModel,
    input_write: InputWriteModule,
    read: ReadModule,
    output: OutputModule,
    control: ControlModule,
    config: AccelConfig,
    hops: usize,
    embed_dim: usize,
}

impl Accelerator {
    /// Loads `model` into the accelerator: weights are quantized onto the
    /// fixed-point datapath and distributed to the modules' BRAMs.
    ///
    /// # Panics
    ///
    /// Panics if the datapath config is invalid or the thresholding model
    /// does not match the model's class count.
    pub fn new(model: TrainedModel, config: AccelConfig) -> Self {
        config.datapath.validate().expect("valid datapath");
        let q = quantize_params(&model.params, config.datapath.frac_bits);
        let input_write = InputWriteModule::new(q.w_emb_a.clone(), q.content_embedding().clone());
        let read = match &q.gru {
            Some(gru) => ReadModule::new_gru(gru.clone(), &config.datapath),
            None => ReadModule::new(q.w_r.clone(), &config.datapath),
        };
        let mut output = OutputModule::new(q.w_o.clone(), &config.datapath);
        if let Some(ith) = &config.ith {
            output = output.with_thresholding(ith, config.use_ordering);
        }
        let hops = model.params.config.hops;
        let embed_dim = model.params.config.embed_dim;
        Self {
            model,
            input_write,
            read,
            output,
            control: ControlModule::new(),
            config,
            hops,
            embed_dim,
        }
    }

    /// The loaded model.
    pub fn model(&self) -> &TrainedModel {
        &self.model
    }

    /// The active configuration.
    pub fn config(&self) -> &AccelConfig {
        &self.config
    }

    /// Size of the trained model in bytes (for the one-time PCIe upload).
    pub fn model_bytes(&self) -> u64 {
        4 * self.model.params.parameter_count() as u64
    }

    /// Words of the host input stream for `sample` (story + question) —
    /// what the serving layer ships over the shared link per request.
    pub fn input_words(sample: &EncodedSample) -> usize {
        sample.story_words() + sample.question.len()
    }

    /// Runs one inference, returning full timing/energy accounting.
    pub fn run(&self, sample: &EncodedSample) -> InferenceRun {
        self.run_traced(sample, None)
    }

    /// Runs one inference while recording phase signals into `trace`.
    pub fn run_with_trace(&self, sample: &EncodedSample, trace: &mut SignalTrace) -> InferenceRun {
        self.run_traced(sample, Some(trace))
    }

    fn run_traced(
        &self,
        sample: &EncodedSample,
        mut trace: Option<&mut SignalTrace>,
    ) -> InferenceRun {
        let mut phases = PhaseCycles::default();

        // Host stream → CONTROL decode.
        let stream = encode_sample_stream(sample);
        let ((sentences, question), control_cycles) = self
            .control
            .dispatch(&stream)
            .expect("self-produced stream is well-formed");
        phases.control = control_cycles;

        // Declare trace signals up front.
        let sig = trace.as_deref_mut().map(|t| {
            (
                t.add_signal("write_busy", 1),
                t.add_signal("mem_busy", 1),
                t.add_signal("read_busy", 1),
                t.add_signal("output_busy", 1),
                t.add_signal("attention_argmax", 16),
                t.add_signal("comparisons", 32),
            )
        });
        let mut now: u64 = phases.control.get();

        // Write path (green in Fig 1).
        let mut mem = MemModule::new(self.embed_dim, &self.config.datapath);
        if let (Some(t), Some(s)) = (trace.as_deref_mut(), sig) {
            t.record(s.0, now, 1);
        }
        for sent in &sentences {
            let (row_a, row_c, c) = self.input_write.embed_sentence(sent);
            mem.write(row_a, row_c);
            phases.write += c;
        }
        let (q_emb, qc) = self.input_write.embed_question(&question);
        phases.write += qc;
        now += phases.write.get();
        if let (Some(t), Some(s)) = (trace.as_deref_mut(), sig) {
            t.record(s.0, now, 0);
        }

        // Recurrent read path (blue in Fig 1). The per-hop buffers are
        // hoisted out of the loop and reused: attention and read vector are
        // rewritten in place, and the controller output swaps with the key
        // instead of being cloned.
        let mut key = q_emb;
        let mut hidden = vec![0.0f32; self.embed_dim];
        let mut attention: Vec<f32> = Vec::new();
        let mut read_vec: Vec<f32> = Vec::new();
        for _hop in 0..self.hops {
            if let (Some(t), Some(s)) = (trace.as_deref_mut(), sig) {
                t.record(s.1, now, 1);
            }
            let ac = mem.address_into(&key, &mut attention);
            phases.addressing += ac;
            now += ac.get();
            if let (Some(t), Some(s)) = (trace.as_deref_mut(), sig) {
                let argmax = attention
                    .iter()
                    .enumerate()
                    .max_by(|a, b| a.1.partial_cmp(b.1).unwrap_or(std::cmp::Ordering::Equal))
                    .map(|(i, _)| i as u64)
                    .unwrap_or(0);
                t.record(s.4, now, argmax);
                t.record(s.1, now, 0);
                t.record(s.2, now, 1);
            }
            let rc = mem.read_into(&attention, &mut read_vec);
            phases.read += rc;
            now += rc.get();
            let cc = self.read.step_into(&read_vec, &key, &mut hidden);
            phases.controller += cc;
            now += cc.get();
            if let (Some(t), Some(s)) = (trace.as_deref_mut(), sig) {
                t.record(s.2, now, 0);
            }
            std::mem::swap(&mut key, &mut hidden);
        }
        // After the swap the final controller output lives in `key`; with
        // zero hops this degenerates to searching an all-zero hidden state,
        // as before.
        let hidden = if self.hops == 0 { &hidden } else { &key };

        // OUTPUT search.
        if let (Some(t), Some(s)) = (trace.as_deref_mut(), sig) {
            t.record(s.3, now, 1);
        }
        let out = self.output.search(hidden);
        phases.output = out.cycles;
        now += out.cycles.get();
        if let (Some(t), Some(s)) = (trace, sig) {
            t.record(s.3, now, 0);
            t.record(s.5, now, out.comparisons as u64);
        }

        let cycles = phases.total();
        let compute_s = self.config.clock.seconds(cycles);
        let interface_s = self
            .config
            .pcie
            .inference_time_s(sample.story_words() + sample.question.len());
        let flops = count_inference_with_output_rows(
            &self.model.params.config,
            self.model.params.vocab_size,
            sample,
            out.comparisons,
        );
        InferenceRun {
            answer: out.label,
            speculated: out.speculated,
            comparisons: out.comparisons,
            phases,
            cycles,
            compute_s,
            interface_s,
            total_s: compute_s + interface_s,
            flops,
        }
    }

    /// Average board power over a run with the given busy fraction.
    pub fn power_w(&self, busy_fraction: f64) -> f64 {
        self.config.power.power_w(
            self.config.clock.freq_mhz(),
            busy_fraction,
            self.config.ith.is_some(),
        )
    }
}

/// Wall-clock time of a *double-buffered* batch: while inference `i`
/// computes, the host streams inference `i+1`'s input, so in steady state
/// each inference costs `max(compute, interface)` instead of their sum.
///
/// The paper's measured setup is strictly sequential (which is why the
/// interface dominates at high clocks); this utility quantifies the obvious
/// architectural fix as an extension experiment.
pub fn double_buffered_time_s(runs: &[InferenceRun]) -> f64 {
    match runs.split_first() {
        None => 0.0,
        Some((first, rest)) => {
            // Prologue: the first input must fully arrive before compute.
            let mut total = first.interface_s + first.compute_s;
            let mut prev_compute = first.compute_s;
            for run in rest {
                // The next transfer overlapped the previous compute.
                total += run.compute_s + (run.interface_s - prev_compute).max(0.0);
                prev_compute = run.compute_s;
            }
            total
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mann_babi::{DatasetBuilder, TaskId};
    use memn2n::{ModelConfig, TrainConfig, Trainer};

    fn trained() -> (TrainedModel, Vec<EncodedSample>, Vec<EncodedSample>) {
        let data = DatasetBuilder::new()
            .train_samples(120)
            .test_samples(30)
            .seed(12)
            .build_task(TaskId::SingleSupportingFact);
        let mut trainer = Trainer::from_task_data(
            &data,
            ModelConfig {
                embed_dim: 16,
                hops: 2,
                tie_embeddings: false,
                ..ModelConfig::default()
            },
            TrainConfig {
                epochs: 12,
                learning_rate: 0.05,
                decay_every: 6,
                clip_norm: 40.0,
                seed: 12,
                ..TrainConfig::default()
            },
        );
        trainer.train();
        trainer.into_parts()
    }

    #[test]
    fn accelerator_matches_reference_model_answers() {
        let (model, _, test) = trained();
        let accel = Accelerator::new(model.clone(), AccelConfig::default());
        let mut agree = 0usize;
        for s in &test {
            let hw = accel.run(s).answer;
            let sw = model.predict(s);
            if hw == sw {
                agree += 1;
            }
        }
        // Q16.16 is near-lossless at bAbI scale: demand ≥ 90 % agreement.
        assert!(agree * 10 >= test.len() * 9, "{agree}/{}", test.len());
    }

    #[test]
    fn frequency_scaling_is_sublinear_end_to_end() {
        let (model, _, test) = trained();
        let run_at = |mhz: f64| {
            let accel = Accelerator::new(
                model.clone(),
                AccelConfig {
                    clock: ClockDomain::mhz(mhz),
                    ..AccelConfig::default()
                },
            );
            accel.run(&test[0])
        };
        let slow = run_at(25.0);
        let fast = run_at(100.0);
        // Compute scales 4x...
        assert!((slow.compute_s / fast.compute_s - 4.0).abs() < 0.01);
        // ...but the end-to-end speedup is well below 4x (interface bound).
        let speedup = slow.total_s / fast.total_s;
        assert!(speedup > 1.05 && speedup < 3.0, "speedup {speedup}");
        // Same answers regardless of clock.
        assert_eq!(slow.answer, fast.answer);
    }

    #[test]
    fn thresholding_cuts_output_cycles_not_answers_much() {
        let (model, train, test) = trained();
        let ith = mann_ith::ThresholdingCalibrator::new()
            .rho(1.0)
            .calibrate(&model, &train);
        let base = Accelerator::new(model.clone(), AccelConfig::default());
        let fast = Accelerator::new(
            model.clone(),
            AccelConfig::with_thresholding(ClockDomain::default(), ith),
        );
        let mut base_out = 0u64;
        let mut fast_out = 0u64;
        let mut disagreements = 0usize;
        for s in &test {
            let b = base.run(s);
            let f = fast.run(s);
            base_out += b.phases.output.get();
            fast_out += f.phases.output.get();
            if b.answer != f.answer {
                disagreements += 1;
            }
        }
        assert!(fast_out < base_out, "no output-cycle savings");
        assert!(
            disagreements * 10 <= test.len(),
            "{disagreements} disagreements"
        );
    }

    #[test]
    fn phase_totals_add_up() {
        let (model, _, test) = trained();
        let accel = Accelerator::new(model, AccelConfig::default());
        let run = accel.run(&test[0]);
        assert_eq!(run.cycles, run.phases.total());
        assert!(run.total_s >= run.compute_s);
        assert!((0.0..=1.0).contains(&run.busy_fraction()));
        assert_eq!(run.flops.output, run.comparisons as u64 * (2 * 16 + 1));
    }

    #[test]
    fn tracing_records_module_activity() {
        let (model, _, test) = trained();
        let accel = Accelerator::new(model, AccelConfig::default());
        let mut trace = SignalTrace::new();
        let _ = accel.run_with_trace(&test[0], &mut trace);
        assert!(!trace.is_empty());
        let vcd = trace.to_vcd();
        assert!(vcd.contains("mem_busy"));
        assert!(vcd.contains("output_busy"));
    }

    #[test]
    fn double_buffering_beats_sequential_and_respects_bounds() {
        let (model, _, test) = trained();
        let accel = Accelerator::new(model, AccelConfig::default());
        let runs: Vec<InferenceRun> = test.iter().map(|s| accel.run(s)).collect();
        let sequential: f64 = runs.iter().map(|r| r.total_s).sum();
        let pipelined = double_buffered_time_s(&runs);
        assert!(pipelined < sequential, "{pipelined} !< {sequential}");
        // Lower bounds: the slower of the two resource totals.
        let compute: f64 = runs.iter().map(|r| r.compute_s).sum();
        let interface: f64 = runs.iter().map(|r| r.interface_s).sum();
        assert!(pipelined >= compute.max(interface) * 0.999);
        // Degenerate cases.
        assert_eq!(double_buffered_time_s(&[]), 0.0);
        assert!((double_buffered_time_s(&runs[..1]) - runs[0].total_s).abs() < 1e-12);
    }

    #[test]
    fn power_reflects_ith_and_frequency() {
        let (model, train, _) = trained();
        let ith = mann_ith::ThresholdingCalibrator::new()
            .rho(1.0)
            .calibrate(&model, &train);
        let base25 = Accelerator::new(
            model.clone(),
            AccelConfig {
                clock: ClockDomain::mhz(25.0),
                ..AccelConfig::default()
            },
        );
        let base100 = Accelerator::new(model.clone(), AccelConfig::default());
        let ith100 = Accelerator::new(
            model,
            AccelConfig::with_thresholding(ClockDomain::default(), ith),
        );
        assert!(base100.power_w(0.2) > base25.power_w(0.4));
        assert!(ith100.power_w(0.2) > base100.power_w(0.2));
    }
}
