//! The assembled accelerator (Fig 1) and its per-inference accounting.
//!
//! Inference is split into its two natural phases: [`Accelerator::write_story`]
//! streams a story through CONTROL and INPUT & WRITE into the MEM module's
//! address/content memories, producing a [`ResidentStory`]; and
//! [`Accelerator::answer_query`] runs the recurrent read and output search
//! against a resident story. [`Accelerator::run`] composes the two — one
//! upload, one write, one query — and is cycle-for-cycle identical to the
//! pre-split monolithic pipeline. [`Accelerator::run_cached`] consults a
//! [`StoryCache`] first: a hit skips the INPUT & WRITE cycles and the PCIe
//! story upload entirely, paying only the question stream.

use mann_babi::EncodedSample;
use mann_ith::{ExitGuard, HopPrune, ThresholdingModel};
use mann_linalg::NumericStatus;
use memn2n::flops::{count_inference_with_output_rows, FlopBreakdown};
use memn2n::TrainedModel;
use serde::{Deserialize, Serialize};

use crate::index::{IndexCounters, MemIndexConfig};
use crate::modules::{InputWriteModule, MemModule, OutputModule, ReadModule};
use crate::quantize::quantize_params_tracked;
use crate::story::{story_digest, StoryCache};
use crate::trace::SignalTrace;
use crate::{ClockDomain, Cycles, DatapathConfig, PcieLink, PowerModel};

/// Accelerator configuration: operating point, datapath, interface, power
/// model, and optional inference thresholding.
#[derive(Debug, Clone, Default)]
pub struct AccelConfig {
    /// Fabric clock (the paper sweeps 25/50/75/100 MHz).
    pub clock: ClockDomain,
    /// Structural datapath parameters.
    pub datapath: DatapathConfig,
    /// Host interface model.
    pub pcie: PcieLink,
    /// Power model.
    pub power: PowerModel,
    /// Calibrated thresholding model; `None` runs the conventional search.
    pub ith: Option<ThresholdingModel>,
    /// Whether thresholding probes in silhouette order (Step 3).
    pub use_ordering: bool,
    /// Saturation guard over ITH early exits (enabled, zero band by
    /// default; invisible on flag-free inferences).
    pub guard: ExitGuard,
    /// Adaptive hop pruning: skip the remaining MEM/READ hops once a hop's
    /// attention has converged (off by default — the exact seed datapath).
    pub hop_prune: HopPrune,
    /// Candidate-generation index in front of MEM: sub-linear content-based
    /// addressing over large stories (off by default — the exact O(L) scan).
    pub mem_index: MemIndexConfig,
}

impl AccelConfig {
    /// Convenience: the paper's full method (ITH + ordering) at `clock`.
    pub fn with_thresholding(clock: ClockDomain, ith: ThresholdingModel) -> Self {
        Self {
            clock,
            ith: Some(ith),
            use_ordering: true,
            ..Self::default()
        }
    }
}

/// Compute cycles per pipeline phase.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct PhaseCycles {
    /// Host stream decode (CONTROL).
    pub control: Cycles,
    /// Sentence + question embedding and memory writes (INPUT & WRITE).
    pub write: Cycles,
    /// Content-based addressing over all hops (MEM).
    pub addressing: Cycles,
    /// Soft reads over all hops (MEM).
    pub read: Cycles,
    /// Controller steps over all hops (READ).
    pub controller: Cycles,
    /// Output-layer search (OUTPUT).
    pub output: Cycles,
}

impl PhaseCycles {
    /// Total compute cycles.
    pub fn total(&self) -> Cycles {
        self.control + self.write + self.addressing + self.read + self.controller + self.output
    }
}

impl std::ops::Add for PhaseCycles {
    type Output = PhaseCycles;
    fn add(self, rhs: PhaseCycles) -> PhaseCycles {
        PhaseCycles {
            control: self.control + rhs.control,
            write: self.write + rhs.write,
            addressing: self.addressing + rhs.addressing,
            read: self.read + rhs.read,
            controller: self.controller + rhs.controller,
            output: self.output + rhs.output,
        }
    }
}

impl std::ops::AddAssign for PhaseCycles {
    fn add_assign(&mut self, rhs: PhaseCycles) {
        *self = *self + rhs;
    }
}

impl std::iter::Sum for PhaseCycles {
    fn sum<I: Iterator<Item = PhaseCycles>>(iter: I) -> PhaseCycles {
        iter.fold(PhaseCycles::default(), |a, b| a + b)
    }
}

/// Per-module numeric-event registers for one inference — the software
/// mirror of a hardware status register bank: each module accumulates a
/// sticky [`NumericStatus`], latched into the run when the answer drains.
///
/// Counters are pure functions of the inputs: the same model, story and
/// question produce byte-identical reports on every engine, thread count
/// and cache path (hit-form runs always fold the resident story's write
/// events back in).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct NumericReport {
    /// Model-load boundary: weights clipped (or non-finite) while being
    /// quantized into the BRAMs. Identical for every inference on one
    /// loaded model.
    pub load: NumericStatus,
    /// INPUT & WRITE: sentence + question embedding accumulators.
    pub write: NumericStatus,
    /// MEM: addressing MACs, score subtractor, exp/divider units, soft read.
    pub mem: NumericStatus,
    /// READ: controller matvecs and gate combines.
    pub controller: NumericStatus,
    /// OUTPUT: logit dot products.
    pub output: NumericStatus,
}

impl NumericReport {
    /// All per-module registers merged into one status word.
    pub fn total(&self) -> NumericStatus {
        self.load
            .merged(&self.write)
            .merged(&self.mem)
            .merged(&self.controller)
            .merged(&self.output)
    }

    /// Whether any module recorded any event.
    pub fn stressed(&self) -> bool {
        self.total().stressed()
    }
}

/// Everything measured about one inference on the accelerator.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct InferenceRun {
    /// Predicted class.
    pub answer: usize,
    /// Whether a threshold fired (early exit).
    pub speculated: bool,
    /// Output rows evaluated.
    pub comparisons: usize,
    /// Per-phase compute cycles.
    pub phases: PhaseCycles,
    /// Total compute cycles.
    pub cycles: Cycles,
    /// Fabric compute time, seconds.
    pub compute_s: f64,
    /// Host-interface time, seconds.
    pub interface_s: f64,
    /// End-to-end latency, seconds.
    pub total_s: f64,
    /// FLOPs the inference represents (for FLOPS/kJ). Cache hits keep the
    /// full count — the cache changes where the story resides, not what
    /// the inference logically computes.
    pub flops: FlopBreakdown,
    /// Whether the story was already resident (CONTROL/WRITE cycles and
    /// `interface_s` then cover only the question stream).
    pub cache_hit: bool,
    /// ITH early exits vetoed by the saturation guard.
    pub vetoes: usize,
    /// MEM/READ hops actually executed (`<=` the configured hop count).
    pub hops_executed: usize,
    /// Hops skipped because the attention converged ([`HopPrune`]); their
    /// MEM/READ cycles were never spent.
    pub hops_saved: usize,
    /// Hop prunes vetoed because the winning attention weight was computed
    /// through flagged (saturated) arithmetic.
    pub prune_vetoes: usize,
    /// Story-stream cycles one hop spends fetching the resident address and
    /// content rows — what each additional query fused into a shared-story
    /// batch saves per common hop.
    pub mem_stream_per_hop: u64,
    /// OUTPUT weight-stream cycles of this run's search, shareable across a
    /// fused batch. Zero under inference thresholding, where per-query
    /// early exits make the stream query-dependent.
    pub out_stream_cycles: u64,
    /// Per-module numeric-event registers.
    pub numeric: NumericReport,
    /// Candidate-index accounting: slots scanned vs skipped, fallback
    /// rescans, build cost and addressing cycles saved. All-zero when
    /// `mem_index` is off.
    pub index: IndexCounters,
}

impl InferenceRun {
    /// Fraction of the end-to-end latency spent computing (drives the
    /// activity-dependent part of the power model).
    pub fn busy_fraction(&self) -> f64 {
        if self.total_s <= 0.0 {
            0.0
        } else {
            (self.compute_s / self.total_s).clamp(0.0, 1.0)
        }
    }

    /// Simulated duration of the compute phase in `clock`'s domain —
    /// the serving scheduler's per-request service time.
    pub fn compute_time(&self, clock: ClockDomain) -> crate::clock::SimTime {
        clock.sim_time(self.cycles)
    }
}

/// A story made resident in the MEM module's address/content memories:
/// the populated memory plus the CONTROL and INPUT & WRITE cycles that
/// were spent making it resident (what a cache hit saves).
#[derive(Debug, Clone)]
pub struct ResidentStory {
    mem: MemModule,
    phases: PhaseCycles,
    story_words: usize,
    digest: u64,
    numeric: NumericStatus,
    index_build: Cycles,
}

impl ResidentStory {
    /// Content digest the story is cached under ([`story_digest`]).
    pub fn digest(&self) -> u64 {
        self.digest
    }

    /// CONTROL + INPUT & WRITE cycles spent writing the story.
    pub fn phases(&self) -> PhaseCycles {
        self.phases
    }

    /// Story words of the host stream (what a hit keeps off the link).
    pub fn story_words(&self) -> usize {
        self.story_words
    }

    /// Occupied memory slots `L`.
    pub fn sentences(&self) -> usize {
        self.mem.len()
    }

    /// Numeric events recorded while embedding and writing the story.
    pub fn numeric(&self) -> NumericStatus {
        self.numeric
    }

    /// Cycles the candidate-index build added to the write phase (zero when
    /// `mem_index` is off).
    pub fn index_build_cycles(&self) -> Cycles {
        self.index_build
    }

    /// The quantized Q16.16 rows of the resident address/content memories
    /// (address rows then content rows, row-major) — the payload a
    /// write-ahead log persists for this story.
    pub fn quantized_rows(&self) -> Vec<i32> {
        self.mem.raw_words()
    }
}

/// The assembled Fig 1 pipeline for one trained model.
#[derive(Debug, Clone)]
pub struct Accelerator {
    model: TrainedModel,
    input_write: InputWriteModule,
    read: ReadModule,
    output: OutputModule,
    /// Empty MEM module cloned per story: the exp LUT and divider setup are
    /// built once at load time, not per inference.
    mem_proto: MemModule,
    config: AccelConfig,
    hops: usize,
    embed_dim: usize,
    /// Numeric events latched while quantizing the model into the BRAMs —
    /// replayed into every run's `load` register.
    load_status: NumericStatus,
}

impl Accelerator {
    /// Loads `model` into the accelerator: weights are quantized onto the
    /// fixed-point datapath and distributed to the modules' BRAMs.
    ///
    /// # Panics
    ///
    /// Panics if the datapath config is invalid or the thresholding model
    /// does not match the model's class count.
    pub fn new(model: TrainedModel, config: AccelConfig) -> Self {
        config.datapath.validate().expect("valid datapath");
        let mut load_status = NumericStatus::default();
        let q = quantize_params_tracked(&model.params, config.datapath.frac_bits, &mut load_status);
        // The module constructors below re-quantize already-quantized
        // weights, which is lossless — the load register counts each clip
        // once, at the quantization boundary above.
        let input_write = InputWriteModule::new(q.w_emb_a.clone(), q.content_embedding().clone());
        let read = match &q.gru {
            Some(gru) => ReadModule::new_gru(gru.clone(), &config.datapath),
            None => ReadModule::new(q.w_r.clone(), &config.datapath),
        };
        let mut output =
            OutputModule::new(q.w_o.clone(), &config.datapath).with_guard(config.guard);
        if let Some(ith) = &config.ith {
            output = output.with_thresholding(ith, config.use_ordering);
        }
        let hops = model.params.config.hops;
        let embed_dim = model.params.config.embed_dim;
        let mem_proto = MemModule::new(embed_dim, &config.datapath);
        Self {
            model,
            input_write,
            read,
            output,
            mem_proto,
            config,
            hops,
            embed_dim,
            load_status,
        }
    }

    /// The loaded model.
    pub fn model(&self) -> &TrainedModel {
        &self.model
    }

    /// The active configuration.
    pub fn config(&self) -> &AccelConfig {
        &self.config
    }

    /// Size of the trained model in bytes (for the one-time PCIe upload).
    pub fn model_bytes(&self) -> u64 {
        4 * self.model.params.parameter_count() as u64
    }

    /// Words of the host input stream for `sample` (story + question) —
    /// what the serving layer ships over the shared link per request.
    pub fn input_words(sample: &EncodedSample) -> usize {
        sample.story_words() + sample.question.len()
    }

    /// Words of the host input stream for a repeat query against a resident
    /// story: only the question crosses the link.
    pub fn query_words(sample: &EncodedSample) -> usize {
        sample.question.len()
    }

    /// Streams `sample`'s story into fresh address/content memories:
    /// CONTROL decodes `BEGIN_STORY` + one `SENTENCE` header + payload per
    /// sentence (one cycle per stream word), and INPUT & WRITE embeds each
    /// sentence into a memory row.
    pub fn write_story(&self, sample: &EncodedSample) -> ResidentStory {
        let mut mem = self.mem_proto.clone();
        let mut phases = PhaseCycles::default();
        let mut numeric = NumericStatus::default();
        for sent in &sample.sentences {
            let (row_a, row_c, c) = self.input_write.embed_sentence_tracked(sent, &mut numeric);
            mem.write_tracked(row_a, row_c, &mut numeric);
            phases.write += c;
        }
        // With `--mem-index` armed the write path clusters the freshly
        // written address rows into the candidate index; the build rides
        // the INPUT & WRITE phase (a story-upload cost the cache amortizes
        // exactly like the embedding work).
        let mut index_build = Cycles::ZERO;
        if self.config.mem_index.enabled {
            index_build = mem.build_index(self.config.mem_index, &mut numeric);
            phases.write += index_build;
        }
        let story_words = sample.story_words();
        // One CONTROL cycle per story stream word: BEGIN_STORY, a SENTENCE
        // header per sentence, and the word payloads (the stream layout of
        // `modules::encode_sample_stream`, accounted analytically).
        phases.control = Cycles::new(1 + sample.sentences.len() as u64 + story_words as u64);
        ResidentStory {
            mem,
            phases,
            story_words,
            digest: story_digest(sample),
            numeric,
            index_build,
        }
    }

    /// Answers `sample`'s question against an already-resident story: the
    /// QUESTION/RUN_INFERENCE control words, the question embedding, the
    /// recurrent read path and the output search — no INPUT & WRITE cycles
    /// and no story upload. `interface_s` covers the question stream plus
    /// the answer drain only, and `cache_hit` is set.
    pub fn answer_query(&self, story: &ResidentStory, sample: &EncodedSample) -> InferenceRun {
        self.query_traced(story, sample, None, false)
    }

    /// Answers a batch of queries against one resident story with the
    /// batched MEM/OUTPUT kernels: each address/content/output row is
    /// streamed from BRAM once per hop and scored against every live query
    /// while resident, instead of once per query.
    ///
    /// Every returned run is bit-identical to [`Accelerator::answer_query`]
    /// on the same sample — answers, cycles, phases and numeric registers
    /// keep their standalone accounting, so downstream digests and phase
    /// totals are invariant under batching. The second return value is the
    /// fused savings: the story- and output-stream cycles the batch shares
    /// instead of re-spending, i.e.
    /// `mem_stream_per_hop * (Σ hops_q − max hops_q) + (Σ out_q − max out_q)`.
    pub fn query_batch(
        &self,
        story: &ResidentStory,
        samples: &[&EncodedSample],
    ) -> (Vec<InferenceRun>, u64) {
        let n = samples.len();
        if n == 0 {
            return (Vec::new(), 0);
        }
        let mem = &story.mem;
        let prune = self.config.hop_prune;
        let mut phases = vec![PhaseCycles::default(); n];
        let mut numeric = vec![
            NumericReport {
                load: self.load_status,
                write: story.numeric,
                ..NumericReport::default()
            };
            n
        ];
        // Question embeddings (per query — the write path is not story
        // bound, so there is nothing to share).
        let mut keys: Vec<Vec<f32>> = Vec::with_capacity(n);
        for (q, sample) in samples.iter().enumerate() {
            phases[q].control += Cycles::new(2 + sample.question.len() as u64);
            let (q_emb, qc) = self
                .input_write
                .embed_question_tracked(&sample.question, &mut numeric[q].write);
            phases[q].write += qc;
            keys.push(q_emb);
        }
        let mut hiddens = vec![vec![0.0f32; self.embed_dim]; n];
        let mut hops_executed = vec![0usize; n];
        let mut hops_saved = vec![0usize; n];
        let mut prune_vetoes = vec![0usize; n];
        let use_index = self.config.mem_index.enabled && mem.index().is_some();
        let mut index = vec![IndexCounters::default(); n];
        // Queries still running; pruned queries drop out between hops.
        let mut active: Vec<usize> = (0..n).collect();
        let mut batch_keys: Vec<Vec<f32>> = Vec::new();
        let mut attentions: Vec<Vec<f32>> = Vec::new();
        let mut reads: Vec<Vec<f32>> = Vec::new();
        let mut flags: Vec<Vec<bool>> = Vec::new();
        let mut saved_stream = 0u64;
        for hop in 0..self.hops {
            if active.is_empty() {
                break;
            }
            batch_keys.clear();
            batch_keys.extend(active.iter().map(|&q| keys[q].clone()));
            let mut sts: Vec<NumericStatus> = active.iter().map(|&q| numeric[q].mem).collect();
            let acs = if use_index {
                let exact = mem.exact_addressing_cycles();
                let (acs, stats, union) = mem.address_indexed_batch_flagged_into_tracked(
                    &batch_keys,
                    &mut attentions,
                    &mut sts,
                    &mut flags,
                );
                // Fused address stream: the batch fetches the *union* of
                // the queries' candidate rows once instead of each query's
                // own scan; the soft-read stream still touches every slot
                // and is shared in full. With every hop falling back this
                // reduces exactly to the unindexed sharing formula.
                let scanned_sum: u64 = stats.iter().map(|s| s.scanned).sum();
                saved_stream += (scanned_sum - union) * mem.slots_per_row()
                    + (active.len() as u64 - 1) * mem.len() as u64 * mem.slots_per_row();
                for (i, &q) in active.iter().enumerate() {
                    index[q].scanned_slots += stats[i].scanned;
                    index[q].skipped_slots += stats[i].skipped;
                    index[q].fallbacks += u64::from(stats[i].fallback);
                    index[q].cycles_saved += exact.saturating_sub(acs[i].get());
                }
                acs
            } else {
                // Each hop the batch shares one story stream; every live
                // query beyond the first saves the full per-hop row stream.
                saved_stream += mem.stream_cycles_per_hop() * (active.len() as u64 - 1);
                mem.address_batch_flagged_into_tracked(
                    &batch_keys,
                    &mut attentions,
                    &mut sts,
                    &mut flags,
                )
            };
            let rcs = mem.read_batch_into_tracked(&attentions, &mut reads, &mut sts);
            for (i, &q) in active.iter().enumerate() {
                numeric[q].mem = sts[i];
                phases[q].addressing += acs[i];
                phases[q].read += rcs[i];
                let cc = self.read.step_into_tracked(
                    &reads[i],
                    &keys[q],
                    &mut hiddens[q],
                    &mut numeric[q].controller,
                );
                phases[q].controller += cc;
                std::mem::swap(&mut keys[q], &mut hiddens[q]);
                hops_executed[q] += 1;
            }
            if prune.enabled && hop + 1 < self.hops {
                let mut still = Vec::with_capacity(active.len());
                for (i, &q) in active.iter().enumerate() {
                    let (argmax, max_w) = attentions[i]
                        .iter()
                        .enumerate()
                        .max_by(|a, b| a.1.total_cmp(b.1))
                        .map(|(j, &w)| (j, w))
                        .unwrap_or((0, f32::NEG_INFINITY));
                    if prune.fires(max_w) {
                        if flags[i].get(argmax).copied().unwrap_or(false) {
                            prune_vetoes[q] += 1;
                            still.push(q);
                        } else {
                            hops_saved[q] = self.hops - hop - 1;
                        }
                    } else {
                        still.push(q);
                    }
                }
                active = still;
            }
        }
        // OUTPUT search over every final controller state, sharing the
        // weight stream (delegates per query under thresholding).
        let finals: Vec<&[f32]> = (0..n)
            .map(|q| {
                if self.hops == 0 {
                    hiddens[q].as_slice()
                } else {
                    keys[q].as_slice()
                }
            })
            .collect();
        let outs = self.output.search_batch(&finals);
        if !self.output.is_thresholded() {
            // One shared weight stream for the whole batch: comparisons are
            // identical across un-thresholded queries, so the saving is the
            // full stream for every query beyond the first.
            let streams: Vec<u64> = outs
                .iter()
                .map(|o| o.comparisons as u64 * self.output.row_stream_cycles())
                .collect();
            let max = streams.iter().copied().max().unwrap_or(0);
            saved_stream += streams.iter().sum::<u64>() - max;
        }
        let runs = samples
            .iter()
            .enumerate()
            .map(|(q, sample)| {
                let out = &outs[q];
                let mut phases = phases[q];
                phases.output = out.cycles;
                let mut numeric = numeric[q];
                numeric.output = out.numeric;
                let cycles = phases.total();
                let compute_s = self.config.clock.seconds(cycles);
                let interface_s = self.config.pcie.inference_time_s(sample.question.len());
                let flops = count_inference_with_output_rows(
                    &self.model.params.config,
                    self.model.params.vocab_size,
                    sample,
                    out.comparisons,
                );
                InferenceRun {
                    answer: out.label,
                    speculated: out.speculated,
                    comparisons: out.comparisons,
                    phases,
                    cycles,
                    compute_s,
                    interface_s,
                    total_s: compute_s + interface_s,
                    flops,
                    cache_hit: true,
                    vetoes: out.vetoes,
                    hops_executed: hops_executed[q],
                    hops_saved: hops_saved[q],
                    prune_vetoes: prune_vetoes[q],
                    mem_stream_per_hop: mem.stream_cycles_per_hop(),
                    out_stream_cycles: if self.output.is_thresholded() {
                        0
                    } else {
                        out.comparisons as u64 * self.output.row_stream_cycles()
                    },
                    numeric,
                    index: index[q],
                }
            })
            .collect();
        (runs, saved_stream)
    }

    /// Runs one inference, returning full timing/energy accounting.
    pub fn run(&self, sample: &EncodedSample) -> InferenceRun {
        self.run_traced(sample, None)
    }

    /// Runs one inference while recording phase signals into `trace`.
    pub fn run_with_trace(&self, sample: &EncodedSample, trace: &mut SignalTrace) -> InferenceRun {
        self.run_traced(sample, Some(trace))
    }

    /// Runs one inference through `cache`: a resident story answers the
    /// query directly; a miss writes the story, runs the full pipeline and
    /// makes the story resident. Miss runs are identical to
    /// [`Accelerator::run`].
    pub fn run_cached(&self, sample: &EncodedSample, cache: &mut StoryCache) -> InferenceRun {
        self.run_cached_traced(sample, cache, None)
    }

    /// [`Accelerator::run_cached`] with signal tracing; the trace gains a
    /// `story_cache_hit` flag alongside the usual phase signals.
    pub fn run_cached_with_trace(
        &self,
        sample: &EncodedSample,
        cache: &mut StoryCache,
        trace: &mut SignalTrace,
    ) -> InferenceRun {
        self.run_cached_traced(sample, cache, Some(trace))
    }

    fn run_cached_traced(
        &self,
        sample: &EncodedSample,
        cache: &mut StoryCache,
        mut trace: Option<&mut SignalTrace>,
    ) -> InferenceRun {
        let digest = story_digest(sample);
        if let Some(t) = trace.as_deref_mut() {
            let sig = t.add_signal("story_cache_hit", 1);
            t.record(sig, 0, u64::from(cache.contains(digest)));
        }
        if let Some(story) = cache.lookup(digest) {
            return self.query_traced(story, sample, trace, false);
        }
        let story = self.write_story(sample);
        let run = self.query_traced(&story, sample, trace, true);
        cache.insert(story);
        run
    }

    /// Rebuilds the uncached (miss) accounting from a resident story and
    /// its hit-form query run: the result equals [`Accelerator::run`] on
    /// the same sample, without re-simulating either phase. The serving
    /// layer uses this to materialize per-request runs after deciding
    /// hit/miss at dispatch time.
    pub fn compose_uncached(
        &self,
        story: &ResidentStory,
        query: &InferenceRun,
        sample: &EncodedSample,
    ) -> InferenceRun {
        debug_assert!(query.cache_hit, "compose_uncached expects a hit-form run");
        let phases = story.phases + query.phases;
        let cycles = phases.total();
        let compute_s = self.config.clock.seconds(cycles);
        let interface_s = self
            .config
            .pcie
            .inference_time_s(story.story_words + sample.question.len());
        InferenceRun {
            answer: query.answer,
            speculated: query.speculated,
            comparisons: query.comparisons,
            phases,
            cycles,
            compute_s,
            interface_s,
            total_s: compute_s + interface_s,
            flops: query.flops,
            cache_hit: false,
            vetoes: query.vetoes,
            hops_executed: query.hops_executed,
            hops_saved: query.hops_saved,
            prune_vetoes: query.prune_vetoes,
            mem_stream_per_hop: query.mem_stream_per_hop,
            out_stream_cycles: query.out_stream_cycles,
            numeric: query.numeric,
            index: IndexCounters {
                build_cycles: story.index_build.get() + query.index.build_cycles,
                ..query.index
            },
        }
    }

    fn run_traced(&self, sample: &EncodedSample, trace: Option<&mut SignalTrace>) -> InferenceRun {
        let story = self.write_story(sample);
        self.query_traced(&story, sample, trace, true)
    }

    /// The query pipeline against `story`'s memory. With `include_story`
    /// the story's CONTROL/WRITE cycles and upload words are folded in
    /// (a full uncached inference); without, the run is the hit form.
    fn query_traced(
        &self,
        story: &ResidentStory,
        sample: &EncodedSample,
        mut trace: Option<&mut SignalTrace>,
        include_story: bool,
    ) -> InferenceRun {
        let mut phases = if include_story {
            story.phases
        } else {
            PhaseCycles::default()
        };
        // CONTROL: QUESTION header + payload + RUN_INFERENCE, one cycle per
        // stream word.
        phases.control += Cycles::new(2 + sample.question.len() as u64);

        // Per-module numeric registers. The story's write events are always
        // folded in — hit-form and miss-form runs must report identical
        // numeric health, since the cache changes where the story resides,
        // not what the inference computes.
        let mut numeric = NumericReport {
            load: self.load_status,
            write: story.numeric,
            ..NumericReport::default()
        };

        // Declare trace signals up front.
        let sig = trace.as_deref_mut().map(|t| {
            (
                t.add_signal("write_busy", 1),
                t.add_signal("mem_busy", 1),
                t.add_signal("read_busy", 1),
                t.add_signal("output_busy", 1),
                t.add_signal("attention_argmax", 16),
                t.add_signal("comparisons", 32),
                t.add_signal("numeric_events", 32),
                t.add_signal("exit_vetoes", 8),
            )
        });
        let mut now: u64 = phases.control.get();

        // Question embedding rides the write path (green in Fig 1).
        if let (Some(t), Some(s)) = (trace.as_deref_mut(), sig) {
            t.record(s.0, now, 1);
        }
        let (q_emb, qc) = self
            .input_write
            .embed_question_tracked(&sample.question, &mut numeric.write);
        phases.write += qc;
        now += phases.write.get();
        if let (Some(t), Some(s)) = (trace.as_deref_mut(), sig) {
            t.record(s.0, now, 0);
        }

        // Recurrent read path (blue in Fig 1). The per-hop buffers are
        // hoisted out of the loop and reused: attention and read vector are
        // rewritten in place, and the controller output swaps with the key
        // instead of being cloned.
        let mem = &story.mem;
        let prune = self.config.hop_prune;
        let use_index = self.config.mem_index.enabled && mem.index().is_some();
        let mut index = IndexCounters::default();
        if include_story {
            index.build_cycles = story.index_build.get();
        }
        let mut key = q_emb;
        let mut hidden = vec![0.0f32; self.embed_dim];
        let mut attention: Vec<f32> = Vec::new();
        let mut read_vec: Vec<f32> = Vec::new();
        let mut flags: Vec<bool> = Vec::new();
        let mut hops_executed = 0usize;
        let mut hops_saved = 0usize;
        let mut prune_vetoes = 0usize;
        for hop in 0..self.hops {
            if let (Some(t), Some(s)) = (trace.as_deref_mut(), sig) {
                t.record(s.1, now, 1);
            }
            // With pruning enabled the addressing pass also captures
            // per-row numeric provenance (identical values, cycles and
            // merged status) so a converged-but-saturated winner can veto
            // the early exit. The indexed pass always carries the flags, so
            // it composes with pruning unchanged.
            let ac = if use_index {
                let exact = mem.exact_addressing_cycles();
                let (ac, hop_stats) = mem.address_indexed_flagged_into_tracked(
                    &key,
                    &mut attention,
                    &mut numeric.mem,
                    &mut flags,
                );
                index.scanned_slots += hop_stats.scanned;
                index.skipped_slots += hop_stats.skipped;
                index.fallbacks += u64::from(hop_stats.fallback);
                index.cycles_saved += exact.saturating_sub(ac.get());
                ac
            } else if prune.enabled {
                mem.address_flagged_into_tracked(&key, &mut attention, &mut numeric.mem, &mut flags)
            } else {
                mem.address_into_tracked(&key, &mut attention, &mut numeric.mem)
            };
            phases.addressing += ac;
            now += ac.get();
            if let (Some(t), Some(s)) = (trace.as_deref_mut(), sig) {
                // `total_cmp` keeps the argmax total (and NaN-safe) —
                // `partial_cmp(..).unwrap_or(Equal)` silently broke the
                // ordering whenever a NaN reached the trace path.
                let argmax = attention
                    .iter()
                    .enumerate()
                    .max_by(|a, b| a.1.total_cmp(b.1))
                    .map(|(i, _)| i as u64)
                    .unwrap_or(0);
                t.record(s.4, now, argmax);
                t.record(s.1, now, 0);
                t.record(s.2, now, 1);
            }
            let rc = mem.read_into_tracked(&attention, &mut read_vec, &mut numeric.mem);
            phases.read += rc;
            now += rc.get();
            let cc =
                self.read
                    .step_into_tracked(&read_vec, &key, &mut hidden, &mut numeric.controller);
            phases.controller += cc;
            now += cc.get();
            if let (Some(t), Some(s)) = (trace.as_deref_mut(), sig) {
                t.record(s.2, now, 0);
            }
            std::mem::swap(&mut key, &mut hidden);
            hops_executed += 1;
            if prune.enabled && hop + 1 < self.hops {
                let (argmax, max_w) = attention
                    .iter()
                    .enumerate()
                    .max_by(|a, b| a.1.total_cmp(b.1))
                    .map(|(i, &w)| (i, w))
                    .unwrap_or((0, f32::NEG_INFINITY));
                if prune.fires(max_w) {
                    if flags.get(argmax).copied().unwrap_or(false) {
                        // ExitGuard discipline: a saturated winner carries
                        // no information — run the full hop schedule.
                        prune_vetoes += 1;
                    } else {
                        hops_saved = self.hops - hop - 1;
                        break;
                    }
                }
            }
        }
        // After the swap the final controller output lives in `key`; with
        // zero hops this degenerates to searching an all-zero hidden state,
        // as before.
        let hidden = if self.hops == 0 { &hidden } else { &key };

        // OUTPUT search.
        if let (Some(t), Some(s)) = (trace.as_deref_mut(), sig) {
            t.record(s.3, now, 1);
        }
        let out = self.output.search(hidden);
        phases.output = out.cycles;
        now += out.cycles.get();
        numeric.output = out.numeric;
        if let (Some(t), Some(s)) = (trace, sig) {
            t.record(s.3, now, 0);
            t.record(s.5, now, out.comparisons as u64);
            t.record(s.6, now, numeric.total().total().min(u64::from(u32::MAX)));
            t.record(s.7, now, (out.vetoes as u64).min(u64::from(u8::MAX)));
        }

        let cycles = phases.total();
        let compute_s = self.config.clock.seconds(cycles);
        let upload_words = if include_story {
            story.story_words + sample.question.len()
        } else {
            sample.question.len()
        };
        let interface_s = self.config.pcie.inference_time_s(upload_words);
        let flops = count_inference_with_output_rows(
            &self.model.params.config,
            self.model.params.vocab_size,
            sample,
            out.comparisons,
        );
        InferenceRun {
            answer: out.label,
            speculated: out.speculated,
            comparisons: out.comparisons,
            phases,
            cycles,
            compute_s,
            interface_s,
            total_s: compute_s + interface_s,
            flops,
            cache_hit: !include_story,
            vetoes: out.vetoes,
            hops_executed,
            hops_saved,
            prune_vetoes,
            mem_stream_per_hop: mem.stream_cycles_per_hop(),
            out_stream_cycles: if self.output.is_thresholded() {
                0
            } else {
                out.comparisons as u64 * self.output.row_stream_cycles()
            },
            numeric,
            index,
        }
    }

    /// Average board power over a run with the given busy fraction.
    pub fn power_w(&self, busy_fraction: f64) -> f64 {
        self.config.power.power_w(
            self.config.clock.freq_mhz(),
            busy_fraction,
            self.config.ith.is_some(),
        )
    }
}

/// Wall-clock time of a *double-buffered* batch: while inference `i`
/// computes, the host streams inference `i+1`'s input, so in steady state
/// each inference costs `max(compute, interface)` instead of their sum.
/// An empty batch takes no time; a single inference cannot overlap with
/// anything and costs its full sequential latency.
///
/// The paper's measured setup is strictly sequential (which is why the
/// interface dominates at high clocks); this utility quantifies the obvious
/// architectural fix as an extension experiment.
pub fn double_buffered_time_s(runs: &[InferenceRun]) -> f64 {
    match runs.split_first() {
        None => 0.0,
        Some((first, rest)) => {
            // Prologue: the first input must fully arrive before compute.
            let mut total = first.interface_s + first.compute_s;
            let mut prev_compute = first.compute_s;
            for run in rest {
                // The next transfer overlapped the previous compute.
                total += run.compute_s + (run.interface_s - prev_compute).max(0.0);
                prev_compute = run.compute_s;
            }
            total
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::modules::encode_sample_stream;
    use mann_babi::{DatasetBuilder, TaskId};
    use memn2n::{ModelConfig, TrainConfig, Trainer};

    fn trained() -> (TrainedModel, Vec<EncodedSample>, Vec<EncodedSample>) {
        let data = DatasetBuilder::new()
            .train_samples(120)
            .test_samples(30)
            .seed(12)
            .build_task(TaskId::SingleSupportingFact);
        let mut trainer = Trainer::from_task_data(
            &data,
            ModelConfig {
                embed_dim: 16,
                hops: 2,
                tie_embeddings: false,
                ..ModelConfig::default()
            },
            TrainConfig {
                epochs: 12,
                learning_rate: 0.05,
                decay_every: 6,
                clip_norm: 40.0,
                seed: 12,
                ..TrainConfig::default()
            },
        );
        trainer.train();
        trainer.into_parts()
    }

    #[test]
    fn accelerator_matches_reference_model_answers() {
        let (model, _, test) = trained();
        let accel = Accelerator::new(model.clone(), AccelConfig::default());
        let mut agree = 0usize;
        for s in &test {
            let hw = accel.run(s).answer;
            let sw = model.predict(s);
            if hw == sw {
                agree += 1;
            }
        }
        // Q16.16 is near-lossless at bAbI scale: demand ≥ 90 % agreement.
        assert!(agree * 10 >= test.len() * 9, "{agree}/{}", test.len());
    }

    #[test]
    fn split_control_cycles_match_stream_codec() {
        // The analytic CONTROL accounting of the split pipeline must equal
        // one cycle per word of the actual host stream.
        let (model, _, test) = trained();
        let accel = Accelerator::new(model, AccelConfig::default());
        for s in test.iter().take(8) {
            let story = accel.write_story(s);
            let query = accel.answer_query(&story, s);
            let stream_words = encode_sample_stream(s).len() as u64;
            assert_eq!(
                story.phases().control.get() + query.phases.control.get(),
                stream_words
            );
            assert_eq!(accel.run(s).phases.control.get(), stream_words);
        }
    }

    #[test]
    fn split_composes_to_the_monolithic_run() {
        let (model, _, test) = trained();
        let accel = Accelerator::new(model, AccelConfig::default());
        for s in &test {
            let full = accel.run(s);
            assert!(!full.cache_hit);
            let story = accel.write_story(s);
            let hit = accel.answer_query(&story, s);
            assert!(hit.cache_hit);
            // Identical answers and READ/OUTPUT-side cycles; only the
            // CONTROL/WRITE phases and the interface differ.
            assert_eq!(hit.answer, full.answer);
            assert_eq!(hit.comparisons, full.comparisons);
            assert_eq!(hit.phases.addressing, full.phases.addressing);
            assert_eq!(hit.phases.read, full.phases.read);
            assert_eq!(hit.phases.controller, full.phases.controller);
            assert_eq!(hit.phases.output, full.phases.output);
            assert!(hit.cycles < full.cycles);
            assert!(hit.interface_s < full.interface_s);
            // Recomposing the miss form reproduces `run` exactly.
            let composed = accel.compose_uncached(&story, &hit, s);
            assert_eq!(composed, full);
        }
    }

    #[test]
    fn cached_runs_hit_after_first_write() {
        let (model, _, test) = trained();
        let accel = Accelerator::new(model, AccelConfig::default());
        let mut cache = StoryCache::new(4);
        let first = accel.run_cached(&test[0], &mut cache);
        assert!(!first.cache_hit);
        assert_eq!(first, accel.run(&test[0]));
        let second = accel.run_cached(&test[0], &mut cache);
        assert!(second.cache_hit);
        assert_eq!(second.answer, first.answer);
        assert!(second.cycles < first.cycles);
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses), (1, 1));
        // A zero-capacity cache never hits and reproduces `run` exactly.
        let mut off = StoryCache::new(0);
        for s in test.iter().take(4) {
            assert_eq!(accel.run_cached(s, &mut off), accel.run(s));
        }
        assert_eq!(off.stats().hits, 0);
    }

    #[test]
    fn cached_trace_records_hit_flag() {
        let (model, _, test) = trained();
        let accel = Accelerator::new(model, AccelConfig::default());
        let mut cache = StoryCache::new(2);
        let mut miss_trace = SignalTrace::new();
        let _ = accel.run_cached_with_trace(&test[0], &mut cache, &mut miss_trace);
        let mut hit_trace = SignalTrace::new();
        let run = accel.run_cached_with_trace(&test[0], &mut cache, &mut hit_trace);
        assert!(run.cache_hit);
        for (vcd, flag) in [(miss_trace.to_vcd(), "0!"), (hit_trace.to_vcd(), "1!")] {
            assert!(vcd.contains("story_cache_hit"));
            assert!(vcd.contains(flag), "missing {flag}");
        }
    }

    #[test]
    fn frequency_scaling_is_sublinear_end_to_end() {
        let (model, _, test) = trained();
        let run_at = |mhz: f64| {
            let accel = Accelerator::new(
                model.clone(),
                AccelConfig {
                    clock: ClockDomain::mhz(mhz),
                    ..AccelConfig::default()
                },
            );
            accel.run(&test[0])
        };
        let slow = run_at(25.0);
        let fast = run_at(100.0);
        // Compute scales 4x...
        assert!((slow.compute_s / fast.compute_s - 4.0).abs() < 0.01);
        // ...but the end-to-end speedup is well below 4x (interface bound).
        let speedup = slow.total_s / fast.total_s;
        assert!(speedup > 1.05 && speedup < 3.0, "speedup {speedup}");
        // Same answers regardless of clock.
        assert_eq!(slow.answer, fast.answer);
    }

    #[test]
    fn thresholding_cuts_output_cycles_not_answers_much() {
        let (model, train, test) = trained();
        let ith = mann_ith::ThresholdingCalibrator::new()
            .rho(1.0)
            .calibrate(&model, &train);
        let base = Accelerator::new(model.clone(), AccelConfig::default());
        let fast = Accelerator::new(
            model.clone(),
            AccelConfig::with_thresholding(ClockDomain::default(), ith),
        );
        let mut base_out = 0u64;
        let mut fast_out = 0u64;
        let mut disagreements = 0usize;
        for s in &test {
            let b = base.run(s);
            let f = fast.run(s);
            base_out += b.phases.output.get();
            fast_out += f.phases.output.get();
            if b.answer != f.answer {
                disagreements += 1;
            }
        }
        assert!(fast_out < base_out, "no output-cycle savings");
        assert!(
            disagreements * 10 <= test.len(),
            "{disagreements} disagreements"
        );
    }

    #[test]
    fn phase_totals_add_up() {
        let (model, _, test) = trained();
        let accel = Accelerator::new(model, AccelConfig::default());
        let run = accel.run(&test[0]);
        assert_eq!(run.cycles, run.phases.total());
        assert!(run.total_s >= run.compute_s);
        assert!((0.0..=1.0).contains(&run.busy_fraction()));
        assert_eq!(run.flops.output, run.comparisons as u64 * (2 * 16 + 1));
    }

    #[test]
    fn tracing_records_module_activity() {
        let (model, _, test) = trained();
        let accel = Accelerator::new(model, AccelConfig::default());
        let mut trace = SignalTrace::new();
        let _ = accel.run_with_trace(&test[0], &mut trace);
        assert!(!trace.is_empty());
        let vcd = trace.to_vcd();
        assert!(vcd.contains("mem_busy"));
        assert!(vcd.contains("output_busy"));
    }

    #[test]
    fn double_buffering_beats_sequential_and_respects_bounds() {
        let (model, _, test) = trained();
        let accel = Accelerator::new(model, AccelConfig::default());
        let runs: Vec<InferenceRun> = test.iter().map(|s| accel.run(s)).collect();
        let sequential: f64 = runs.iter().map(|r| r.total_s).sum();
        let pipelined = double_buffered_time_s(&runs);
        assert!(pipelined < sequential, "{pipelined} !< {sequential}");
        // Lower bounds: the slower of the two resource totals.
        let compute: f64 = runs.iter().map(|r| r.compute_s).sum();
        let interface: f64 = runs.iter().map(|r| r.interface_s).sum();
        assert!(pipelined >= compute.max(interface) * 0.999);
    }

    #[test]
    fn double_buffering_handles_empty_and_single_runs() {
        // Regression: the batch helper must not assume two inferences.
        let (model, _, test) = trained();
        let accel = Accelerator::new(model, AccelConfig::default());
        let run = accel.run(&test[0]);
        assert_eq!(double_buffered_time_s(&[]), 0.0);
        // One inference: nothing overlaps, full sequential latency.
        let single = double_buffered_time_s(std::slice::from_ref(&run));
        assert!((single - run.total_s).abs() < 1e-12);
        // Two inferences follow the prologue + overlap formula exactly.
        let pair = [run.clone(), run.clone()];
        let expect = run.interface_s
            + run.compute_s
            + run.compute_s
            + (run.interface_s - run.compute_s).max(0.0);
        assert!((double_buffered_time_s(&pair) - expect).abs() < 1e-12);
    }

    #[test]
    fn numeric_reports_are_clean_and_path_invariant_at_babi_scale() {
        let (model, _, test) = trained();
        let accel = Accelerator::new(model, AccelConfig::default());
        let mut cache = StoryCache::new(4);
        for s in test.iter().take(6) {
            let full = accel.run(s);
            assert!(!full.numeric.stressed(), "bAbI-scale run recorded events");
            assert_eq!(full.vetoes, 0);
            // Miss-form, hit-form and composed runs report identical health.
            let miss = accel.run_cached(s, &mut cache);
            let hit = accel.run_cached(s, &mut cache);
            assert!(hit.cache_hit && !miss.cache_hit);
            assert_eq!(miss.numeric, full.numeric);
            assert_eq!(hit.numeric, full.numeric);
        }
    }

    fn pruned_config(threshold: f32) -> AccelConfig {
        AccelConfig {
            hop_prune: HopPrune::with_threshold(threshold),
            ..AccelConfig::default()
        }
    }

    #[test]
    fn hop_pruning_disabled_reports_full_schedule() {
        let (model, _, test) = trained();
        let accel = Accelerator::new(model, AccelConfig::default());
        for s in test.iter().take(6) {
            let run = accel.run(s);
            assert_eq!(run.hops_executed, 2);
            assert_eq!((run.hops_saved, run.prune_vetoes), (0, 0));
            assert!(run.mem_stream_per_hop > 0);
            assert!(run.out_stream_cycles > 0);
        }
    }

    #[test]
    fn hop_pruning_saves_cycles_without_changing_clean_runs() {
        let (model, _, test) = trained();
        let base = Accelerator::new(model.clone(), AccelConfig::default());
        let pruned = Accelerator::new(model, pruned_config(0.5));
        let mut saved_total = 0usize;
        let mut agree = 0usize;
        for s in &test {
            let b = base.run(s);
            let p = pruned.run(s);
            assert_eq!(p.hops_executed + p.hops_saved, 2);
            if p.hops_saved == 0 && p.prune_vetoes == 0 {
                // No prune fired: the flagged addressing pass is
                // bit-identical to the plain one, so the whole run matches
                // the seed datapath exactly.
                assert_eq!(p, b);
            } else if p.hops_saved > 0 {
                assert!(p.cycles < b.cycles);
                assert!(p.phases.addressing < b.phases.addressing);
            }
            saved_total += p.hops_saved;
            if p.answer == b.answer {
                agree += 1;
            }
        }
        assert!(saved_total > 0, "criterion never fired at threshold 0.5");
        // Pruned hops barely move trained bAbI answers (A2P-MANN claim).
        assert!(agree * 10 >= test.len() * 9, "{agree}/{}", test.len());
    }

    #[test]
    fn hop_pruning_is_monotone_in_threshold() {
        let (model, _, test) = trained();
        let loose = Accelerator::new(model.clone(), pruned_config(0.3));
        let tight = Accelerator::new(model, pruned_config(0.7));
        for s in &test {
            let l = loose.run(s).hops_saved;
            let t = tight.run(s).hops_saved;
            // Raising the threshold can only prune later (or never): the
            // hop trajectory is identical until the first fire, and a fire
            // at 0.8 implies one at 0.2.
            assert!(l >= t, "loose saved {l} < tight saved {t}");
        }
    }

    #[test]
    fn saturated_winner_vetoes_the_prune() {
        // Scale the embeddings until the addressing MACs saturate Q16.16
        // against a single-sentence story: the attention collapses to
        // exactly 1.0 (converged), but the winning weight is flagged, so
        // the ExitGuard-style veto keeps the full hop schedule.
        let (mut model, _, test) = trained();
        model.params.w_emb_a.scale_in_place(2000.0);
        let mut sample = test[0].clone();
        sample.sentences.truncate(1);
        let accel = Accelerator::new(model, pruned_config(1.0));
        let run = accel.run(&sample);
        assert!(run.numeric.stressed(), "MACs did not saturate");
        assert_eq!(run.hops_saved, 0, "flagged winner must not prune");
        assert!(run.prune_vetoes > 0, "veto not recorded");
        assert_eq!(run.hops_executed, 2);
    }

    #[test]
    fn batched_queries_match_per_query_runs() {
        let (model, train, test) = trained();
        let ith = mann_ith::ThresholdingCalibrator::new()
            .rho(1.0)
            .calibrate(&model, &train);
        let configs = [
            AccelConfig::default(),
            pruned_config(0.2),
            AccelConfig::with_thresholding(ClockDomain::default(), ith.clone()),
            AccelConfig {
                hop_prune: HopPrune::with_threshold(0.2),
                ..AccelConfig::with_thresholding(ClockDomain::default(), ith)
            },
        ];
        for config in configs {
            let accel = Accelerator::new(model.clone(), config);
            let story = accel.write_story(&test[0]);
            let batch: Vec<&EncodedSample> = test.iter().take(5).collect();
            let (runs, saved) = accel.query_batch(&story, &batch);
            assert_eq!(runs.len(), batch.len());
            for (run, s) in runs.iter().zip(&batch) {
                assert_eq!(run, &accel.answer_query(&story, s));
            }
            // Fused savings follow the stream-sharing formula over the
            // per-run attribution fields.
            let hops: Vec<u64> = runs.iter().map(|r| r.hops_executed as u64).collect();
            let outs: Vec<u64> = runs.iter().map(|r| r.out_stream_cycles).collect();
            let expect = runs[0].mem_stream_per_hop
                * (hops.iter().sum::<u64>() - hops.iter().copied().max().unwrap())
                + (outs.iter().sum::<u64>() - outs.iter().copied().max().unwrap());
            assert_eq!(saved, expect);
            // Degenerate batches: empty, and a group of one saves nothing.
            assert_eq!(accel.query_batch(&story, &[]), (Vec::new(), 0));
            let (single, s0) = accel.query_batch(&story, &batch[..1]);
            assert_eq!(s0, 0);
            assert_eq!(single[0], runs[0]);
        }
    }

    fn indexed_config(k: usize, nprobe: usize, band: f32) -> AccelConfig {
        AccelConfig {
            mem_index: MemIndexConfig::with_params(k, nprobe, band),
            ..AccelConfig::default()
        }
    }

    #[test]
    fn disabled_index_reports_zero_counters() {
        let (model, _, test) = trained();
        let accel = Accelerator::new(model, AccelConfig::default());
        let run = accel.run(&test[0]);
        assert_eq!(run.index, IndexCounters::default());
        let story = accel.write_story(&test[0]);
        assert_eq!(story.index_build_cycles(), Cycles::ZERO);
    }

    #[test]
    fn indexed_runs_partition_counters_and_charge_the_build() {
        let (model, _, test) = trained();
        let base = Accelerator::new(model.clone(), AccelConfig::default());
        let indexed = Accelerator::new(model, indexed_config(4, 2, 0.0));
        let mut agree = 0usize;
        for s in &test {
            let b = base.run(s);
            let r = indexed.run(s);
            assert_eq!(r.cycles, r.phases.total());
            // Every executed hop scans or skips each occupied slot once.
            let l = s.sentences.len() as u64;
            assert_eq!(
                r.index.scanned_slots + r.index.skipped_slots,
                l * r.hops_executed as u64
            );
            assert!(r.index.build_cycles > 0);
            assert!(
                r.phases.write > b.phases.write,
                "build rides the write phase"
            );
            if r.answer == b.answer {
                agree += 1;
            }
        }
        // Tiny 4-8 sentence stories are the index's worst case (candidate
        // sets of 2-4 slots); the ≥99% agreement floor is gated in
        // perf_gate at the large-memory operating point.
        assert!(agree * 10 >= test.len() * 8, "{agree}/{}", test.len());
    }

    #[test]
    fn wide_band_index_always_falls_back_to_exact_answers() {
        let (model, _, test) = trained();
        let base = Accelerator::new(model.clone(), AccelConfig::default());
        let indexed = Accelerator::new(model, indexed_config(4, 1, 1.0e9));
        for s in test.iter().take(8) {
            let b = base.run(s);
            let r = indexed.run(s);
            // Every hop rescans: answers and attention-side results match
            // the exact datapath; only probe/build overhead is added.
            assert_eq!(r.answer, b.answer);
            assert_eq!(r.comparisons, b.comparisons);
            assert_eq!(r.index.fallbacks, r.hops_executed as u64);
            assert_eq!(r.index.skipped_slots, 0);
            assert_eq!(r.index.cycles_saved, 0);
            assert!(r.phases.addressing > b.phases.addressing);
        }
    }

    #[test]
    fn indexed_split_composes_to_the_monolithic_run() {
        let (model, _, test) = trained();
        let accel = Accelerator::new(model, indexed_config(4, 2, 0.0));
        for s in test.iter().take(8) {
            let full = accel.run(s);
            let story = accel.write_story(s);
            let hit = accel.answer_query(&story, s);
            assert_eq!(hit.index.build_cycles, 0, "hit form never pays the build");
            let composed = accel.compose_uncached(&story, &hit, s);
            assert_eq!(composed, full);
        }
    }

    #[test]
    fn indexed_batched_queries_match_per_query_runs() {
        let (model, _, test) = trained();
        for config in [indexed_config(4, 1, 0.0), indexed_config(4, 1, 1.0e9)] {
            let accel = Accelerator::new(model.clone(), config);
            let story = accel.write_story(&test[0]);
            let batch: Vec<&EncodedSample> = test.iter().take(5).collect();
            let (runs, saved) = accel.query_batch(&story, &batch);
            for (run, s) in runs.iter().zip(&batch) {
                assert_eq!(run, &accel.answer_query(&story, s));
            }
            assert!(saved > 0, "read-stream sharing must survive indexing");
            let (single, s0) = accel.query_batch(&story, &batch[..1]);
            assert_eq!(single[0], runs[0]);
            // A group of one shares nothing on the read stream, and its
            // address stream is exactly its own scan.
            assert_eq!(s0, 0);
        }
    }

    #[test]
    fn power_reflects_ith_and_frequency() {
        let (model, train, _) = trained();
        let ith = mann_ith::ThresholdingCalibrator::new()
            .rho(1.0)
            .calibrate(&model, &train);
        let base25 = Accelerator::new(
            model.clone(),
            AccelConfig {
                clock: ClockDomain::mhz(25.0),
                ..AccelConfig::default()
            },
        );
        let base100 = Accelerator::new(model.clone(), AccelConfig::default());
        let ith100 = Accelerator::new(
            model,
            AccelConfig::with_thresholding(ClockDomain::default(), ith),
        );
        assert!(base100.power_w(0.2) > base25.power_w(0.4));
        assert!(ith100.power_w(0.2) > base100.power_w(0.2));
    }
}
