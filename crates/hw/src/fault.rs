//! Single-event-upset (SEU) fault injection.
//!
//! FPGA block RAM is susceptible to radiation-induced bit flips, and
//! accelerator papers routinely characterize how gracefully inference
//! degrades. This module flips random bits in the *quantized* weight words
//! (the Q16.16 BRAM image the accelerator actually holds) so the SEU
//! ablation can sweep upset counts against answer accuracy.

use mann_linalg::{Fixed, Matrix};
use memn2n::Params;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// SplitMix64-style mixer over `(seed, a, b)` — the deterministic decision
/// function behind runtime fault injection. Unlike a stateful RNG, the
/// outcome depends only on the identifiers, never on how many decisions
/// were drawn before it, so an event loop asking "does transfer `a` corrupt
/// on attempt `b`?" gets the same answer regardless of event interleaving
/// — the property that keeps fault campaigns byte-identical across thread
/// counts and engine modes.
pub fn fault_mix(seed: u64, a: u64, b: u64) -> u64 {
    let mut z =
        seed ^ a.wrapping_mul(0x9e37_79b9_7f4a_7c15) ^ b.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Deterministic biased coin built on [`fault_mix`]: true with probability
/// `prob` over the identifier space. `prob <= 0` never fires and
/// `prob >= 1` (or NaN-free garbage above 1) always fires.
pub fn fault_coin(prob: f64, seed: u64, a: u64, b: u64) -> bool {
    if prob.is_nan() || prob <= 0.0 {
        return false;
    }
    if prob >= 1.0 {
        return true;
    }
    // 53-bit uniform in [0, 1).
    let u = (fault_mix(seed, a, b) >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
    u < prob
}

/// Domain constant separating per-shard fault streams from every other
/// consumer of a campaign seed (ASCII "shard").
const STREAM_SHARD: u64 = 0x0073_6861_7264;

/// Derives one cluster shard's fault-campaign seed from the cluster-level
/// campaign seed. Built on [`fault_mix`], so a shard's plan is a pure
/// function of `(campaign seed, shard)`: serving shards in a different
/// order, adding shards, or re-running a replica pass never changes which
/// faults a given shard injects. Callers with multiple dispatch passes per
/// shard pack the pass index into the high bits of `shard`.
pub fn shard_fault_seed(seed: u64, shard: u64) -> u64 {
    fault_mix(seed ^ STREAM_SHARD, shard, 0)
}

/// Where an injected upset landed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UpsetSite {
    /// Which weight memory (index into the flattened weight list:
    /// 0 = address embedding, 1 = content embedding, 2 = controller,
    /// 3 = output, 4.. = GRU gates).
    pub memory: usize,
    /// Flat element index within that memory.
    pub element: usize,
    /// Flipped bit position (0 = LSB of the Q16.16 word).
    pub bit: u32,
}

/// Flips `upsets` uniformly random bits across the model's weight BRAMs,
/// returning the faulted parameters and the injected sites.
///
/// Injection happens in the fixed-point domain: each selected weight is
/// quantized to its Q16.16 word, one bit is flipped, and the word is
/// converted back — exactly the corruption a BRAM upset produces.
///
/// # Panics
///
/// Panics if the model has no weights (impossible for a valid [`Params`]).
pub fn inject_upsets(params: &Params, upsets: usize, seed: u64) -> (Params, Vec<UpsetSite>) {
    inject_upsets_in_bits(params, upsets, 0..32, seed)
}

/// Like [`inject_upsets`], restricted to bit positions in `bits` — lets the
/// SEU ablation separate fractional-bit upsets (bounded noise) from
/// integer/sign-bit upsets (catastrophic weight corruption).
///
/// # Panics
///
/// Panics if `bits` is empty or reaches past bit 31.
pub fn inject_upsets_in_bits(
    params: &Params,
    upsets: usize,
    bits: std::ops::Range<u32>,
    seed: u64,
) -> (Params, Vec<UpsetSite>) {
    assert!(
        !bits.is_empty() && bits.end <= 32,
        "invalid bit range {bits:?}"
    );
    let mut faulted = params.clone();
    let mut rng = StdRng::seed_from_u64(seed);
    let mut sites = Vec::with_capacity(upsets);

    // Collect mutable views of every weight memory.
    let mut memories: Vec<&mut Matrix> = vec![
        &mut faulted.w_emb_a,
        &mut faulted.w_emb_c,
        &mut faulted.w_r,
        &mut faulted.w_o,
    ];
    if let Some(g) = &mut faulted.gru {
        memories.extend(g.matrices_mut());
    }
    let sizes: Vec<usize> = memories.iter().map(|m| m.as_slice().len()).collect();
    let total: usize = sizes.iter().sum();
    assert!(total > 0, "model has no weights");

    for _ in 0..upsets {
        let mut flat = rng.gen_range(0..total);
        let mut memory = 0usize;
        while flat >= sizes[memory] {
            flat -= sizes[memory];
            memory += 1;
        }
        let bit = rng.gen_range(bits.clone());
        let slot = &mut memories[memory].as_mut_slice()[flat];
        let word = Fixed::from_f32(*slot).raw();
        *slot = Fixed::from_raw(word ^ (1 << bit)).to_f32();
        sites.push(UpsetSite {
            memory,
            element: flat,
            bit,
        });
    }
    (faulted, sites)
}

#[cfg(test)]
mod tests {
    use super::*;
    use memn2n::ModelConfig;

    fn params() -> Params {
        Params::init(
            ModelConfig {
                embed_dim: 8,
                hops: 2,
                tie_embeddings: false,
                ..ModelConfig::default()
            },
            20,
            &mut StdRng::seed_from_u64(2),
        )
    }

    #[test]
    fn fault_mix_is_deterministic_and_sensitive() {
        assert_eq!(fault_mix(1, 2, 3), fault_mix(1, 2, 3));
        assert_ne!(fault_mix(1, 2, 3), fault_mix(1, 2, 4));
        assert_ne!(fault_mix(1, 2, 3), fault_mix(1, 3, 3));
        assert_ne!(fault_mix(1, 2, 3), fault_mix(2, 2, 3));
    }

    #[test]
    fn fault_coin_edges_and_frequency() {
        for a in 0..64 {
            assert!(!fault_coin(0.0, 7, a, 0));
            assert!(!fault_coin(-1.0, 7, a, 0));
            assert!(!fault_coin(f64::NAN, 7, a, 0));
            assert!(fault_coin(1.0, 7, a, 0));
        }
        // Empirical rate over 10k identifiers lands near the target prob.
        let fires = (0..10_000).filter(|&a| fault_coin(0.25, 9, a, 1)).count();
        assert!((2_200..2_800).contains(&fires), "rate {fires}/10000");
    }

    #[test]
    fn shard_fault_seed_is_deterministic_and_shard_pure() {
        assert_eq!(shard_fault_seed(5, 0), shard_fault_seed(5, 0));
        // Distinct shards draw distinct streams from the same campaign.
        assert_ne!(shard_fault_seed(5, 0), shard_fault_seed(5, 1));
        assert_ne!(shard_fault_seed(5, 1), shard_fault_seed(5, 2));
        // A shard's stream follows the campaign seed.
        assert_ne!(shard_fault_seed(5, 0), shard_fault_seed(6, 0));
        // Domain separation: never the raw seed, and never the plain mix a
        // non-shard consumer would draw.
        assert_ne!(shard_fault_seed(5, 0), 5);
        assert_ne!(shard_fault_seed(5, 3), fault_mix(5, 3, 0));
        // Replica passes (packed into the high bits) get their own stream.
        assert_ne!(shard_fault_seed(5, 2), shard_fault_seed(5, (1 << 32) | 2));
    }

    #[test]
    fn zero_upsets_is_identity() {
        let p = params();
        let (f, sites) = inject_upsets(&p, 0, 7);
        assert_eq!(p, f);
        assert!(sites.is_empty());
    }

    #[test]
    fn each_upset_changes_exactly_one_word() {
        let p = params();
        let (f, sites) = inject_upsets(&p, 1, 9);
        assert_eq!(sites.len(), 1);
        let diff = |a: &Matrix, b: &Matrix| -> usize {
            a.as_slice()
                .iter()
                .zip(b.as_slice())
                .filter(|(x, y)| x != y)
                .count()
        };
        let total_diffs = diff(&p.w_emb_a, &f.w_emb_a)
            + diff(&p.w_emb_c, &f.w_emb_c)
            + diff(&p.w_r, &f.w_r)
            + diff(&p.w_o, &f.w_o);
        assert_eq!(total_diffs, 1);
    }

    #[test]
    fn injection_is_deterministic_per_seed() {
        let p = params();
        let (a, sa) = inject_upsets(&p, 16, 42);
        let (b, sb) = inject_upsets(&p, 16, 42);
        assert_eq!(a, b);
        assert_eq!(sa, sb);
        let (c, _) = inject_upsets(&p, 16, 43);
        assert_ne!(a, c);
    }

    #[test]
    fn high_bit_flips_perturb_more_than_low_bits() {
        // Flip the sign bit vs the LSB of the same element and compare the
        // magnitude of the change.
        let p = params();
        let base = p.w_o[(0, 0)];
        let word = Fixed::from_f32(base).raw();
        let lsb = Fixed::from_raw(word ^ 1).to_f32();
        let msb = Fixed::from_raw(word ^ (1 << 31)).to_f32();
        assert!((msb - base).abs() > (lsb - base).abs());
        assert!((lsb - base).abs() <= 2.0 / 65536.0);
    }

    #[test]
    fn bit_range_is_respected() {
        let p = params();
        let (_, sites) = inject_upsets_in_bits(&p, 200, 0..8, 5);
        assert!(sites.iter().all(|s| s.bit < 8));
        let (_, high) = inject_upsets_in_bits(&p, 200, 24..32, 5);
        assert!(high.iter().all(|s| (24..32).contains(&s.bit)));
    }

    #[test]
    #[should_panic(expected = "invalid bit range")]
    fn empty_bit_range_rejected() {
        let p = params();
        let _ = inject_upsets_in_bits(&p, 1, 8..8, 1);
    }

    #[test]
    fn gru_weights_are_injectable() {
        let cfg = ModelConfig {
            embed_dim: 6,
            hops: 1,
            tie_embeddings: false,
            controller: memn2n::ControllerKind::Gru,
        };
        let p = Params::init(cfg, 12, &mut StdRng::seed_from_u64(3));
        // With enough upsets, at least one must land in a GRU gate
        // (memory index >= 4).
        let (_, sites) = inject_upsets(&p, 500, 11);
        assert!(sites.iter().any(|s| s.memory >= 4));
    }
}
