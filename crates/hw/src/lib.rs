//! Cycle-level simulator of the FPGA dataflow accelerator (paper Fig 1).
//!
//! The accelerator is a streaming dataflow architecture: the host pushes the
//! trained model and inference data through a PCIe FIFO; the INPUT & WRITE
//! module embeds sentences by reading one embedding column per word (Eq 2)
//! and writes address/content memories; the MEM module performs
//! content-based addressing with a pipelined exponential LUT and a
//! sequential divider (Eq 1, Eq 5); the READ module is the recurrent
//! controller (Eqs 3–4); and the OUTPUT module evaluates output rows
//! sequentially (Eq 6) with optional inference-thresholding early exit.
//!
//! The simulator is *functional and timed*: every module really computes its
//! outputs on a Q16.16 fixed-point datapath ([`mann_linalg::Fixed`]) and
//! reports the cycles it occupied, so
//!
//! * answers can be cross-checked against the `f32` reference model, and
//! * inference latency, host-interface time, power, and energy follow from
//!   the same run (Table I / Fig 4).
//!
//! # Example
//!
//! ```
//! use mann_babi::{DatasetBuilder, TaskId};
//! use memn2n::{ModelConfig, TrainConfig, Trainer};
//! use mann_hw::{Accelerator, AccelConfig, ClockDomain};
//!
//! let data = DatasetBuilder::new().train_samples(30).test_samples(5).seed(1)
//!     .build_task(TaskId::SingleSupportingFact);
//! let mut trainer = Trainer::from_task_data(
//!     &data,
//!     ModelConfig { embed_dim: 16, hops: 2, ..ModelConfig::default() },
//!     TrainConfig { epochs: 3, ..TrainConfig::default() },
//! );
//! trainer.train();
//! let (model, _, test) = trainer.into_parts();
//! let accel = Accelerator::new(model, AccelConfig { clock: ClockDomain::mhz(100.0), ..AccelConfig::default() });
//! let run = accel.run(&test[0]);
//! assert!(run.cycles.get() > 0);
//! ```

pub mod adder_tree;
pub mod clock;
pub mod div_unit;
pub mod energy;
pub mod exp_unit;
pub mod fault;
pub mod fifo;
pub mod modules;
pub mod pcie;
pub mod resource;
pub mod sigmoid_unit;
pub mod trace;
pub mod write_path;

pub mod index;
pub mod story;

mod accel;
mod datapath;
mod quantize;

pub use accel::{
    double_buffered_time_s, AccelConfig, Accelerator, InferenceRun, NumericReport, PhaseCycles,
    ResidentStory,
};
pub use clock::{ClockDomain, Cycles, SimTime};
pub use datapath::DatapathConfig;
pub use energy::PowerModel;
pub use fault::{
    fault_coin, fault_mix, inject_upsets, inject_upsets_in_bits, shard_fault_seed, UpsetSite,
};
pub use index::{IndexCounters, IndexedHopStats, MemIndex, MemIndexConfig, MemIndexError};
pub use pcie::{LinkArbiter, LinkGrant, PcieLink};
pub use quantize::{quantize_params, quantize_params_tracked};
pub use resource::{ResourceEstimate, VCU107_BUDGET};
pub use story::{
    story_digest, Admission, CacheStats, LruSet, StoryCache, StoryCacheEnvError,
    DEFAULT_STORY_CACHE,
};
