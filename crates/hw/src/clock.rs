//! Clock-domain arithmetic.

use serde::{Deserialize, Serialize};

/// A cycle count (newtype over `u64` so cycle math cannot silently mix with
/// byte counts or FLOPs).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct Cycles(u64);

impl Cycles {
    /// Zero cycles.
    pub const ZERO: Cycles = Cycles(0);

    /// Wraps a raw count.
    pub fn new(count: u64) -> Self {
        Self(count)
    }

    /// The raw count.
    pub fn get(self) -> u64 {
        self.0
    }

    /// Saturating addition.
    pub fn saturating_add(self, rhs: Cycles) -> Cycles {
        Cycles(self.0.saturating_add(rhs.0))
    }
}

impl std::ops::Add for Cycles {
    type Output = Cycles;
    fn add(self, rhs: Cycles) -> Cycles {
        Cycles(self.0 + rhs.0)
    }
}

impl std::ops::AddAssign for Cycles {
    fn add_assign(&mut self, rhs: Cycles) {
        self.0 += rhs.0;
    }
}

impl std::ops::Mul<u64> for Cycles {
    type Output = Cycles;
    fn mul(self, rhs: u64) -> Cycles {
        Cycles(self.0 * rhs)
    }
}

impl std::iter::Sum for Cycles {
    fn sum<I: Iterator<Item = Cycles>>(iter: I) -> Cycles {
        iter.fold(Cycles::ZERO, |a, b| a + b)
    }
}

impl std::fmt::Display for Cycles {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} cycles", self.0)
    }
}

impl From<u64> for Cycles {
    fn from(c: u64) -> Self {
        Cycles(c)
    }
}

/// A point (or span) of simulated wall-clock time, in integer picoseconds.
///
/// The serving layer schedules events from several clock domains — fabric
/// compute at 25–100 MHz, PCIe transfers, request arrivals — onto one
/// timeline. Floating-point timestamps would make event ordering depend on
/// accumulated rounding; an integer picosecond timebase keeps every
/// comparison exact, so a discrete-event schedule replays byte-identically.
/// One picosecond resolves every paper clock (a 100 MHz cycle is 10⁴ ps)
/// and `u64` picoseconds span ~213 simulated days.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimTime(u64);

impl SimTime {
    /// Time zero.
    pub const ZERO: SimTime = SimTime(0);

    /// Picoseconds per second.
    pub const PS_PER_S: f64 = 1e12;

    /// Wraps a raw picosecond count.
    pub fn from_ps(ps: u64) -> Self {
        Self(ps)
    }

    /// Converts from seconds, rounding to the nearest picosecond.
    ///
    /// # Panics
    ///
    /// Panics if `seconds` is negative or not finite.
    pub fn from_s(seconds: f64) -> Self {
        assert!(
            seconds.is_finite() && seconds >= 0.0,
            "SimTime needs a finite non-negative duration, got {seconds}"
        );
        Self((seconds * Self::PS_PER_S).round() as u64)
    }

    /// The raw picosecond count.
    pub fn ps(self) -> u64 {
        self.0
    }

    /// The time in seconds.
    pub fn as_s(self) -> f64 {
        self.0 as f64 / Self::PS_PER_S
    }

    /// Saturating subtraction (spans never go negative).
    pub fn saturating_sub(self, rhs: SimTime) -> SimTime {
        SimTime(self.0.saturating_sub(rhs.0))
    }
}

impl std::ops::Add for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimTime) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl std::ops::AddAssign for SimTime {
    fn add_assign(&mut self, rhs: SimTime) {
        self.0 += rhs.0;
    }
}

impl std::iter::Sum for SimTime {
    fn sum<I: Iterator<Item = SimTime>>(iter: I) -> SimTime {
        iter.fold(SimTime::ZERO, |a, b| a + b)
    }
}

impl std::fmt::Display for SimTime {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} ps", self.0)
    }
}

/// An FPGA clock domain; the paper evaluates 25, 50, 75 and 100 MHz.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ClockDomain {
    freq_hz: f64,
}

impl ClockDomain {
    /// A clock at `mhz` megahertz.
    ///
    /// # Panics
    ///
    /// Panics if `mhz` is not positive.
    pub fn mhz(mhz: f64) -> Self {
        assert!(mhz > 0.0, "clock frequency must be positive");
        Self { freq_hz: mhz * 1e6 }
    }

    /// Frequency in hertz.
    pub fn freq_hz(self) -> f64 {
        self.freq_hz
    }

    /// Frequency in megahertz.
    pub fn freq_mhz(self) -> f64 {
        self.freq_hz / 1e6
    }

    /// Wall-clock seconds taken by `cycles` in this domain.
    pub fn seconds(self, cycles: Cycles) -> f64 {
        cycles.get() as f64 / self.freq_hz
    }

    /// Simulated time taken by `cycles` in this domain, rounded to the
    /// nearest picosecond (exact for the paper's 25/50/100 MHz points;
    /// 75 MHz rounds the ⅓-ps remainder).
    pub fn sim_time(self, cycles: Cycles) -> SimTime {
        SimTime::from_s(self.seconds(cycles))
    }

    /// The paper's four operating points.
    pub fn paper_frequencies() -> [ClockDomain; 4] {
        [
            Self::mhz(25.0),
            Self::mhz(50.0),
            Self::mhz(75.0),
            Self::mhz(100.0),
        ]
    }
}

impl Default for ClockDomain {
    /// 100 MHz, the paper's fastest configuration.
    fn default() -> Self {
        Self::mhz(100.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cycle_arithmetic() {
        let a = Cycles::new(10) + Cycles::new(5);
        assert_eq!(a.get(), 15);
        let mut b = a;
        b += Cycles::new(1);
        assert_eq!(b.get(), 16);
        assert_eq!((Cycles::new(3) * 4).get(), 12);
        let s: Cycles = [Cycles::new(1), Cycles::new(2)].into_iter().sum();
        assert_eq!(s.get(), 3);
    }

    #[test]
    fn saturating_add_caps() {
        let max = Cycles::new(u64::MAX);
        assert_eq!(max.saturating_add(Cycles::new(1)), max);
    }

    #[test]
    fn seconds_conversion() {
        let clk = ClockDomain::mhz(25.0);
        assert!((clk.seconds(Cycles::new(25_000_000)) - 1.0).abs() < 1e-9);
        assert!((clk.freq_mhz() - 25.0).abs() < 1e-9);
    }

    #[test]
    fn paper_frequencies_are_ascending() {
        let f = ClockDomain::paper_frequencies();
        assert_eq!(f.len(), 4);
        for w in f.windows(2) {
            assert!(w[0].freq_hz() < w[1].freq_hz());
        }
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_frequency_rejected() {
        let _ = ClockDomain::mhz(0.0);
    }

    #[test]
    fn sim_time_round_trips_and_orders() {
        let t = SimTime::from_s(130e-6);
        assert_eq!(t.ps(), 130_000_000);
        assert!((t.as_s() - 130e-6).abs() < 1e-18);
        assert!(SimTime::from_ps(1) > SimTime::ZERO);
        assert_eq!(
            SimTime::from_ps(3) + SimTime::from_ps(4),
            SimTime::from_ps(7)
        );
        assert_eq!(
            SimTime::from_ps(3).saturating_sub(SimTime::from_ps(9)),
            SimTime::ZERO
        );
        let s: SimTime = [SimTime::from_ps(1), SimTime::from_ps(2)].into_iter().sum();
        assert_eq!(s.ps(), 3);
    }

    #[test]
    fn clock_sim_time_is_exact_at_paper_frequencies() {
        // One cycle at 100 MHz is exactly 10_000 ps; 25 MHz is 40_000 ps.
        assert_eq!(
            ClockDomain::mhz(100.0).sim_time(Cycles::new(1)).ps(),
            10_000
        );
        assert_eq!(
            ClockDomain::mhz(25.0).sim_time(Cycles::new(3)).ps(),
            120_000
        );
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_sim_time_rejected() {
        let _ = SimTime::from_s(-1.0);
    }
}
