//! The sequential divider of the MEM module's softmax normalization.
//!
//! Division is the expensive, unparallelizable step the paper calls out:
//! one radix-2 restoring divider retires a quotient every `latency` cycles
//! (it is *not* pipelined — the classic area/speed trade on an FPGA).

use mann_linalg::{Fixed, NumericStatus};

use crate::Cycles;

/// A non-pipelined fixed-point divider.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DivUnit {
    latency: u64,
}

impl DivUnit {
    /// Creates a divider with the given per-operation latency.
    ///
    /// # Panics
    ///
    /// Panics if `latency == 0`.
    pub fn new(latency: u64) -> Self {
        assert!(latency > 0, "divider latency must be positive");
        Self { latency }
    }

    /// Per-operation latency in cycles.
    pub fn latency(&self) -> u64 {
        self.latency
    }

    /// Divides each numerator by `denom`, returning quotients and total
    /// occupancy (`n * latency`, sequential).
    pub fn div_batch(&self, numerators: &[Fixed], denom: Fixed) -> (Vec<Fixed>, Cycles) {
        self.div_batch_tracked(numerators, denom, &mut NumericStatus::default())
    }

    /// [`DivUnit::div_batch`] with numeric-event accounting: zero divisors
    /// and clipped quotients are recorded in `st`. The quotients are
    /// bit-identical to the untracked batch.
    pub fn div_batch_tracked(
        &self,
        numerators: &[Fixed],
        denom: Fixed,
        st: &mut NumericStatus,
    ) -> (Vec<Fixed>, Cycles) {
        let out: Vec<Fixed> = numerators
            .iter()
            .map(|&n| n.div_tracked(denom, st))
            .collect();
        let cycles = Cycles::new(numerators.len() as u64 * self.latency);
        (out, cycles)
    }
}

impl Default for DivUnit {
    /// 24-cycle divider on 32-bit operands (a radix-2 restoring divider
    /// retiring ~1.3 quotient bits per cycle).
    fn default() -> Self {
        Self { latency: 24 }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quotients_match_fixed_division() {
        let d = DivUnit::default();
        let nums: Vec<Fixed> = [1.0f32, 2.0, 3.0]
            .iter()
            .map(|&x| Fixed::from_f32(x))
            .collect();
        let (out, _) = d.div_batch(&nums, Fixed::from_f32(2.0));
        let expect = [0.5f32, 1.0, 1.5];
        for (o, e) in out.iter().zip(expect) {
            assert!((o.to_f32() - e).abs() < 1e-3);
        }
    }

    #[test]
    fn occupancy_is_sequential() {
        let d = DivUnit::new(10);
        let nums = vec![Fixed::ONE; 7];
        let (_, c) = d.div_batch(&nums, Fixed::ONE);
        assert_eq!(c.get(), 70);
    }

    #[test]
    fn divide_by_zero_saturates_not_panics() {
        let d = DivUnit::default();
        let (out, _) = d.div_batch(&[Fixed::ONE], Fixed::ZERO);
        assert_eq!(out[0], Fixed::MAX);
    }

    #[test]
    #[should_panic(expected = "latency")]
    fn zero_latency_rejected() {
        let _ = DivUnit::new(0);
    }
}
