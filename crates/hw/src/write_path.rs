//! Token-level simulation of the streaming write path.
//!
//! The phase-level model in [`Accelerator`](crate::Accelerator) charges the
//! write path `words + 2` cycles per sentence. This module re-derives that
//! number from first principles: a cycle-driven simulation of
//!
//! ```text
//! PCIe producer ─▶ FIFO_IN ─▶ CONTROL decode ─▶ embedding accumulator
//! ```
//!
//! where every stage moves one token per cycle at most, the FIFO exerts
//! real backpressure, and the PCIe producer delivers words at the link
//! bandwidth expressed in fabric cycles. The simulation yields, besides the
//! cycle count, the quantities an RTL engineer actually needs: the FIFO's
//! high-water mark (sizing), stall counts (bottleneck attribution), and the
//! overlap between transfer and compute.

use mann_babi::EncodedSample;

use crate::fifo::HwFifo;
use crate::modules::encode_sample_stream;
use crate::{ClockDomain, Cycles, PcieLink};

/// Outcome of one token-level write-path run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WritePathReport {
    /// Total cycles from first word on the link to the last memory flush.
    pub cycles: Cycles,
    /// Stream words transferred.
    pub words: usize,
    /// FIFO_IN high-water mark (directly sizes the BRAM FIFO).
    pub max_fifo_occupancy: usize,
    /// Cycles the consumer starved waiting on the link.
    pub starve_cycles: u64,
    /// Cycles the producer stalled on a full FIFO (backpressure).
    pub backpressure_cycles: u64,
    /// Cycles the decoder stalled while the accumulator flushed.
    pub flush_stall_cycles: u64,
}

/// Token-level simulator of `PCIe → FIFO_IN → CONTROL → accumulator`.
#[derive(Debug, Clone)]
pub struct WritePathSim {
    fifo_capacity: usize,
    pcie: PcieLink,
    clock: ClockDomain,
}

impl WritePathSim {
    /// Creates the simulator for a FIFO of `fifo_capacity` words.
    ///
    /// # Panics
    ///
    /// Panics if `fifo_capacity == 0`.
    pub fn new(fifo_capacity: usize, pcie: PcieLink, clock: ClockDomain) -> Self {
        assert!(fifo_capacity > 0, "FIFO capacity must be positive");
        Self {
            fifo_capacity,
            pcie,
            clock,
        }
    }

    /// Simulates streaming `sample` into the accelerator cycle by cycle.
    pub fn run(&self, sample: &EncodedSample) -> WritePathReport {
        let stream = encode_sample_stream(sample);
        let total_words = stream.len();

        // Link rate in fabric cycles per word: 4 bytes per word over the
        // configured bandwidth, converted at the fabric clock. A fast link
        // with a slow fabric delivers words faster than 1/cycle; the
        // producer still enqueues at most one word per cycle (the FIFO
        // write port is one word wide) but never starves in that case.
        let seconds_per_word = 4.0 / self.pcie.bandwidth_bytes_per_s;
        let cycles_per_word = (seconds_per_word * self.clock.freq_hz()).max(0.0);
        // DMA setup latency before the first word.
        let startup = (self.pcie.latency_per_transfer_s * self.clock.freq_hz()).round() as u64;

        let mut fifo: HwFifo<u32> = HwFifo::new(self.fifo_capacity);
        let mut produced = 0usize;
        let mut consumed = 0usize;
        let mut starve = 0u64;
        let mut backpressure = 0u64;
        let mut flush_stall = 0u64;

        // Consumer-side state machine: payload words remaining in the
        // current sentence/question, and a pending flush counter.
        let mut payload_left = 0usize;
        let mut flush_left = 0u64;

        let mut now = startup;
        // Upper bound guard: every word needs at most a handful of cycles.
        let budget = startup + (total_words as u64 + 4) * (cycles_per_word.ceil() as u64 + 8) + 64;
        while consumed < total_words || flush_left > 0 {
            assert!(now < budget, "write-path simulation failed to converge");
            // Producer: the next word is available once the link has had
            // time to deliver it.
            if produced < total_words {
                let available_at = startup + (produced as f64 * cycles_per_word).floor() as u64;
                if now >= available_at {
                    match fifo.push(stream[produced]) {
                        Ok(()) => produced += 1,
                        Err(_) => backpressure += 1,
                    }
                }
            }

            // Consumer: one stream word per cycle unless flushing.
            if flush_left > 0 {
                flush_left -= 1;
                flush_stall += 1;
            } else if let Some(word) = fifo.pop() {
                consumed += 1;
                if payload_left > 0 {
                    payload_left -= 1;
                    if payload_left == 0 {
                        // Sentence/question complete: 2-cycle accumulator
                        // flush into the memory row, during which the
                        // decoder stalls.
                        flush_left = 2;
                    }
                } else {
                    // Opcode word.
                    match crate::modules::HostWord::from_u32(word) {
                        crate::modules::HostWord::Sentence(n)
                        | crate::modules::HostWord::Question(n) => payload_left = n as usize,
                        _ => {}
                    }
                }
            } else if consumed < total_words {
                starve += 1;
            }
            now += 1;
        }

        WritePathReport {
            cycles: Cycles::new(now),
            words: total_words,
            max_fifo_occupancy: fifo.max_occupancy(),
            starve_cycles: starve,
            backpressure_cycles: backpressure,
            flush_stall_cycles: flush_stall,
        }
    }
}

impl Default for WritePathSim {
    /// 512-word FIFO on the default link at 100 MHz.
    fn default() -> Self {
        Self::new(512, PcieLink::default(), ClockDomain::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(sentences: usize, words_each: usize) -> EncodedSample {
        EncodedSample {
            sentences: (0..sentences)
                .map(|i| (0..words_each).map(|j| i * words_each + j).collect())
                .collect(),
            question: vec![1, 2],
            answer: 0,
        }
    }

    #[test]
    fn all_words_are_consumed_exactly_once() {
        let sim = WritePathSim::default();
        let s = sample(5, 4);
        let r = sim.run(&s);
        // 1 BEGIN + 5*(1+4) + 1+2 + 1 RUN.
        assert_eq!(r.words, 1 + 5 * 5 + 3 + 1);
        assert!(r.cycles.get() > r.words as u64);
    }

    #[test]
    fn tallies_are_consistent() {
        let sim = WritePathSim::default();
        let r = sim.run(&sample(8, 5));
        // Consumer cycles = words + flushes + starvation; the total must
        // cover the post-startup consumer activity.
        let flushes = (8 + 1) as u64 * 2;
        assert_eq!(r.flush_stall_cycles, flushes);
        assert!(r.cycles.get() >= r.words as u64 + flushes);
    }

    #[test]
    fn slow_fabric_never_starves() {
        // At 25 MHz the link outruns the decoder: no starvation, some
        // occupancy build-up.
        let sim = WritePathSim::new(512, PcieLink::default(), ClockDomain::mhz(25.0));
        let r = sim.run(&sample(10, 5));
        assert_eq!(r.starve_cycles, 0, "{r:?}");
        assert!(r.max_fifo_occupancy > 1);
    }

    #[test]
    fn slow_link_starves_fast_fabric() {
        let slow_link = PcieLink {
            bandwidth_bytes_per_s: 40e6, // 10 M words/s
            latency_per_transfer_s: 1e-6,
        };
        let sim = WritePathSim::new(512, slow_link, ClockDomain::mhz(400.0));
        let r = sim.run(&sample(10, 5));
        assert!(r.starve_cycles > 0, "{r:?}");
        assert!(r.max_fifo_occupancy <= 2);
    }

    #[test]
    fn tiny_fifo_exerts_backpressure_without_loss() {
        let sim = WritePathSim::new(2, PcieLink::default(), ClockDomain::mhz(25.0));
        let s = sample(12, 6);
        let r = sim.run(&s);
        assert!(r.backpressure_cycles > 0, "{r:?}");
        assert_eq!(r.words, 1 + 12 * 7 + 3 + 1);
        assert!(r.max_fifo_occupancy <= 2);
    }

    #[test]
    fn agrees_with_the_phase_level_model_within_tolerance() {
        // The analytic model charges control = words, write = words + 2 per
        // sentence; the token-level pipeline overlaps decode with delivery,
        // so its post-startup cycles must be within ~2x of the analytic sum
        // and never below the word count.
        let sim = WritePathSim::new(512, PcieLink::default(), ClockDomain::mhz(25.0));
        let s = sample(6, 5);
        let r = sim.run(&s);
        let startup = (PcieLink::default().latency_per_transfer_s * 25e6).round() as u64;
        let post_startup = r.cycles.get() - startup;
        let analytic_control = r.words as u64;
        let analytic_write = (6 * (5 + 2) + 2 + 2) as u64;
        let analytic = analytic_control + analytic_write;
        assert!(post_startup >= r.words as u64);
        assert!(
            post_startup <= 2 * analytic,
            "token-level {post_startup} vs analytic {analytic}"
        );
    }

    #[test]
    fn bigger_fifo_never_hurts_latency() {
        let s = sample(10, 6);
        let small = WritePathSim::new(4, PcieLink::default(), ClockDomain::mhz(25.0)).run(&s);
        let large = WritePathSim::new(1024, PcieLink::default(), ClockDomain::mhz(25.0)).run(&s);
        assert!(large.cycles <= small.cycles);
    }
}
