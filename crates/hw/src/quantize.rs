//! Weight quantization onto the fixed-point datapath.

use mann_linalg::{Fixed, NumericStatus};
use memn2n::Params;

/// Returns a copy of `params` with every weight pushed through the
/// `frac_bits` fixed-point grid — the numeric effect of loading the trained
/// model into the accelerator's BRAM.
///
/// # Panics
///
/// Panics if `frac_bits` is 0 or greater than 30.
pub fn quantize_params(params: &Params, frac_bits: u32) -> Params {
    quantize_params_tracked(params, frac_bits, &mut NumericStatus::default())
}

/// [`quantize_params`] with numeric-event accounting at the model-load
/// boundary: weights clipped by the fixed-point grid (or non-finite on
/// arrival) are recorded in `st`. The returned parameters are bit-identical
/// to the untracked quantization.
///
/// # Panics
///
/// Panics if `frac_bits` is 0 or greater than 30.
pub fn quantize_params_tracked(params: &Params, frac_bits: u32, st: &mut NumericStatus) -> Params {
    assert!(
        (1..=30).contains(&frac_bits),
        "frac_bits {frac_bits} outside 1..=30"
    );
    let mut q = params.clone();
    for m in [&mut q.w_emb_a, &mut q.w_emb_c, &mut q.w_r, &mut q.w_o] {
        for x in m.as_mut_slice() {
            *x = Fixed::from_f32_q_tracked(*x, frac_bits, st).to_f32();
        }
    }
    if let Some(g) = &mut q.gru {
        for m in g.matrices_mut() {
            for x in m.as_mut_slice() {
                *x = Fixed::from_f32_q_tracked(*x, frac_bits, st).to_f32();
            }
        }
    }
    q
}

#[cfg(test)]
mod tests {
    use super::*;
    use memn2n::ModelConfig;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn params() -> Params {
        Params::init(
            ModelConfig {
                embed_dim: 6,
                hops: 2,
                tie_embeddings: false,
                ..ModelConfig::default()
            },
            15,
            &mut StdRng::seed_from_u64(1),
        )
    }

    #[test]
    fn q16_16_is_nearly_lossless_for_small_weights() {
        let p = params();
        let q = quantize_params(&p, 16);
        for (a, b) in p.w_o.as_slice().iter().zip(q.w_o.as_slice()) {
            assert!((a - b).abs() <= 1.0 / 65536.0);
        }
    }

    #[test]
    fn narrow_formats_lose_more() {
        let p = params();
        let err = |q: &Params| -> f32 {
            p.w_o
                .as_slice()
                .iter()
                .zip(q.w_o.as_slice())
                .map(|(a, b)| (a - b).abs())
                .fold(0.0, f32::max)
        };
        let e16 = err(&quantize_params(&p, 16));
        let e8 = err(&quantize_params(&p, 8));
        let e4 = err(&quantize_params(&p, 4));
        assert!(e16 <= e8 && e8 <= e4, "{e16} {e8} {e4}");
    }

    #[test]
    fn quantization_is_idempotent() {
        let p = params();
        let q1 = quantize_params(&p, 8);
        let q2 = quantize_params(&q1, 8);
        assert_eq!(q1, q2);
    }

    #[test]
    #[should_panic(expected = "frac_bits")]
    fn invalid_width_rejected() {
        let _ = quantize_params(&params(), 0);
    }
}
