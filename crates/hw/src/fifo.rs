//! Bounded hardware FIFO with occupancy statistics.

/// A bounded FIFO modelling the `FIFO_IN` / `FIFO_OUT` queues between the
/// host and the accelerator and the inter-module queues of Fig 1.
///
/// `push` on a full FIFO is refused (returning the value) rather than
/// dropping — backpressure, exactly like an AXI-Stream `tready` deassert.
///
/// ```
/// use mann_hw::fifo::HwFifo;
///
/// let mut f = HwFifo::new(2);
/// assert!(f.push(1u32).is_ok());
/// assert!(f.push(2).is_ok());
/// assert_eq!(f.push(3), Err(3)); // full → backpressure
/// assert_eq!(f.pop(), Some(1));
/// ```
#[derive(Debug, Clone)]
pub struct HwFifo<T> {
    capacity: usize,
    queue: std::collections::VecDeque<T>,
    total_pushed: u64,
    max_occupancy: usize,
}

impl<T> HwFifo<T> {
    /// Creates a FIFO holding at most `capacity` elements.
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0`.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "FIFO capacity must be positive");
        Self {
            capacity,
            queue: std::collections::VecDeque::with_capacity(capacity),
            total_pushed: 0,
            max_occupancy: 0,
        }
    }

    /// Attempts to enqueue; a full FIFO refuses and hands the value back.
    ///
    /// # Errors
    ///
    /// Returns `Err(value)` when the FIFO is full (backpressure).
    pub fn push(&mut self, value: T) -> Result<(), T> {
        if self.queue.len() >= self.capacity {
            return Err(value);
        }
        self.queue.push_back(value);
        self.total_pushed += 1;
        self.max_occupancy = self.max_occupancy.max(self.queue.len());
        Ok(())
    }

    /// Dequeues the oldest element.
    pub fn pop(&mut self) -> Option<T> {
        self.queue.pop_front()
    }

    /// Current occupancy.
    pub fn len(&self) -> usize {
        self.queue.len()
    }

    /// Whether the FIFO is empty.
    pub fn is_empty(&self) -> bool {
        self.queue.is_empty()
    }

    /// Whether the FIFO is full.
    pub fn is_full(&self) -> bool {
        self.queue.len() >= self.capacity
    }

    /// Configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Total elements ever pushed (for throughput accounting).
    pub fn total_pushed(&self) -> u64 {
        self.total_pushed
    }

    /// High-water mark of occupancy (for FIFO sizing reports).
    pub fn max_occupancy(&self) -> usize {
        self.max_occupancy
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_preserves_order() {
        let mut f = HwFifo::new(4);
        for i in 0..4 {
            f.push(i).unwrap();
        }
        for i in 0..4 {
            assert_eq!(f.pop(), Some(i));
        }
        assert_eq!(f.pop(), None);
    }

    #[test]
    fn backpressure_returns_value() {
        let mut f = HwFifo::new(1);
        f.push("a").unwrap();
        assert_eq!(f.push("b"), Err("b"));
        assert!(f.is_full());
        f.pop();
        assert!(f.push("b").is_ok());
    }

    #[test]
    fn statistics_track_usage() {
        let mut f = HwFifo::new(3);
        f.push(1).unwrap();
        f.push(2).unwrap();
        f.pop();
        f.push(3).unwrap();
        assert_eq!(f.total_pushed(), 3);
        assert_eq!(f.max_occupancy(), 2);
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn zero_capacity_rejected() {
        let _ = HwFifo::<u8>::new(0);
    }
}
