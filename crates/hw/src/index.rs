//! Candidate-generation index in front of MEM: sub-linear content-based
//! addressing for large story memories.
//!
//! The MEM module's addressing pass (Eq 1) streams every occupied slot
//! through the adder tree and then pays the sequential divider once per
//! slot — O(L) in the story length, with the divider dominating at scale.
//! This module applies the paper's own "approximate MIPS" idea (inference
//! thresholding, Park et al. 2019 — there applied to OUTPUT) to address
//! memory: a small IVF-style clustering index built once per story at
//! `write_story` time narrows each addressing pass to the members of the
//! `nprobe` centroids nearest the query key, and the exact fixed-point
//! scorer runs only over those candidates.
//!
//! Safety rails mirror the established ExitGuard discipline:
//!
//! * **Margin fallback**: after exact scoring, when the best candidate
//!   score sits within `band` of the worst retained candidate's score the
//!   ranking carries no usable margin — the full exact scan runs instead,
//!   so the hop's attention is bit-identical to the unindexed datapath.
//! * **Probe saturation fallback**: a centroid walk that saturated Q16.16
//!   picked its candidates through flagged arithmetic; the hop falls back
//!   to the exact scan.
//! * **Inert when disabled**: a disabled config never builds an index and
//!   the addressing path is byte-identical to the exact scan.
//!
//! The cycle model charges the index walk to the same hardware the exact
//! scan uses: centroid dot-products take adder-tree issue slots
//! (`ceil(E/width)` per centroid) plus the tree latency, top-`nprobe`
//! selection and candidate-list gather take one bookkeeping cycle per
//! element, and the build (Lloyd assignment/update sweeps over the
//! quantized address rows) is charged to the story-upload phase.

use serde::{Deserialize, Serialize};

use mann_linalg::{Fixed, NumericStatus};

use crate::adder_tree::AdderTree;
use crate::Cycles;

/// Configuration of the addressing candidate index.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MemIndexConfig {
    /// When false, addressing runs the exact O(L) scan — the seed datapath.
    pub enabled: bool,
    /// Number of centroids built per story (clamped to the story length).
    pub k: usize,
    /// Centroids probed per hop, `1 ..= k`.
    pub nprobe: usize,
    /// Fallback margin: when the best exact candidate score is within
    /// `band` of the worst retained candidate's score, the hop falls back
    /// to the full scan. `0` falls back only on exact ties.
    pub band: f32,
}

impl Default for MemIndexConfig {
    fn default() -> Self {
        MemIndexConfig {
            enabled: false,
            k: 16,
            nprobe: 4,
            band: 0.0,
        }
    }
}

/// A malformed mem-index spec (CLI flag or `MANN_MEM_INDEX`). Invalid
/// values are rejected rather than silently falling back to the default.
#[derive(Debug, Clone, PartialEq, thiserror::Error)]
#[error(
    "invalid mem-index spec {value:?}: expected `off` or `k,nprobe,band` \
     with k >= 1, 1 <= nprobe <= k, and a finite band >= 0"
)]
pub struct MemIndexError {
    /// The rejected input.
    pub value: String,
}

impl MemIndexConfig {
    /// An enabled index with the given parameters.
    ///
    /// # Panics
    ///
    /// Panics unless `k >= 1`, `1 <= nprobe <= k`, and `band` is finite
    /// and `>= 0`.
    pub fn with_params(k: usize, nprobe: usize, band: f32) -> Self {
        assert!(k >= 1, "mem-index k {k} < 1");
        assert!(
            nprobe >= 1 && nprobe <= k,
            "mem-index nprobe {nprobe} outside 1..={k}"
        );
        assert!(
            band.is_finite() && band >= 0.0,
            "mem-index band {band} not a finite non-negative number"
        );
        MemIndexConfig {
            enabled: true,
            k,
            nprobe,
            band,
        }
    }

    /// Parses a CLI-style spec: `off` disables the index, anything else
    /// must be `k,nprobe,band`.
    ///
    /// # Errors
    ///
    /// Returns [`MemIndexError`] for malformed input: wrong arity,
    /// non-numeric parts, `k < 1`, `nprobe` outside `1..=k`, or a
    /// negative/non-finite band.
    pub fn parse(s: &str) -> Result<Self, MemIndexError> {
        if s == "off" {
            return Ok(Self::default());
        }
        let err = || MemIndexError {
            value: s.to_owned(),
        };
        let parts: Vec<&str> = s.split(',').collect();
        let [k, nprobe, band] = parts.as_slice() else {
            return Err(err());
        };
        let k: usize = k.trim().parse().map_err(|_| err())?;
        let nprobe: usize = nprobe.trim().parse().map_err(|_| err())?;
        let band: f32 = band.trim().parse().map_err(|_| err())?;
        if k < 1 || nprobe < 1 || nprobe > k || !band.is_finite() || band < 0.0 {
            return Err(err());
        }
        Ok(Self::with_params(k, nprobe, band))
    }

    /// Config from the `MANN_MEM_INDEX` environment variable, falling back
    /// to the default (off) when unset.
    ///
    /// # Errors
    ///
    /// Returns [`MemIndexError`] when the variable is set to a malformed
    /// value.
    pub fn from_env() -> Result<Self, MemIndexError> {
        match std::env::var("MANN_MEM_INDEX") {
            Err(_) => Ok(Self::default()),
            Ok(v) => Self::parse(&v),
        }
    }
}

impl std::fmt::Display for MemIndexConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.enabled {
            write!(f, "{},{},{}", self.k, self.nprobe, self.band)
        } else {
            write!(f, "off")
        }
    }
}

/// Per-inference index accounting, attributed exactly like cycle phases:
/// counters sum across hops (and compose across the story/query split).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct IndexCounters {
    /// Memory slots scored exactly (candidates, plus every slot of each
    /// fallback hop). With the index enabled,
    /// `scanned + skipped == L * hops_executed`.
    pub scanned_slots: u64,
    /// Memory slots whose exact scoring the index skipped.
    pub skipped_slots: u64,
    /// Hops that fell back to the full exact scan (tight margin or a
    /// saturated probe).
    pub fallbacks: u64,
    /// Cycles spent building the story's index (charged to INPUT & WRITE;
    /// nonzero only on runs that paid the story write).
    pub build_cycles: u64,
    /// Addressing cycles saved vs the exact-scan counterfactual, summed
    /// over hops (a fallback hop saves nothing and its probe overhead is
    /// visible in `fallbacks`).
    pub cycles_saved: u64,
}

impl std::ops::Add for IndexCounters {
    type Output = IndexCounters;
    fn add(self, rhs: IndexCounters) -> IndexCounters {
        IndexCounters {
            scanned_slots: self.scanned_slots + rhs.scanned_slots,
            skipped_slots: self.skipped_slots + rhs.skipped_slots,
            fallbacks: self.fallbacks + rhs.fallbacks,
            build_cycles: self.build_cycles + rhs.build_cycles,
            cycles_saved: self.cycles_saved + rhs.cycles_saved,
        }
    }
}

impl std::ops::AddAssign for IndexCounters {
    fn add_assign(&mut self, rhs: IndexCounters) {
        *self = *self + rhs;
    }
}

/// What one indexed addressing hop did — the per-hop slice of
/// [`IndexCounters`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IndexedHopStats {
    /// Slots scored exactly this hop.
    pub scanned: u64,
    /// Slots skipped this hop.
    pub skipped: u64,
    /// Whether the hop fell back to the full scan.
    pub fallback: bool,
}

/// The per-story IVF index: `k_eff` centroids over the quantized address
/// rows, with disjoint member lists covering every slot.
///
/// The build runs Lloyd's algorithm on the dequantized rows (squared-L2
/// assignment, deterministic `min_by` ties toward the lower centroid
/// index) and stores the final centroids re-quantized, as the BRAM would.
/// Probing scores the key against every centroid with the same tracked
/// fixed-point MAC chain the exact scan uses, keeps the `nprobe` best by
/// dot product, and returns the union of their member lists in ascending
/// slot order.
#[derive(Debug, Clone)]
pub struct MemIndex {
    config: MemIndexConfig,
    centroids: Vec<Vec<Fixed>>,
    members: Vec<Vec<usize>>,
    build_cycles: u64,
    per_dot: u64,
    tree_depth: u64,
}

/// Lloyd assignment/update sweeps run at build time.
const BUILD_ROUNDS: usize = 2;

impl MemIndex {
    /// Builds the index over `rows` (the story's quantized address rows).
    /// Quantizer events from storing the centroids land in `st`, merged
    /// into the story's write register like every other BRAM write.
    ///
    /// # Panics
    ///
    /// Panics unless `config.enabled` (a disabled config must never build).
    pub fn build(
        rows: &[Vec<Fixed>],
        config: MemIndexConfig,
        tree: &AdderTree,
        embed_dim: usize,
        st: &mut NumericStatus,
    ) -> Self {
        assert!(config.enabled, "building an index from a disabled config");
        let l = rows.len();
        let per_dot = embed_dim.div_ceil(tree.width()) as u64;
        let depth = tree.depth();
        if l == 0 {
            return MemIndex {
                config,
                centroids: Vec::new(),
                members: Vec::new(),
                build_cycles: 0,
                per_dot,
                tree_depth: depth,
            };
        }
        let k_eff = config.k.min(l);
        let rows_f: Vec<Vec<f32>> = rows
            .iter()
            .map(|r| r.iter().map(|x| x.to_f32()).collect())
            .collect();
        // Deterministic init: evenly spaced story rows.
        let mut centroids_f: Vec<Vec<f32>> =
            (0..k_eff).map(|i| rows_f[i * l / k_eff].clone()).collect();
        let assign = |centroids_f: &[Vec<f32>]| -> Vec<usize> {
            rows_f
                .iter()
                .map(|row| {
                    let mut best = 0usize;
                    let mut best_d = f32::INFINITY;
                    for (c, cent) in centroids_f.iter().enumerate() {
                        let d: f32 = row.iter().zip(cent).map(|(a, b)| (a - b) * (a - b)).sum();
                        // Strict `<` ties toward the lower centroid index.
                        if d < best_d {
                            best = c;
                            best_d = d;
                        }
                    }
                    best
                })
                .collect()
        };
        for _ in 0..BUILD_ROUNDS {
            let assignment = assign(&centroids_f);
            let mut sums = vec![vec![0.0f32; embed_dim]; k_eff];
            let mut counts = vec![0usize; k_eff];
            for (row, &c) in rows_f.iter().zip(&assignment) {
                counts[c] += 1;
                for (s, x) in sums[c].iter_mut().zip(row) {
                    *s += x;
                }
            }
            for (c, (sum, &count)) in sums.iter().zip(&counts).enumerate() {
                if count > 0 {
                    // Empty clusters keep their previous centroid.
                    centroids_f[c] = sum.iter().map(|s| s / count as f32).collect();
                }
            }
        }
        let assignment = assign(&centroids_f);
        let mut members = vec![Vec::new(); k_eff];
        for (slot, &c) in assignment.iter().enumerate() {
            members[c].push(slot); // ascending by construction
        }
        let centroids: Vec<Vec<Fixed>> = centroids_f
            .iter()
            .map(|c| c.iter().map(|&x| Fixed::from_f32_tracked(x, st)).collect())
            .collect();
        // Build cost, charged to the story-upload phase: each of the
        // `BUILD_ROUNDS + 1` assignment sweeps scores every row against
        // every centroid through the adder tree; each update sweep
        // re-accumulates every row once; storing the centroids takes one
        // BRAM write slot each.
        let sweeps = (BUILD_ROUNDS as u64 + 1) * (l as u64 * k_eff as u64 * per_dot + depth + 1);
        let updates = BUILD_ROUNDS as u64 * (l as u64 * per_dot + depth + 1);
        let build_cycles = sweeps + updates + k_eff as u64;
        MemIndex {
            config,
            centroids,
            members,
            build_cycles,
            per_dot,
            tree_depth: depth,
        }
    }

    /// The generating configuration.
    pub fn config(&self) -> &MemIndexConfig {
        &self.config
    }

    /// Number of centroids actually built (`min(k, L)`).
    pub fn centroid_count(&self) -> usize {
        self.centroids.len()
    }

    /// Cycles the build charged to the story-upload phase.
    pub fn build_cycles(&self) -> u64 {
        self.build_cycles
    }

    /// Probes the index with an already-quantized key: scores every
    /// centroid with the tracked fixed-point MAC chain, keeps the `nprobe`
    /// best by dot product (ties toward the lower centroid index), and
    /// returns `(candidates, cycles, probe_stressed)` — the union of the
    /// selected members in ascending slot order, the walk's cycle cost,
    /// and whether the centroid arithmetic recorded any numeric event
    /// (which the caller must treat as a fallback signal).
    pub fn probe(&self, key_q: &[Fixed], st: &mut NumericStatus) -> (Vec<usize>, Cycles, bool) {
        let k_eff = self.centroids.len();
        if k_eff == 0 {
            return (Vec::new(), Cycles::ZERO, false);
        }
        let mut probe_st = NumericStatus::default();
        let mut scores: Vec<Fixed> = Vec::with_capacity(k_eff);
        for cent in &self.centroids {
            let mut acc = Fixed::ZERO;
            for (x, y) in cent.iter().zip(key_q) {
                acc = acc.add_tracked(x.mul_tracked(*y, &mut probe_st), &mut probe_st);
            }
            scores.push(acc);
        }
        let nprobe = self.config.nprobe.min(k_eff);
        let mut order: Vec<usize> = (0..k_eff).collect();
        // Descending score; equal scores keep the lower centroid first.
        order.sort_by(|&a, &b| scores[b].cmp(&scores[a]).then(a.cmp(&b)));
        let mut candidates: Vec<usize> = order[..nprobe]
            .iter()
            .flat_map(|&c| self.members[c].iter().copied())
            .collect();
        candidates.sort_unstable();
        // Centroid scores through the tree, top-nprobe selection compares,
        // and one gather slot per surviving candidate.
        let cycles = Cycles::new(
            k_eff as u64 * self.per_dot
                + self.tree_depth
                + 1
                + k_eff as u64
                + candidates.len() as u64,
        );
        let stressed = probe_st.stressed();
        st.merge(&probe_st);
        (candidates, cycles, stressed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DatapathConfig;

    fn rows(l: usize, e: usize) -> Vec<Vec<Fixed>> {
        (0..l)
            .map(|i| {
                (0..e)
                    .map(|j| Fixed::from_f32(((i * 7 + j) as f32 * 0.13).sin()))
                    .collect()
            })
            .collect()
    }

    fn tree() -> AdderTree {
        AdderTree::new(DatapathConfig::default().tree_width)
    }

    #[test]
    fn default_is_off() {
        let c = MemIndexConfig::default();
        assert!(!c.enabled);
        assert_eq!(c.to_string(), "off");
    }

    #[test]
    fn parse_round_trips() {
        assert_eq!(MemIndexConfig::parse("off"), Ok(MemIndexConfig::default()));
        let c = MemIndexConfig::parse("64,8,0.5").unwrap();
        assert_eq!(c, MemIndexConfig::with_params(64, 8, 0.5));
        assert_eq!(MemIndexConfig::parse(&c.to_string()), Ok(c));
        assert_eq!(
            MemIndexConfig::parse(&MemIndexConfig::default().to_string()),
            Ok(MemIndexConfig::default())
        );
    }

    #[test]
    fn malformed_specs_are_rejected() {
        for bad in [
            "",
            "of",
            "64",
            "64,8",
            "64,8,0.5,9",
            "0,1,0",
            "8,0,0",
            "8,9,0",
            "8,4,-1",
            "8,4,NaN",
            "8,4,inf",
            "x,4,0",
            "8,y,0",
            "8,4,z",
        ] {
            let err = MemIndexConfig::parse(bad).unwrap_err();
            assert!(err.to_string().contains(bad) || bad.is_empty(), "{bad}");
        }
    }

    #[test]
    fn env_round_trip() {
        // Unset: default. (Set/invalid paths are covered through `parse`;
        // mutating the process environment races other tests.)
        if std::env::var("MANN_MEM_INDEX").is_err() {
            assert_eq!(MemIndexConfig::from_env(), Ok(MemIndexConfig::default()));
        }
    }

    #[test]
    fn members_partition_the_slots() {
        let r = rows(50, 8);
        let mut st = NumericStatus::default();
        let idx = MemIndex::build(
            &r,
            MemIndexConfig::with_params(8, 2, 0.0),
            &tree(),
            8,
            &mut st,
        );
        assert_eq!(idx.centroid_count(), 8);
        let mut all: Vec<usize> = idx.members.iter().flatten().copied().collect();
        all.sort_unstable();
        assert_eq!(all, (0..50).collect::<Vec<_>>());
        assert!(idx.build_cycles() > 0);
    }

    #[test]
    fn k_clamps_to_story_length() {
        let r = rows(3, 8);
        let mut st = NumericStatus::default();
        let idx = MemIndex::build(
            &r,
            MemIndexConfig::with_params(64, 8, 0.0),
            &tree(),
            8,
            &mut st,
        );
        assert_eq!(idx.centroid_count(), 3);
    }

    #[test]
    fn probe_returns_sorted_candidates_and_charges_cycles() {
        let r = rows(40, 8);
        let mut st = NumericStatus::default();
        let idx = MemIndex::build(
            &r,
            MemIndexConfig::with_params(8, 3, 0.0),
            &tree(),
            8,
            &mut st,
        );
        let key: Vec<Fixed> = (0..8)
            .map(|j| Fixed::from_f32((j as f32 * 0.3).cos()))
            .collect();
        let (cands, cycles, stressed) = idx.probe(&key, &mut st);
        assert!(!stressed);
        assert!(!cands.is_empty() && cands.len() < 40);
        assert!(cands.windows(2).all(|w| w[0] < w[1]), "sorted, unique");
        assert!(cycles.get() > 0);
    }

    #[test]
    fn probe_is_deterministic() {
        let r = rows(30, 8);
        let mut st = NumericStatus::default();
        let cfg = MemIndexConfig::with_params(6, 2, 0.0);
        let a = MemIndex::build(&r, cfg, &tree(), 8, &mut st);
        let b = MemIndex::build(&r, cfg, &tree(), 8, &mut st);
        let key: Vec<Fixed> = (0..8).map(|j| Fixed::from_f32(j as f32 * 0.1)).collect();
        let mut s1 = NumericStatus::default();
        let mut s2 = NumericStatus::default();
        assert_eq!(a.probe(&key, &mut s1), b.probe(&key, &mut s2));
        assert_eq!(s1, s2);
    }

    #[test]
    fn saturated_probe_reports_stress() {
        let e = 4;
        let r: Vec<Vec<Fixed>> = (0..4)
            .map(|_| (0..e).map(|_| Fixed::from_f32(30000.0)).collect())
            .collect();
        let mut st = NumericStatus::default();
        let idx = MemIndex::build(
            &r,
            MemIndexConfig::with_params(2, 1, 0.0),
            &tree(),
            e,
            &mut st,
        );
        let key: Vec<Fixed> = (0..e).map(|_| Fixed::from_f32(30000.0)).collect();
        let mut pst = NumericStatus::default();
        let (_, _, stressed) = idx.probe(&key, &mut pst);
        assert!(stressed, "saturating centroid MACs must flag the probe");
        assert!(pst.stressed());
    }

    #[test]
    #[should_panic(expected = "disabled")]
    fn building_from_a_disabled_config_panics() {
        let mut st = NumericStatus::default();
        let _ = MemIndex::build(&rows(4, 8), MemIndexConfig::default(), &tree(), 8, &mut st);
    }
}
