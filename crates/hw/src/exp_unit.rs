//! The pipelined exponential unit of the MEM module.
//!
//! Softmax cannot be parallelized on the FPGA (the paper notes the
//! exponentiation and division are the costly parts), so the MEM module
//! streams memory scores through one BRAM-LUT exponential pipeline.

use mann_linalg::activation::ExpLut;
use mann_linalg::{Fixed, NumericStatus};

use crate::Cycles;

/// A LUT-based exponential pipeline: initiation interval 1, fixed latency.
#[derive(Debug, Clone, PartialEq)]
pub struct ExpUnit {
    lut: ExpLut,
    latency: u64,
}

impl ExpUnit {
    /// Creates the unit with an explicit LUT and pipeline latency.
    pub fn new(lut: ExpLut, latency: u64) -> Self {
        Self { lut, latency }
    }

    /// Pipeline latency in cycles (address decode, BRAM read, interpolation
    /// multiply, output register).
    pub fn latency(&self) -> u64 {
        self.latency
    }

    /// The LUT in use (exposed for the LUT-size ablation).
    pub fn lut(&self) -> &ExpLut {
        &self.lut
    }

    /// Evaluates `exp(x)` for a batch of shifted scores (all `≤ 0`),
    /// returning fixed-point results and the occupancy of the pipeline:
    /// `n + latency` cycles for `n` inputs at II = 1.
    pub fn eval_batch(&self, xs: &[f32]) -> (Vec<Fixed>, Cycles) {
        self.eval_batch_tracked(xs, &mut NumericStatus::default())
    }

    /// [`ExpUnit::eval_batch`] with numeric-event accounting: non-finite or
    /// out-of-range operands at the output quantizer are recorded in `st`.
    /// The results are bit-identical to the untracked batch.
    pub fn eval_batch_tracked(&self, xs: &[f32], st: &mut NumericStatus) -> (Vec<Fixed>, Cycles) {
        let out = xs
            .iter()
            .map(|&x| Fixed::from_f32_tracked(self.lut.eval(x), st))
            .collect();
        let cycles = if xs.is_empty() {
            Cycles::ZERO
        } else {
            Cycles::new(xs.len() as u64 + self.latency)
        };
        (out, cycles)
    }
}

impl Default for ExpUnit {
    /// 256-entry LUT over `[-16, 0]`, 4-cycle latency.
    fn default() -> Self {
        Self {
            lut: ExpLut::default(),
            latency: 4,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn batch_matches_lut_pointwise() {
        let unit = ExpUnit::default();
        let xs = [-0.5f32, -1.0, -2.0, 0.0];
        let (out, _) = unit.eval_batch(&xs);
        for (o, &x) in out.iter().zip(&xs) {
            assert!((o.to_f32() - unit.lut().eval(x)).abs() < 1e-3);
        }
    }

    #[test]
    fn occupancy_is_n_plus_latency() {
        let unit = ExpUnit::default();
        let (_, c) = unit.eval_batch(&[-1.0; 10]);
        assert_eq!(c.get(), 10 + unit.latency());
        let (_, empty) = unit.eval_batch(&[]);
        assert_eq!(empty, Cycles::ZERO);
    }

    #[test]
    fn outputs_stay_in_unit_interval() {
        let unit = ExpUnit::default();
        let xs: Vec<f32> = (0..50).map(|i| -(i as f32) * 0.3).collect();
        let (out, _) = unit.eval_batch(&xs);
        for o in out {
            let v = o.to_f32();
            assert!((0.0..=1.0).contains(&v), "{v}");
        }
    }
}
