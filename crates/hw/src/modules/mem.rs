//! The MEM module: address memory (content-based addressing, Eq 1) and
//! content memory (soft read, Eq 5).
//!
//! Softmax runs element-wise and sequential, as the paper describes: scores
//! stream through the pipelined dot-product tree, a running-max register
//! stabilizes the exponent, the exp LUT pipeline produces numerators, an
//! adder tree forms the denominator, and one non-pipelined divider
//! normalizes score by score.
//!
//! Rows are stored already quantized (`Fixed`), mirroring the BRAM contents:
//! the write path converts each embedded row once, so addressing and reads
//! multiply stored words directly instead of re-quantizing per access. The
//! products and their accumulation order are exactly those of
//! [`AdderTree::fixed_dot`] over the original `f32` rows, so results are
//! bit-identical to the unquantized-storage formulation.

use mann_linalg::activation::ExpLut;
use mann_linalg::{Fixed, NumericStatus};

use crate::adder_tree::AdderTree;
use crate::div_unit::DivUnit;
use crate::exp_unit::ExpUnit;
use crate::{Cycles, DatapathConfig};

/// Address + content memory with the softmax datapath.
#[derive(Debug, Clone)]
pub struct MemModule {
    rows_a: Vec<Vec<Fixed>>,
    rows_c: Vec<Vec<Fixed>>,
    tree: AdderTree,
    exp: ExpUnit,
    div: DivUnit,
    embed_dim: usize,
}

impl MemModule {
    /// Creates an empty memory for `embed_dim`-wide rows with the given
    /// datapath.
    ///
    /// # Panics
    ///
    /// Panics if the datapath config is invalid.
    pub fn new(embed_dim: usize, dp: &DatapathConfig) -> Self {
        dp.validate().expect("valid datapath");
        Self {
            rows_a: Vec::new(),
            rows_c: Vec::new(),
            tree: AdderTree::new(dp.tree_width),
            exp: ExpUnit::new(ExpLut::new(dp.exp_lut_entries, -16.0), dp.exp_latency),
            div: DivUnit::new(dp.div_latency),
            embed_dim,
        }
    }

    /// Clears both memories (the `BEGIN_STORY` control action).
    pub fn reset(&mut self) {
        self.rows_a.clear();
        self.rows_c.clear();
    }

    /// Number of occupied memory slots `L`.
    pub fn len(&self) -> usize {
        self.rows_a.len()
    }

    /// Whether the memory holds no sentences.
    pub fn is_empty(&self) -> bool {
        self.rows_a.is_empty()
    }

    /// Writes one embedded sentence into the next slot of both memories
    /// (performed by the write path while streaming). The rows are
    /// quantized here, once, as the BRAM write port would.
    ///
    /// # Panics
    ///
    /// Panics if a row width differs from `embed_dim`.
    pub fn write(&mut self, addr_row: Vec<f32>, content_row: Vec<f32>) {
        self.write_tracked(addr_row, content_row, &mut NumericStatus::default());
    }

    /// [`MemModule::write`] with numeric-event accounting at the BRAM write
    /// port's quantizer. Stored rows are bit-identical to the untracked
    /// write.
    ///
    /// # Panics
    ///
    /// Panics if a row width differs from `embed_dim`.
    pub fn write_tracked(
        &mut self,
        addr_row: Vec<f32>,
        content_row: Vec<f32>,
        st: &mut NumericStatus,
    ) {
        assert_eq!(addr_row.len(), self.embed_dim, "address row width");
        assert_eq!(content_row.len(), self.embed_dim, "content row width");
        self.rows_a.push(
            addr_row
                .into_iter()
                .map(|x| Fixed::from_f32_tracked(x, st))
                .collect(),
        );
        self.rows_c.push(
            content_row
                .into_iter()
                .map(|x| Fixed::from_f32_tracked(x, st))
                .collect(),
        );
    }

    /// Content-based addressing (Eq 1): returns the attention weights and
    /// the cycles of the score/softmax pipeline.
    pub fn address(&self, key: &[f32]) -> (Vec<f32>, Cycles) {
        let mut attention = Vec::new();
        let cycles = self.address_into(key, &mut attention);
        (attention, cycles)
    }

    /// [`MemModule::address`] with the attention written into a caller-owned
    /// buffer whose capacity is reused across hops. Values and cycle counts
    /// are identical to [`MemModule::address`].
    pub fn address_into(&self, key: &[f32], attention: &mut Vec<f32>) -> Cycles {
        self.address_into_tracked(key, attention, &mut NumericStatus::default())
    }

    /// [`MemModule::address_into`] with numeric-event accounting across the
    /// key quantizer, the score MACs, the max-shift subtractor, the exp
    /// pipeline, the denominator tree and the divider. Attention values and
    /// cycle counts are identical to the untracked pass.
    pub fn address_into_tracked(
        &self,
        key: &[f32],
        attention: &mut Vec<f32>,
        st: &mut NumericStatus,
    ) -> Cycles {
        attention.clear();
        let l = self.rows_a.len();
        if l == 0 {
            return Cycles::ZERO;
        }
        // The key is quantized once per addressing pass; each score is the
        // in-order product sum `fixed_dot` would produce.
        let key_q: Vec<Fixed> = key
            .iter()
            .map(|&y| Fixed::from_f32_tracked(y, st))
            .collect();
        let mut scores = Vec::with_capacity(l);
        let mut scores_fx = Vec::with_capacity(l);
        let mut score_cycles = Cycles::ZERO;
        let per_dot = (self.embed_dim.div_ceil(self.tree.width())) as u64;
        for row in &self.rows_a {
            let mut acc = Fixed::ZERO;
            for (x, y) in row.iter().zip(&key_q) {
                acc = acc.add_tracked(x.mul_tracked(*y, st), st);
            }
            scores.push(acc.to_f32());
            scores_fx.push(acc);
            // II = issues-per-dot; latency amortized below.
            score_cycles += Cycles::new(per_dot);
        }
        score_cycles += Cycles::new(self.tree.depth() + 1);

        // Stable softmax: running max costs nothing extra (register compare
        // overlapped with the score pass).
        let max = scores.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        // Shadow the shift through the fixed-point score registers so the
        // status register sees what the hardware subtractor would; the
        // functional value below stays the f32 shift, byte-for-byte.
        let max_fx = scores_fx.iter().copied().max().unwrap_or(Fixed::ZERO);
        for s_fx in &scores_fx {
            let _ = s_fx.sub_tracked(max_fx, st);
        }
        let shifted: Vec<f32> = scores.iter().map(|s| s - max).collect();
        let (exps, exp_cycles) = self.exp.eval_batch_tracked(&shifted, st);

        // Denominator via the adder tree.
        let (denom, sum_cycles) = self.tree.reduce_tracked(&exps, st);

        // Sequential normalization.
        let (normalized, div_cycles) = self.div.div_batch_tracked(&exps, denom, st);
        if denom.is_zero() {
            // Divider guard: all-flushed exponents fall back to uniform.
            attention.resize(l, 1.0 / l as f32);
        } else {
            attention.extend(normalized.into_iter().map(Fixed::to_f32));
        }

        score_cycles + exp_cycles + sum_cycles + div_cycles
    }

    /// Soft read (Eq 5): weighted sum of content rows.
    pub fn read(&self, attention: &[f32]) -> (Vec<f32>, Cycles) {
        let mut out = Vec::new();
        let cycles = self.read_into(attention, &mut out);
        (out, cycles)
    }

    /// [`MemModule::read`] with the read vector written into a caller-owned
    /// buffer whose capacity is reused across hops. Per output element the
    /// fixed-point accumulation visits the rows in the same order as
    /// [`MemModule::read`], so results are identical.
    pub fn read_into(&self, attention: &[f32], out: &mut Vec<f32>) -> Cycles {
        self.read_into_tracked(attention, out, &mut NumericStatus::default())
    }

    /// [`MemModule::read_into`] with numeric-event accounting across the
    /// attention quantizer and the weighted-sum MACs. Values and cycle
    /// counts are identical to the untracked read.
    ///
    /// # Panics
    ///
    /// Panics if the attention length differs from the occupied slots.
    pub fn read_into_tracked(
        &self,
        attention: &[f32],
        out: &mut Vec<f32>,
        st: &mut NumericStatus,
    ) -> Cycles {
        assert_eq!(attention.len(), self.rows_c.len(), "attention length");
        out.clear();
        out.reserve(self.embed_dim);
        // Attention weights are quantized once, not once per output element.
        let att_q: Vec<Fixed> = attention
            .iter()
            .map(|&a| Fixed::from_f32_tracked(a, st))
            .collect();
        for j in 0..self.embed_dim {
            let mut acc = Fixed::ZERO;
            for (a, row) in att_q.iter().zip(&self.rows_c) {
                acc = acc.add_tracked(a.mul_tracked(row[j], st), st);
            }
            out.push(acc.to_f32());
        }
        let per_row = (self.embed_dim.div_ceil(self.tree.width())) as u64;
        Cycles::new(self.rows_c.len() as u64 * per_row + self.tree.depth() + 1)
    }

    /// The stored (quantized) address row `i`, dequantized — for
    /// cross-checking against reference computations.
    pub fn addr_row_f32(&self, i: usize) -> Vec<f32> {
        self.rows_a[i].iter().map(|x| x.to_f32()).collect()
    }

    /// The stored (quantized) content row `i`, dequantized.
    pub fn content_row_f32(&self, i: usize) -> Vec<f32> {
        self.rows_c[i].iter().map(|x| x.to_f32()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn filled(l: usize, e: usize) -> MemModule {
        let mut m = MemModule::new(e, &DatapathConfig::default());
        for i in 0..l {
            let row_a: Vec<f32> = (0..e).map(|j| ((i + j) as f32 * 0.1).sin()).collect();
            let row_c: Vec<f32> = (0..e).map(|j| ((i * j) as f32 * 0.1).cos()).collect();
            m.write(row_a, row_c);
        }
        m
    }

    #[test]
    fn attention_is_a_distribution() {
        let m = filled(6, 8);
        let key: Vec<f32> = (0..8).map(|i| (i as f32 * 0.3).cos()).collect();
        let (a, cycles) = m.address(&key);
        assert_eq!(a.len(), 6);
        let sum: f32 = a.iter().sum();
        assert!((sum - 1.0).abs() < 1e-2, "{sum}");
        assert!(a.iter().all(|&x| x >= 0.0));
        assert!(cycles.get() > 0);
    }

    #[test]
    fn attention_matches_float_softmax_closely() {
        let m = filled(5, 8);
        let key: Vec<f32> = vec![0.5; 8];
        let (a, _) = m.address(&key);
        // Reference float computation over the stored rows.
        let scores: Vec<f32> = (0..5)
            .map(|i| m.addr_row_f32(i).iter().zip(&key).map(|(x, y)| x * y).sum())
            .collect();
        let max = scores.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        let exps: Vec<f32> = scores.iter().map(|s| (s - max).exp()).collect();
        let z: f32 = exps.iter().sum();
        for (hw, sw) in a.iter().zip(exps.iter().map(|e| e / z)) {
            assert!((hw - sw).abs() < 5e-3, "{hw} vs {sw}");
        }
    }

    #[test]
    fn quantized_storage_matches_fixed_dot_scores() {
        // The stored-row accumulation must equal the adder tree's
        // quantize-at-access dot over the original f32 rows, bit for bit.
        let e = 8;
        let rows: Vec<Vec<f32>> = (0..5)
            .map(|i| (0..e).map(|j| ((i * 3 + j) as f32 * 0.17).sin()).collect())
            .collect();
        let mut m = MemModule::new(e, &DatapathConfig::default());
        for r in &rows {
            m.write(r.clone(), r.clone());
        }
        let key: Vec<f32> = (0..e).map(|j| (j as f32 * 0.4).cos()).collect();
        let tree = AdderTree::new(DatapathConfig::default().tree_width);
        let key_q: Vec<Fixed> = key.iter().map(|&y| Fixed::from_f32(y)).collect();
        for (i, r) in rows.iter().enumerate() {
            let (expect, _) = tree.fixed_dot(r, &key);
            let mut acc = Fixed::ZERO;
            for (x, y) in m.rows_a[i].iter().zip(&key_q) {
                acc += *x * *y;
            }
            assert_eq!(acc, expect, "row {i}");
        }
    }

    #[test]
    fn read_is_attention_weighted_sum() {
        let m = filled(3, 4);
        let attention = vec![1.0, 0.0, 0.0];
        let (r, _) = m.read(&attention);
        for (x, y) in r.iter().zip(&m.content_row_f32(0)) {
            assert!((x - y).abs() < 1e-3);
        }
    }

    #[test]
    fn reset_empties_memory() {
        let mut m = filled(4, 4);
        assert_eq!(m.len(), 4);
        m.reset();
        assert!(m.is_empty());
        let (a, c) = (m.address(&[0.0; 4]).0, m.address(&[0.0; 4]).1);
        assert!(a.is_empty());
        assert_eq!(c, Cycles::ZERO);
    }

    #[test]
    fn addressing_cycles_grow_with_memory_size() {
        let key = vec![0.1f32; 8];
        let small = filled(4, 8).address(&key).1;
        let large = filled(16, 8).address(&key).1;
        assert!(large > small);
    }

    #[test]
    fn divider_dominates_addressing_time() {
        // With the default datapath (div latency 16, tree width 8), the
        // sequential divider is the largest addressing term — the paper's
        // motivation for calling softmax costly.
        let m = filled(10, 32);
        let key = vec![0.1f32; 32];
        let (_, total) = m.address(&key);
        let div_only = 10 * DatapathConfig::default().div_latency;
        assert!(total.get() > div_only, "{total} vs divider {div_only}");
        assert!(div_only as f64 / total.get() as f64 > 0.3);
    }

    #[test]
    #[should_panic(expected = "width")]
    fn wrong_row_width_panics() {
        let mut m = MemModule::new(4, &DatapathConfig::default());
        m.write(vec![0.0; 3], vec![0.0; 4]);
    }
}
