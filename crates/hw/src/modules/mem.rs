//! The MEM module: address memory (content-based addressing, Eq 1) and
//! content memory (soft read, Eq 5).
//!
//! Softmax runs element-wise and sequential, as the paper describes: scores
//! stream through the pipelined dot-product tree, a running-max register
//! stabilizes the exponent, the exp LUT pipeline produces numerators, an
//! adder tree forms the denominator, and one non-pipelined divider
//! normalizes score by score.
//!
//! Rows are stored already quantized (`Fixed`), mirroring the BRAM contents:
//! the write path converts each embedded row once, so addressing and reads
//! multiply stored words directly instead of re-quantizing per access. The
//! products and their accumulation order are exactly those of
//! [`AdderTree::fixed_dot`] over the original `f32` rows, so results are
//! bit-identical to the unquantized-storage formulation.

use mann_linalg::activation::ExpLut;
use mann_linalg::{Fixed, NumericStatus};

use crate::adder_tree::AdderTree;
use crate::div_unit::DivUnit;
use crate::exp_unit::ExpUnit;
use crate::index::{IndexedHopStats, MemIndex, MemIndexConfig};
use crate::{Cycles, DatapathConfig};

/// Address + content memory with the softmax datapath.
#[derive(Debug, Clone)]
pub struct MemModule {
    rows_a: Vec<Vec<Fixed>>,
    rows_c: Vec<Vec<Fixed>>,
    tree: AdderTree,
    exp: ExpUnit,
    div: DivUnit,
    embed_dim: usize,
    index: Option<MemIndex>,
}

impl MemModule {
    /// Creates an empty memory for `embed_dim`-wide rows with the given
    /// datapath.
    ///
    /// # Panics
    ///
    /// Panics if the datapath config is invalid.
    pub fn new(embed_dim: usize, dp: &DatapathConfig) -> Self {
        dp.validate().expect("valid datapath");
        Self {
            rows_a: Vec::new(),
            rows_c: Vec::new(),
            tree: AdderTree::new(dp.tree_width),
            exp: ExpUnit::new(ExpLut::new(dp.exp_lut_entries, -16.0), dp.exp_latency),
            div: DivUnit::new(dp.div_latency),
            embed_dim,
            index: None,
        }
    }

    /// Clears both memories (the `BEGIN_STORY` control action). Any
    /// candidate index built over the previous story is dropped with it.
    pub fn reset(&mut self) {
        self.rows_a.clear();
        self.rows_c.clear();
        self.index = None;
    }

    /// Number of occupied memory slots `L`.
    pub fn len(&self) -> usize {
        self.rows_a.len()
    }

    /// Whether the memory holds no sentences.
    pub fn is_empty(&self) -> bool {
        self.rows_a.is_empty()
    }

    /// The raw Q16.16 words of both memories (address rows then content
    /// rows, row-major): the exact bits a durable story journal must
    /// persist to rebuild this memory without re-embedding.
    pub fn raw_words(&self) -> Vec<i32> {
        self.rows_a
            .iter()
            .chain(&self.rows_c)
            .flat_map(|row| row.iter().map(|x| x.raw()))
            .collect()
    }

    /// Writes one embedded sentence into the next slot of both memories
    /// (performed by the write path while streaming). The rows are
    /// quantized here, once, as the BRAM write port would.
    ///
    /// # Panics
    ///
    /// Panics if a row width differs from `embed_dim`.
    pub fn write(&mut self, addr_row: Vec<f32>, content_row: Vec<f32>) {
        self.write_tracked(addr_row, content_row, &mut NumericStatus::default());
    }

    /// [`MemModule::write`] with numeric-event accounting at the BRAM write
    /// port's quantizer. Stored rows are bit-identical to the untracked
    /// write.
    ///
    /// # Panics
    ///
    /// Panics if a row width differs from `embed_dim`.
    pub fn write_tracked(
        &mut self,
        addr_row: Vec<f32>,
        content_row: Vec<f32>,
        st: &mut NumericStatus,
    ) {
        assert_eq!(addr_row.len(), self.embed_dim, "address row width");
        assert_eq!(content_row.len(), self.embed_dim, "content row width");
        self.rows_a.push(
            addr_row
                .into_iter()
                .map(|x| Fixed::from_f32_tracked(x, st))
                .collect(),
        );
        self.rows_c.push(
            content_row
                .into_iter()
                .map(|x| Fixed::from_f32_tracked(x, st))
                .collect(),
        );
    }

    /// Content-based addressing (Eq 1): returns the attention weights and
    /// the cycles of the score/softmax pipeline.
    pub fn address(&self, key: &[f32]) -> (Vec<f32>, Cycles) {
        let mut attention = Vec::new();
        let cycles = self.address_into(key, &mut attention);
        (attention, cycles)
    }

    /// [`MemModule::address`] with the attention written into a caller-owned
    /// buffer whose capacity is reused across hops. Values and cycle counts
    /// are identical to [`MemModule::address`].
    pub fn address_into(&self, key: &[f32], attention: &mut Vec<f32>) -> Cycles {
        self.address_into_tracked(key, attention, &mut NumericStatus::default())
    }

    /// [`MemModule::address_into`] with numeric-event accounting across the
    /// key quantizer, the score MACs, the max-shift subtractor, the exp
    /// pipeline, the denominator tree and the divider. Attention values and
    /// cycle counts are identical to the untracked pass.
    pub fn address_into_tracked(
        &self,
        key: &[f32],
        attention: &mut Vec<f32>,
        st: &mut NumericStatus,
    ) -> Cycles {
        attention.clear();
        let l = self.rows_a.len();
        if l == 0 {
            return Cycles::ZERO;
        }
        // The key is quantized once per addressing pass; each score is the
        // in-order product sum `fixed_dot` would produce.
        let key_q: Vec<Fixed> = key
            .iter()
            .map(|&y| Fixed::from_f32_tracked(y, st))
            .collect();
        let mut scores = Vec::with_capacity(l);
        let mut scores_fx = Vec::with_capacity(l);
        let mut score_cycles = Cycles::ZERO;
        let per_dot = (self.embed_dim.div_ceil(self.tree.width())) as u64;
        for row in &self.rows_a {
            let mut acc = Fixed::ZERO;
            for (x, y) in row.iter().zip(&key_q) {
                acc = acc.add_tracked(x.mul_tracked(*y, st), st);
            }
            scores.push(acc.to_f32());
            scores_fx.push(acc);
            // II = issues-per-dot; latency amortized below.
            score_cycles += Cycles::new(per_dot);
        }
        score_cycles += Cycles::new(self.tree.depth() + 1);
        score_cycles + self.softmax_tail(&scores, &scores_fx, attention, st)
    }

    /// [`MemModule::address_into_tracked`] with per-row numeric provenance:
    /// `flags[i]` reports whether attention weight `i` was computed through
    /// flagged arithmetic — the key quantizer or row `i`'s score MACs
    /// saturated, or the shared softmax tail (shift/exp/denominator/divide,
    /// which touches every weight) recorded any event. Attention values,
    /// cycle counts and the merged status in `st` are identical to the
    /// unflagged pass: [`NumericStatus::merge`] is a field-wise saturating
    /// sum, so splitting the accounting into per-row registers and merging
    /// them back cannot change the totals.
    ///
    /// The hop-prune veto consults `flags[argmax]`: a converged-looking
    /// maximum that rode saturated arithmetic must not end the hop loop.
    pub fn address_flagged_into_tracked(
        &self,
        key: &[f32],
        attention: &mut Vec<f32>,
        st: &mut NumericStatus,
        flags: &mut Vec<bool>,
    ) -> Cycles {
        attention.clear();
        flags.clear();
        let l = self.rows_a.len();
        if l == 0 {
            return Cycles::ZERO;
        }
        let mut key_st = NumericStatus::default();
        let key_q: Vec<Fixed> = key
            .iter()
            .map(|&y| Fixed::from_f32_tracked(y, &mut key_st))
            .collect();
        let mut rows_st = NumericStatus::default();
        let mut scores = Vec::with_capacity(l);
        let mut scores_fx = Vec::with_capacity(l);
        let mut score_cycles = Cycles::ZERO;
        let per_dot = (self.embed_dim.div_ceil(self.tree.width())) as u64;
        for row in &self.rows_a {
            let mut row_st = NumericStatus::default();
            let mut acc = Fixed::ZERO;
            for (x, y) in row.iter().zip(&key_q) {
                acc = acc.add_tracked(x.mul_tracked(*y, &mut row_st), &mut row_st);
            }
            flags.push(key_st.stressed() || row_st.stressed());
            rows_st.merge(&row_st);
            scores.push(acc.to_f32());
            scores_fx.push(acc);
            score_cycles += Cycles::new(per_dot);
        }
        score_cycles += Cycles::new(self.tree.depth() + 1);
        let mut tail_st = NumericStatus::default();
        let tail_cycles = self.softmax_tail(&scores, &scores_fx, attention, &mut tail_st);
        if tail_st.stressed() {
            // The normalization chain feeds every weight: flag them all.
            for f in flags.iter_mut() {
                *f = true;
            }
        }
        st.merge(&key_st);
        st.merge(&rows_st);
        st.merge(&tail_st);
        score_cycles + tail_cycles
    }

    /// Batched content-based addressing for queries sharing this story:
    /// each address row is fetched once and scored against every key while
    /// resident, instead of one full row stream per query. Per `(query,
    /// row)` pair the MAC order — and the per-query softmax tail — are
    /// exactly those of [`MemModule::address_into_tracked`], so every
    /// attention vector, cycle count and status register is bit-identical
    /// to the per-query call. Returned cycles are the *standalone*
    /// per-query counts; the sharing the fused stream saves is accounted by
    /// the caller (see `Accelerator::query_batch`).
    ///
    /// # Panics
    ///
    /// Panics if `keys` and `sts` lengths differ.
    pub fn address_batch_into_tracked(
        &self,
        keys: &[Vec<f32>],
        attentions: &mut Vec<Vec<f32>>,
        sts: &mut [NumericStatus],
    ) -> Vec<Cycles> {
        let mut flags = Vec::new();
        self.address_batch_flagged_into_tracked(keys, attentions, sts, &mut flags)
    }

    /// [`MemModule::address_batch_into_tracked`] with the per-row numeric
    /// provenance of [`MemModule::address_flagged_into_tracked`] for every
    /// query: `flags[q][i]` marks attention weight `i` of query `q` as
    /// computed through flagged arithmetic. Values, cycles and merged
    /// statuses remain bit-identical to the per-query calls.
    ///
    /// # Panics
    ///
    /// Panics if `keys` and `sts` lengths differ.
    pub fn address_batch_flagged_into_tracked(
        &self,
        keys: &[Vec<f32>],
        attentions: &mut Vec<Vec<f32>>,
        sts: &mut [NumericStatus],
        flags: &mut Vec<Vec<bool>>,
    ) -> Vec<Cycles> {
        assert_eq!(keys.len(), sts.len(), "one status register per query");
        attentions.clear();
        attentions.resize(keys.len(), Vec::new());
        flags.clear();
        flags.resize(keys.len(), Vec::new());
        let l = self.rows_a.len();
        if l == 0 {
            return vec![Cycles::ZERO; keys.len()];
        }
        let mut key_sts = vec![NumericStatus::default(); keys.len()];
        let keys_q: Vec<Vec<Fixed>> = keys
            .iter()
            .zip(key_sts.iter_mut())
            .map(|(key, st)| {
                key.iter()
                    .map(|&y| Fixed::from_f32_tracked(y, st))
                    .collect()
            })
            .collect();
        let mut rows_sts = vec![NumericStatus::default(); keys.len()];
        let mut scores = vec![Vec::with_capacity(l); keys.len()];
        let mut scores_fx = vec![Vec::with_capacity(l); keys.len()];
        // Shared story stream: each address row is fetched once and scored
        // against every key while resident.
        for row in &self.rows_a {
            for (q, key_q) in keys_q.iter().enumerate() {
                let mut row_st = NumericStatus::default();
                let mut acc = Fixed::ZERO;
                for (x, y) in row.iter().zip(key_q) {
                    acc = acc.add_tracked(x.mul_tracked(*y, &mut row_st), &mut row_st);
                }
                flags[q].push(key_sts[q].stressed() || row_st.stressed());
                rows_sts[q].merge(&row_st);
                scores[q].push(acc.to_f32());
                scores_fx[q].push(acc);
            }
        }
        let per_dot = (self.embed_dim.div_ceil(self.tree.width())) as u64;
        let score_cycles = Cycles::new(l as u64 * per_dot + self.tree.depth() + 1);
        (0..keys.len())
            .map(|q| {
                let mut tail_st = NumericStatus::default();
                let tail_cycles =
                    self.softmax_tail(&scores[q], &scores_fx[q], &mut attentions[q], &mut tail_st);
                if tail_st.stressed() {
                    for f in flags[q].iter_mut() {
                        *f = true;
                    }
                }
                sts[q].merge(&key_sts[q]);
                sts[q].merge(&rows_sts[q]);
                sts[q].merge(&tail_st);
                score_cycles + tail_cycles
            })
            .collect()
    }

    /// The softmax pipeline tail shared by every addressing variant:
    /// running max, fixed-point shift shadow, exp LUT, adder-tree
    /// denominator, sequential divider, and the all-flushed uniform
    /// fallback.
    fn softmax_tail(
        &self,
        scores: &[f32],
        scores_fx: &[Fixed],
        attention: &mut Vec<f32>,
        st: &mut NumericStatus,
    ) -> Cycles {
        // Stable softmax: running max costs nothing extra (register compare
        // overlapped with the score pass).
        let max = scores.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        // Shadow the shift through the fixed-point score registers so the
        // status register sees what the hardware subtractor would; the
        // functional value below stays the f32 shift, byte-for-byte.
        let max_fx = scores_fx.iter().copied().max().unwrap_or(Fixed::ZERO);
        for s_fx in scores_fx {
            let _ = s_fx.sub_tracked(max_fx, st);
        }
        let shifted: Vec<f32> = scores.iter().map(|s| s - max).collect();
        let (exps, exp_cycles) = self.exp.eval_batch_tracked(&shifted, st);

        // Denominator via the adder tree.
        let (denom, sum_cycles) = self.tree.reduce_tracked(&exps, st);

        // Sequential normalization.
        let (normalized, div_cycles) = self.div.div_batch_tracked(&exps, denom, st);
        if denom.is_zero() {
            // Divider guard: all-flushed exponents fall back to uniform.
            attention.resize(scores.len(), 1.0 / scores.len() as f32);
        } else {
            attention.extend(normalized.into_iter().map(Fixed::to_f32));
        }
        exp_cycles + sum_cycles + div_cycles
    }

    /// Soft read (Eq 5): weighted sum of content rows.
    pub fn read(&self, attention: &[f32]) -> (Vec<f32>, Cycles) {
        let mut out = Vec::new();
        let cycles = self.read_into(attention, &mut out);
        (out, cycles)
    }

    /// [`MemModule::read`] with the read vector written into a caller-owned
    /// buffer whose capacity is reused across hops. Per output element the
    /// fixed-point accumulation visits the rows in the same order as
    /// [`MemModule::read`], so results are identical.
    pub fn read_into(&self, attention: &[f32], out: &mut Vec<f32>) -> Cycles {
        self.read_into_tracked(attention, out, &mut NumericStatus::default())
    }

    /// [`MemModule::read_into`] with numeric-event accounting across the
    /// attention quantizer and the weighted-sum MACs. Values and cycle
    /// counts are identical to the untracked read.
    ///
    /// # Panics
    ///
    /// Panics if the attention length differs from the occupied slots.
    pub fn read_into_tracked(
        &self,
        attention: &[f32],
        out: &mut Vec<f32>,
        st: &mut NumericStatus,
    ) -> Cycles {
        assert_eq!(attention.len(), self.rows_c.len(), "attention length");
        out.clear();
        out.reserve(self.embed_dim);
        // Attention weights are quantized once, not once per output element.
        let att_q: Vec<Fixed> = attention
            .iter()
            .map(|&a| Fixed::from_f32_tracked(a, st))
            .collect();
        for j in 0..self.embed_dim {
            let mut acc = Fixed::ZERO;
            for (a, row) in att_q.iter().zip(&self.rows_c) {
                acc = acc.add_tracked(a.mul_tracked(row[j], st), st);
            }
            out.push(acc.to_f32());
        }
        let per_row = (self.embed_dim.div_ceil(self.tree.width())) as u64;
        Cycles::new(self.rows_c.len() as u64 * per_row + self.tree.depth() + 1)
    }

    /// Batched soft read for queries sharing this story: each content
    /// column is streamed once and accumulated against every query's
    /// attention weights while resident. Per `(query, element)` pair the
    /// accumulation visits the rows in the same order as
    /// [`MemModule::read_into_tracked`], so outputs, cycles and status
    /// registers are bit-identical to the per-query call. Returned cycles
    /// are the standalone per-query counts (see
    /// [`MemModule::address_batch_into_tracked`] for the fusion
    /// accounting).
    ///
    /// # Panics
    ///
    /// Panics if `attentions` and `sts` lengths differ, or any attention
    /// length differs from the occupied slots.
    pub fn read_batch_into_tracked(
        &self,
        attentions: &[Vec<f32>],
        outs: &mut Vec<Vec<f32>>,
        sts: &mut [NumericStatus],
    ) -> Vec<Cycles> {
        assert_eq!(attentions.len(), sts.len(), "one status register per query");
        outs.clear();
        outs.resize(attentions.len(), Vec::new());
        let atts_q: Vec<Vec<Fixed>> = attentions
            .iter()
            .zip(sts.iter_mut())
            .map(|(attention, st)| {
                assert_eq!(attention.len(), self.rows_c.len(), "attention length");
                attention
                    .iter()
                    .map(|&a| Fixed::from_f32_tracked(a, st))
                    .collect()
            })
            .collect();
        for out in outs.iter_mut() {
            out.reserve(self.embed_dim);
        }
        for j in 0..self.embed_dim {
            for (q, att_q) in atts_q.iter().enumerate() {
                let mut acc = Fixed::ZERO;
                for (a, row) in att_q.iter().zip(&self.rows_c) {
                    acc = acc.add_tracked(a.mul_tracked(row[j], &mut sts[q]), &mut sts[q]);
                }
                outs[q].push(acc.to_f32());
            }
        }
        let per_row = (self.embed_dim.div_ceil(self.tree.width())) as u64;
        let cycles = Cycles::new(self.rows_c.len() as u64 * per_row + self.tree.depth() + 1);
        vec![cycles; attentions.len()]
    }

    /// Per-hop row-stream issue slots a fused same-story query shares with
    /// the batch leader: the address-score stream plus the soft-read
    /// stream, `L * ceil(E / width)` slots each. Pipeline latencies (tree
    /// depth, exp, divider) stay per query — they are not shared.
    pub fn stream_cycles_per_hop(&self) -> u64 {
        let per_dot = self.embed_dim.div_ceil(self.tree.width()) as u64;
        2 * self.rows_a.len() as u64 * per_dot
    }

    /// Issue slots one stored row occupies on the score (or read) stream:
    /// `ceil(E / width)` — the unit of the candidate-index savings
    /// accounting.
    pub fn slots_per_row(&self) -> u64 {
        self.embed_dim.div_ceil(self.tree.width()) as u64
    }

    /// Builds the per-story candidate index over the occupied address rows
    /// (the extra story-upload work when `--mem-index` is armed), replacing
    /// any previous index. Returns the build's cycle cost, which the
    /// caller charges to the write phase; centroid-quantizer events land in
    /// `st` like every other BRAM write.
    ///
    /// # Panics
    ///
    /// Panics if `config` is disabled.
    pub fn build_index(&mut self, config: MemIndexConfig, st: &mut NumericStatus) -> Cycles {
        let idx = MemIndex::build(&self.rows_a, config, &self.tree, self.embed_dim, st);
        let cycles = Cycles::new(idx.build_cycles());
        self.index = Some(idx);
        cycles
    }

    /// The candidate index built by [`MemModule::build_index`], if any.
    pub fn index(&self) -> Option<&MemIndex> {
        self.index.as_ref()
    }

    /// Cycle cost of one exact addressing pass over all `L` occupied slots
    /// — the counterfactual the indexed path's `cycles_saved` accounting
    /// compares against. Matches [`MemModule::address_into_tracked`]'s
    /// count term by term: score stream, exp pipeline occupancy,
    /// denominator reduce, and the sequential divider.
    pub fn exact_addressing_cycles(&self) -> u64 {
        let l = self.rows_a.len();
        if l == 0 {
            return 0;
        }
        let score = l as u64 * self.slots_per_row() + self.tree.depth() + 1;
        let exp = l as u64 + self.exp.latency();
        let reduce = self.tree.reduce_cycles(l).get();
        let div = l as u64 * self.div.latency();
        score + exp + reduce + div
    }

    /// One indexed addressing hop: probe the candidate index, score only
    /// the surviving candidates exactly, and fall back to the full scan
    /// when the margin is too tight or the probe arithmetic saturated.
    /// Returns the hop's cycles, its counter slice, and the scanned slot
    /// set (`None` when the hop fell back and streamed every slot) for the
    /// batch union accounting.
    fn indexed_hop_core(
        &self,
        key: &[f32],
        attention: &mut Vec<f32>,
        st: &mut NumericStatus,
        flags: &mut Vec<bool>,
    ) -> (Cycles, IndexedHopStats, Option<Vec<usize>>) {
        let idx = self
            .index
            .as_ref()
            .expect("indexed addressing needs a built index");
        attention.clear();
        flags.clear();
        let l = self.rows_a.len();
        if l == 0 {
            let stats = IndexedHopStats {
                scanned: 0,
                skipped: 0,
                fallback: false,
            };
            return (Cycles::ZERO, stats, Some(Vec::new()));
        }
        let band = idx.config().band;
        let mut key_st = NumericStatus::default();
        let key_q: Vec<Fixed> = key
            .iter()
            .map(|&y| Fixed::from_f32_tracked(y, &mut key_st))
            .collect();
        let mut probe_st = NumericStatus::default();
        let (candidates, probe_cycles, probe_stressed) = idx.probe(&key_q, &mut probe_st);
        // Exact scoring over the surviving candidates: the same per-row MAC
        // chain as the full scan, restricted to the candidate rows.
        let c = candidates.len();
        let mut rows_st = NumericStatus::default();
        let mut cand_flags = Vec::with_capacity(c);
        let mut scores = Vec::with_capacity(c);
        let mut scores_fx = Vec::with_capacity(c);
        for &slot in &candidates {
            let mut row_st = NumericStatus::default();
            let mut acc = Fixed::ZERO;
            for (x, y) in self.rows_a[slot].iter().zip(&key_q) {
                acc = acc.add_tracked(x.mul_tracked(*y, &mut row_st), &mut row_st);
            }
            cand_flags.push(key_st.stressed() || row_st.stressed());
            rows_st.merge(&row_st);
            scores.push(acc.to_f32());
            scores_fx.push(acc);
        }
        let score_cycles = Cycles::new(c as u64 * self.slots_per_row() + self.tree.depth() + 1);
        // ExitGuard-style margin check: when the best candidate score sits
        // within `band` of the worst retained one, the probe carried no
        // usable margin — rerun the exact scan. A single-candidate hop has
        // zero spread and always falls back. Saturated probe arithmetic
        // falls back unconditionally.
        let best = scores.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        let worst = scores.iter().copied().fold(f32::INFINITY, f32::min);
        let fallback = probe_stressed || c == 0 || best - worst <= band;
        st.merge(&key_st);
        st.merge(&probe_st);
        st.merge(&rows_st);
        if fallback {
            // The hardware rescans: the full exact pass re-quantizes the
            // key, so its quantizer events are (deliberately) counted for
            // both the probe use and the rescan.
            let exact_cycles = self.address_flagged_into_tracked(key, attention, st, flags);
            let stats = IndexedHopStats {
                scanned: l as u64,
                skipped: 0,
                fallback: true,
            };
            return (probe_cycles + score_cycles + exact_cycles, stats, None);
        }
        let mut tail_st = NumericStatus::default();
        let mut cand_att = Vec::with_capacity(c);
        let tail_cycles = self.softmax_tail(&scores, &scores_fx, &mut cand_att, &mut tail_st);
        let tail_stressed = tail_st.stressed();
        st.merge(&tail_st);
        // Scatter the candidate softmax into the full slot space: skipped
        // slots carry exactly zero attention and a clean flag.
        attention.resize(l, 0.0);
        flags.resize(l, false);
        for ((&slot, &w), &f) in candidates.iter().zip(&cand_att).zip(&cand_flags) {
            attention[slot] = w;
            flags[slot] = f || tail_stressed;
        }
        let stats = IndexedHopStats {
            scanned: c as u64,
            skipped: (l - c) as u64,
            fallback: false,
        };
        (
            probe_cycles + score_cycles + tail_cycles,
            stats,
            Some(candidates),
        )
    }

    /// Indexed content-based addressing with per-row numeric provenance:
    /// the sub-linear counterpart of
    /// [`MemModule::address_flagged_into_tracked`]. Requires
    /// [`MemModule::build_index`] to have run for the current story.
    /// Skipped slots get attention exactly `0.0` and a clean flag; a
    /// fallback hop is bit-identical to the exact pass (attention, flags)
    /// with the probe and candidate-scan overhead added to its cycles.
    ///
    /// # Panics
    ///
    /// Panics if no index is built.
    pub fn address_indexed_flagged_into_tracked(
        &self,
        key: &[f32],
        attention: &mut Vec<f32>,
        st: &mut NumericStatus,
        flags: &mut Vec<bool>,
    ) -> (Cycles, IndexedHopStats) {
        let (cycles, stats, _) = self.indexed_hop_core(key, attention, st, flags);
        (cycles, stats)
    }

    /// Batched indexed addressing for queries sharing this story: each
    /// query runs the exact per-query indexed hop (results are
    /// bit-identical to [`MemModule::address_indexed_flagged_into_tracked`]
    /// by construction), and the fused stream fetches the *union* of the
    /// queries' candidate rows once. Returns the standalone per-query
    /// cycles, per-query stats, and the union's slot count (`L` when any
    /// query fell back to the full scan) for the caller's stream-sharing
    /// accounting.
    ///
    /// # Panics
    ///
    /// Panics if `keys` and `sts` lengths differ, or no index is built.
    pub fn address_indexed_batch_flagged_into_tracked(
        &self,
        keys: &[Vec<f32>],
        attentions: &mut Vec<Vec<f32>>,
        sts: &mut [NumericStatus],
        flags: &mut Vec<Vec<bool>>,
    ) -> (Vec<Cycles>, Vec<IndexedHopStats>, u64) {
        assert_eq!(keys.len(), sts.len(), "one status register per query");
        attentions.clear();
        attentions.resize(keys.len(), Vec::new());
        flags.clear();
        flags.resize(keys.len(), Vec::new());
        let l = self.rows_a.len();
        let mut scanned_union = vec![false; l];
        let mut any_fallback = false;
        let mut cycles = Vec::with_capacity(keys.len());
        let mut stats = Vec::with_capacity(keys.len());
        for (q, key) in keys.iter().enumerate() {
            let (cy, hop, scanned) =
                self.indexed_hop_core(key, &mut attentions[q], &mut sts[q], &mut flags[q]);
            cycles.push(cy);
            stats.push(hop);
            match scanned {
                None => any_fallback = true,
                Some(slots) => {
                    for slot in slots {
                        scanned_union[slot] = true;
                    }
                }
            }
        }
        let union = if any_fallback {
            l as u64
        } else {
            scanned_union.iter().filter(|&&b| b).count() as u64
        };
        (cycles, stats, union)
    }

    /// The stored (quantized) address row `i`, dequantized — for
    /// cross-checking against reference computations.
    pub fn addr_row_f32(&self, i: usize) -> Vec<f32> {
        self.rows_a[i].iter().map(|x| x.to_f32()).collect()
    }

    /// The stored (quantized) content row `i`, dequantized.
    pub fn content_row_f32(&self, i: usize) -> Vec<f32> {
        self.rows_c[i].iter().map(|x| x.to_f32()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn filled(l: usize, e: usize) -> MemModule {
        let mut m = MemModule::new(e, &DatapathConfig::default());
        for i in 0..l {
            let row_a: Vec<f32> = (0..e).map(|j| ((i + j) as f32 * 0.1).sin()).collect();
            let row_c: Vec<f32> = (0..e).map(|j| ((i * j) as f32 * 0.1).cos()).collect();
            m.write(row_a, row_c);
        }
        m
    }

    #[test]
    fn attention_is_a_distribution() {
        let m = filled(6, 8);
        let key: Vec<f32> = (0..8).map(|i| (i as f32 * 0.3).cos()).collect();
        let (a, cycles) = m.address(&key);
        assert_eq!(a.len(), 6);
        let sum: f32 = a.iter().sum();
        assert!((sum - 1.0).abs() < 1e-2, "{sum}");
        assert!(a.iter().all(|&x| x >= 0.0));
        assert!(cycles.get() > 0);
    }

    #[test]
    fn attention_matches_float_softmax_closely() {
        let m = filled(5, 8);
        let key: Vec<f32> = vec![0.5; 8];
        let (a, _) = m.address(&key);
        // Reference float computation over the stored rows.
        let scores: Vec<f32> = (0..5)
            .map(|i| m.addr_row_f32(i).iter().zip(&key).map(|(x, y)| x * y).sum())
            .collect();
        let max = scores.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        let exps: Vec<f32> = scores.iter().map(|s| (s - max).exp()).collect();
        let z: f32 = exps.iter().sum();
        for (hw, sw) in a.iter().zip(exps.iter().map(|e| e / z)) {
            assert!((hw - sw).abs() < 5e-3, "{hw} vs {sw}");
        }
    }

    #[test]
    fn quantized_storage_matches_fixed_dot_scores() {
        // The stored-row accumulation must equal the adder tree's
        // quantize-at-access dot over the original f32 rows, bit for bit.
        let e = 8;
        let rows: Vec<Vec<f32>> = (0..5)
            .map(|i| (0..e).map(|j| ((i * 3 + j) as f32 * 0.17).sin()).collect())
            .collect();
        let mut m = MemModule::new(e, &DatapathConfig::default());
        for r in &rows {
            m.write(r.clone(), r.clone());
        }
        let key: Vec<f32> = (0..e).map(|j| (j as f32 * 0.4).cos()).collect();
        let tree = AdderTree::new(DatapathConfig::default().tree_width);
        let key_q: Vec<Fixed> = key.iter().map(|&y| Fixed::from_f32(y)).collect();
        for (i, r) in rows.iter().enumerate() {
            let (expect, _) = tree.fixed_dot(r, &key);
            let mut acc = Fixed::ZERO;
            for (x, y) in m.rows_a[i].iter().zip(&key_q) {
                acc += *x * *y;
            }
            assert_eq!(acc, expect, "row {i}");
        }
    }

    #[test]
    fn read_is_attention_weighted_sum() {
        let m = filled(3, 4);
        let attention = vec![1.0, 0.0, 0.0];
        let (r, _) = m.read(&attention);
        for (x, y) in r.iter().zip(&m.content_row_f32(0)) {
            assert!((x - y).abs() < 1e-3);
        }
    }

    #[test]
    fn reset_empties_memory() {
        let mut m = filled(4, 4);
        assert_eq!(m.len(), 4);
        m.reset();
        assert!(m.is_empty());
        let (a, c) = (m.address(&[0.0; 4]).0, m.address(&[0.0; 4]).1);
        assert!(a.is_empty());
        assert_eq!(c, Cycles::ZERO);
    }

    #[test]
    fn addressing_cycles_grow_with_memory_size() {
        let key = vec![0.1f32; 8];
        let small = filled(4, 8).address(&key).1;
        let large = filled(16, 8).address(&key).1;
        assert!(large > small);
    }

    #[test]
    fn divider_dominates_addressing_time() {
        // With the default datapath (div latency 16, tree width 8), the
        // sequential divider is the largest addressing term — the paper's
        // motivation for calling softmax costly.
        let m = filled(10, 32);
        let key = vec![0.1f32; 32];
        let (_, total) = m.address(&key);
        let div_only = 10 * DatapathConfig::default().div_latency;
        assert!(total.get() > div_only, "{total} vs divider {div_only}");
        assert!(div_only as f64 / total.get() as f64 > 0.3);
    }

    #[test]
    #[should_panic(expected = "width")]
    fn wrong_row_width_panics() {
        let mut m = MemModule::new(4, &DatapathConfig::default());
        m.write(vec![0.0; 3], vec![0.0; 4]);
    }

    #[test]
    fn flagged_addressing_matches_plain_addressing() {
        let m = filled(7, 8);
        let key: Vec<f32> = (0..8).map(|i| (i as f32 * 0.7).sin()).collect();
        let mut plain = Vec::new();
        let mut plain_st = NumericStatus::default();
        let plain_cycles = m.address_into_tracked(&key, &mut plain, &mut plain_st);
        let mut flagged = Vec::new();
        let mut flagged_st = NumericStatus::default();
        let mut flags = Vec::new();
        let flagged_cycles =
            m.address_flagged_into_tracked(&key, &mut flagged, &mut flagged_st, &mut flags);
        assert_eq!(plain, flagged);
        assert_eq!(plain_cycles, flagged_cycles);
        assert_eq!(plain_st, flagged_st);
        assert_eq!(flags.len(), 7);
        // bAbI-scale values never stress Q16.16: every flag is clean.
        assert!(flags.iter().all(|&f| !f));
    }

    #[test]
    fn flagged_addressing_marks_saturated_rows() {
        let e = 4;
        let mut m = MemModule::new(e, &DatapathConfig::default());
        // Row 0 saturates its score MACs at Q16.16 scale; row 1 stays tame.
        m.write(vec![30000.0; e], vec![0.1; e]);
        m.write(vec![0.1; e], vec![0.1; e]);
        let key = vec![30000.0; e];
        let mut att = Vec::new();
        let mut st = NumericStatus::default();
        let mut flags = Vec::new();
        let _ = m.address_flagged_into_tracked(&key, &mut att, &mut st, &mut flags);
        assert!(st.stressed());
        assert!(flags[0], "saturated row must be flagged");
    }

    #[test]
    fn batched_addressing_and_read_match_per_query() {
        let m = filled(6, 8);
        let keys: Vec<Vec<f32>> = (0..4)
            .map(|q| (0..8).map(|i| ((q * 8 + i) as f32 * 0.23).sin()).collect())
            .collect();
        let mut atts = Vec::new();
        let mut sts = vec![NumericStatus::default(); keys.len()];
        let cycles = m.address_batch_into_tracked(&keys, &mut atts, &mut sts);
        let mut reads = Vec::new();
        let mut read_sts = vec![NumericStatus::default(); keys.len()];
        let read_cycles = m.read_batch_into_tracked(&atts, &mut reads, &mut read_sts);
        for (q, key) in keys.iter().enumerate() {
            let mut att = Vec::new();
            let mut st = NumericStatus::default();
            assert_eq!(cycles[q], m.address_into_tracked(key, &mut att, &mut st));
            assert_eq!(atts[q], att);
            assert_eq!(sts[q], st);
            let mut out = Vec::new();
            let mut rst = NumericStatus::default();
            assert_eq!(
                read_cycles[q],
                m.read_into_tracked(&att, &mut out, &mut rst)
            );
            assert_eq!(reads[q], out);
            assert_eq!(read_sts[q], rst);
        }
        // Empty batches are fine.
        let mut none = Vec::new();
        assert!(m
            .address_batch_into_tracked(&[], &mut none, &mut [])
            .is_empty());
        assert!(none.is_empty());
    }

    #[test]
    fn exact_addressing_cycles_matches_the_exact_pass() {
        let m = filled(14, 8);
        let key: Vec<f32> = (0..8).map(|i| (i as f32 * 0.7).sin()).collect();
        let (_, cycles) = m.address(&key);
        assert_eq!(m.exact_addressing_cycles(), cycles.get());
        assert_eq!(
            MemModule::new(8, &DatapathConfig::default()).exact_addressing_cycles(),
            0
        );
    }

    fn indexed(l: usize, e: usize, k: usize, nprobe: usize, band: f32) -> MemModule {
        let mut m = filled(l, e);
        let mut st = NumericStatus::default();
        let build = m.build_index(MemIndexConfig::with_params(k, nprobe, band), &mut st);
        assert!(build.get() > 0);
        m
    }

    #[test]
    fn full_coverage_index_matches_exact_addressing() {
        // k = nprobe = 1: every slot survives the probe, so the candidate
        // softmax sees the same scores in the same order as the full scan.
        let m = indexed(6, 8, 1, 1, 0.0);
        let key: Vec<f32> = (0..8).map(|i| (i as f32 * 0.3).cos()).collect();
        let mut exact = Vec::new();
        let mut exact_st = NumericStatus::default();
        let mut exact_flags = Vec::new();
        let exact_cycles =
            m.address_flagged_into_tracked(&key, &mut exact, &mut exact_st, &mut exact_flags);
        let mut att = Vec::new();
        let mut st = NumericStatus::default();
        let mut flags = Vec::new();
        let (cycles, stats) =
            m.address_indexed_flagged_into_tracked(&key, &mut att, &mut st, &mut flags);
        assert_eq!(att, exact);
        assert_eq!(flags, exact_flags);
        assert!(!stats.fallback);
        assert_eq!((stats.scanned, stats.skipped), (6, 0));
        assert!(cycles > exact_cycles, "probe overhead must be charged");
    }

    #[test]
    fn indexed_addressing_skips_slots_and_partitions_counters() {
        let m = indexed(24, 8, 8, 1, 0.0);
        let key: Vec<f32> = (0..8).map(|i| (i as f32 * 0.3).cos()).collect();
        let mut att = Vec::new();
        let mut st = NumericStatus::default();
        let mut flags = Vec::new();
        let (cycles, stats) =
            m.address_indexed_flagged_into_tracked(&key, &mut att, &mut st, &mut flags);
        assert_eq!(stats.scanned + stats.skipped, 24);
        assert!(stats.skipped > 0, "nprobe=1 of k=8 must skip slots");
        assert!(!stats.fallback);
        assert_eq!(att.len(), 24);
        let sum: f32 = att.iter().sum();
        assert!((sum - 1.0).abs() < 1e-2, "{sum}");
        // Skipped slots carry exactly zero attention.
        assert_eq!(
            att.iter().filter(|&&a| a == 0.0).count() as u64,
            stats.skipped
        );
        assert!(
            cycles.get() < m.exact_addressing_cycles(),
            "skipping must pay off"
        );
    }

    #[test]
    fn wide_band_forces_fallback_and_matches_exact() {
        let m = indexed(10, 8, 4, 1, 1.0e9);
        let key: Vec<f32> = (0..8).map(|i| (i as f32 * 0.5).sin()).collect();
        let mut exact = Vec::new();
        let mut exact_st = NumericStatus::default();
        let mut exact_flags = Vec::new();
        let exact_cycles =
            m.address_flagged_into_tracked(&key, &mut exact, &mut exact_st, &mut exact_flags);
        let mut att = Vec::new();
        let mut st = NumericStatus::default();
        let mut flags = Vec::new();
        let (cycles, stats) =
            m.address_indexed_flagged_into_tracked(&key, &mut att, &mut st, &mut flags);
        assert!(stats.fallback);
        assert_eq!((stats.scanned, stats.skipped), (10, 0));
        assert_eq!(att, exact, "fallback must be bit-identical to the scan");
        assert_eq!(flags, exact_flags);
        assert!(cycles > exact_cycles, "fallback pays probe + rescan");
    }

    #[test]
    fn batched_indexed_addressing_matches_solo() {
        let m = indexed(20, 8, 5, 2, 0.0);
        let keys: Vec<Vec<f32>> = (0..3)
            .map(|q| (0..8).map(|i| ((q * 8 + i) as f32 * 0.23).sin()).collect())
            .collect();
        let mut atts = Vec::new();
        let mut sts = vec![NumericStatus::default(); keys.len()];
        let mut flags = Vec::new();
        let (cycles, stats, union) =
            m.address_indexed_batch_flagged_into_tracked(&keys, &mut atts, &mut sts, &mut flags);
        let mut sum_scanned = 0;
        for (q, key) in keys.iter().enumerate() {
            let mut att = Vec::new();
            let mut st = NumericStatus::default();
            let mut f = Vec::new();
            let (cy, hop) = m.address_indexed_flagged_into_tracked(key, &mut att, &mut st, &mut f);
            assert_eq!(atts[q], att);
            assert_eq!(sts[q], st);
            assert_eq!(flags[q], f);
            assert_eq!(cycles[q], cy);
            assert_eq!(stats[q], hop);
            sum_scanned += hop.scanned;
        }
        assert!(union <= 20);
        assert!(union <= sum_scanned, "union cannot exceed the scan total");
        assert!(stats.iter().all(|s| union >= s.scanned));
        // Empty batches are fine.
        let (none, no_stats, u) =
            m.address_indexed_batch_flagged_into_tracked(&[], &mut atts, &mut [], &mut flags);
        assert!(none.is_empty() && no_stats.is_empty() && u == 0);
    }

    #[test]
    fn stream_cycles_per_hop_counts_both_row_streams() {
        let m = filled(10, 32);
        // 10 rows x ceil(32/8) issue slots, addressing + read.
        assert_eq!(m.stream_cycles_per_hop(), 2 * 10 * 4);
        let empty = MemModule::new(8, &DatapathConfig::default());
        assert_eq!(empty.stream_cycles_per_hop(), 0);
    }
}
