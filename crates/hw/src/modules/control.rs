//! The CONTROL module and the host stream protocol.
//!
//! Control signals are "embedded in the data" (paper §III): the host
//! serializes an inference as a stream of 32-bit words — opcodes followed by
//! payload — and the CONTROL module decodes them and sequences the other
//! modules. The protocol here is the minimal QA instruction set:
//!
//! | word            | meaning                                   |
//! |-----------------|-------------------------------------------|
//! | `BEGIN_STORY`   | reset memories                            |
//! | `SENTENCE n`    | next `n` words are one sentence           |
//! | `QUESTION n`    | next `n` words are the question           |
//! | `RUN_INFERENCE` | start the read/output phase               |

use mann_babi::EncodedSample;

use crate::Cycles;

/// One 32-bit word of the host stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HostWord {
    /// Reset memories for a new story.
    BeginStory,
    /// A sentence of the given word count follows.
    Sentence(u16),
    /// The question of the given word count follows.
    Question(u16),
    /// Begin the recurrent read and output phase.
    RunInference,
    /// A word index payload.
    Word(u32),
}

impl HostWord {
    /// Raw 32-bit encoding: top byte is the opcode, low 24 bits the payload.
    pub fn to_u32(self) -> u32 {
        match self {
            HostWord::BeginStory => 0x0100_0000,
            HostWord::Sentence(n) => 0x0200_0000 | u32::from(n),
            HostWord::Question(n) => 0x0300_0000 | u32::from(n),
            HostWord::RunInference => 0x0400_0000,
            HostWord::Word(w) => w & 0x00FF_FFFF,
        }
    }

    /// Decodes a raw word.
    pub fn from_u32(raw: u32) -> HostWord {
        match raw >> 24 {
            0x01 => HostWord::BeginStory,
            0x02 => HostWord::Sentence((raw & 0xFFFF) as u16),
            0x03 => HostWord::Question((raw & 0xFFFF) as u16),
            0x04 => HostWord::RunInference,
            _ => HostWord::Word(raw & 0x00FF_FFFF),
        }
    }
}

/// Errors the CONTROL decoder can detect in a malformed stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StreamError {
    /// The stream ended inside a sentence or question payload.
    TruncatedPayload,
    /// A payload word appeared where an opcode was expected.
    UnexpectedWord,
    /// The stream did not start with `BEGIN_STORY`.
    MissingBegin,
    /// No `RUN_INFERENCE` terminator.
    MissingRun,
    /// No question before `RUN_INFERENCE`.
    MissingQuestion,
}

impl std::fmt::Display for StreamError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let msg = match self {
            StreamError::TruncatedPayload => "stream ended inside a payload",
            StreamError::UnexpectedWord => "payload word in opcode position",
            StreamError::MissingBegin => "stream does not begin with BEGIN_STORY",
            StreamError::MissingRun => "stream lacks RUN_INFERENCE",
            StreamError::MissingQuestion => "no question before RUN_INFERENCE",
        };
        f.write_str(msg)
    }
}

impl std::error::Error for StreamError {}

/// A decoded inference input: per-sentence word indices plus the question.
pub type DecodedInput = (Vec<Vec<usize>>, Vec<usize>);

/// Serializes an encoded sample into the host stream.
pub fn encode_sample_stream(sample: &EncodedSample) -> Vec<u32> {
    let mut out = vec![HostWord::BeginStory.to_u32()];
    for sent in &sample.sentences {
        out.push(HostWord::Sentence(sent.len() as u16).to_u32());
        out.extend(sent.iter().map(|&w| HostWord::Word(w as u32).to_u32()));
    }
    out.push(HostWord::Question(sample.question.len() as u16).to_u32());
    out.extend(
        sample
            .question
            .iter()
            .map(|&w| HostWord::Word(w as u32).to_u32()),
    );
    out.push(HostWord::RunInference.to_u32());
    out
}

/// Decodes a host stream back into sentence/question index lists.
///
/// # Errors
///
/// Returns the first [`StreamError`] encountered in a malformed stream.
pub fn decode_stream(words: &[u32]) -> Result<DecodedInput, StreamError> {
    let mut iter = words.iter().map(|&w| HostWord::from_u32(w));
    if iter.next() != Some(HostWord::BeginStory) {
        return Err(StreamError::MissingBegin);
    }
    let mut sentences = Vec::new();
    let mut question: Option<Vec<usize>> = None;
    loop {
        match iter.next() {
            Some(HostWord::Sentence(n)) => {
                sentences.push(take_words(&mut iter, n as usize)?);
            }
            Some(HostWord::Question(n)) => {
                question = Some(take_words(&mut iter, n as usize)?);
            }
            Some(HostWord::RunInference) => {
                let q = question.ok_or(StreamError::MissingQuestion)?;
                return Ok((sentences, q));
            }
            Some(HostWord::Word(_)) => return Err(StreamError::UnexpectedWord),
            Some(HostWord::BeginStory) => {
                sentences.clear();
                question = None;
            }
            None => return Err(StreamError::MissingRun),
        }
    }
}

fn take_words<I: Iterator<Item = HostWord>>(
    iter: &mut I,
    n: usize,
) -> Result<Vec<usize>, StreamError> {
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        match iter.next() {
            Some(HostWord::Word(w)) => out.push(w as usize),
            Some(_) | None => return Err(StreamError::TruncatedPayload),
        }
    }
    Ok(out)
}

/// The CONTROL module: decodes the stream and accounts one cycle per stream
/// word (the FIFO pop + dispatch rate).
#[derive(Debug, Clone, Copy, Default)]
pub struct ControlModule;

impl ControlModule {
    /// Creates the module.
    pub fn new() -> Self {
        Self
    }

    /// Decodes `words`, returning the parsed inference input and the decode
    /// occupancy.
    ///
    /// # Errors
    ///
    /// Propagates [`StreamError`] from the decoder.
    pub fn dispatch(&self, words: &[u32]) -> Result<(DecodedInput, Cycles), StreamError> {
        let parsed = decode_stream(words)?;
        Ok((parsed, Cycles::new(words.len() as u64)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> EncodedSample {
        EncodedSample {
            sentences: vec![vec![1, 2, 3], vec![4, 5]],
            question: vec![6, 7],
            answer: 1,
        }
    }

    #[test]
    fn stream_round_trips() {
        let s = sample();
        let words = encode_sample_stream(&s);
        let (sentences, question) = decode_stream(&words).unwrap();
        assert_eq!(sentences, s.sentences);
        assert_eq!(question, s.question);
    }

    #[test]
    fn word_encoding_round_trips() {
        for w in [
            HostWord::BeginStory,
            HostWord::Sentence(17),
            HostWord::Question(3),
            HostWord::RunInference,
            HostWord::Word(12345),
        ] {
            assert_eq!(HostWord::from_u32(w.to_u32()), w);
        }
    }

    #[test]
    fn truncated_stream_is_detected() {
        let mut words = encode_sample_stream(&sample());
        words.truncate(3);
        assert!(matches!(
            decode_stream(&words),
            Err(StreamError::TruncatedPayload | StreamError::MissingRun)
        ));
    }

    #[test]
    fn missing_begin_is_detected() {
        let words = vec![HostWord::RunInference.to_u32()];
        assert_eq!(decode_stream(&words), Err(StreamError::MissingBegin));
    }

    #[test]
    fn missing_question_is_detected() {
        let words = vec![
            HostWord::BeginStory.to_u32(),
            HostWord::RunInference.to_u32(),
        ];
        assert_eq!(decode_stream(&words), Err(StreamError::MissingQuestion));
    }

    #[test]
    fn control_charges_one_cycle_per_word() {
        let s = sample();
        let words = encode_sample_stream(&s);
        let (_, cycles) = ControlModule::new().dispatch(&words).unwrap();
        assert_eq!(cycles.get(), words.len() as u64);
    }

    #[test]
    fn second_begin_story_resets_state() {
        let s = sample();
        let mut words = vec![
            HostWord::BeginStory.to_u32(),
            HostWord::Sentence(1).to_u32(),
            HostWord::Word(9).to_u32(),
        ];
        words.extend(encode_sample_stream(&s));
        let (sentences, _) = decode_stream(&words).unwrap();
        assert_eq!(sentences, s.sentences, "stale sentence survived reset");
    }
}
