//! The OUTPUT module: sequential maximum inner-product search (Eq 6),
//! optionally with inference thresholding.
//!
//! The output weight rows stream out of BRAM one per issue; a compare
//! register tracks the running maximum. With thresholding enabled, each
//! logit is additionally compared against its class threshold (in the
//! silhouette probe order) and the search retires early on the first hit —
//! Fig 2(b).

use mann_ith::{ExitGuard, ThresholdingModel};
use mann_linalg::{Fixed, Matrix, NumericStatus};

use crate::adder_tree::AdderTree;
use crate::{Cycles, DatapathConfig};

/// Result of the output-layer search.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OutputResult {
    /// Predicted class index.
    pub label: usize,
    /// Output rows evaluated (= logit comparisons).
    pub comparisons: usize,
    /// Whether a threshold fired.
    pub speculated: bool,
    /// Occupancy of the module.
    pub cycles: Cycles,
    /// Early exits vetoed by the saturation guard before retiring.
    pub vetoes: usize,
    /// Numeric-event register accumulated across every evaluated logit.
    pub numeric: NumericStatus,
}

/// The sequential output layer.
#[derive(Debug, Clone)]
pub struct OutputModule {
    w_o: Matrix,
    tree: AdderTree,
    /// Cycles per evaluated output row: `ceil(E / output_lanes)` MAC issues
    /// plus the compare.
    row_cycles: u64,
    /// Quantized per-class thresholds in probe order, when thresholding is
    /// configured: `(class, theta)`.
    plan: Option<Vec<(usize, Option<Fixed>)>>,
    /// Saturation guard over speculative exits.
    guard: ExitGuard,
}

impl OutputModule {
    /// Creates the module over a pre-quantized `V x E` output weight,
    /// without thresholding.
    pub fn new(w_o: Matrix, dp: &DatapathConfig) -> Self {
        dp.validate().expect("valid datapath");
        let row_cycles = w_o.cols().div_ceil(dp.output_lanes) as u64 + 1;
        Self {
            w_o,
            tree: AdderTree::new(dp.output_lanes),
            row_cycles,
            plan: None,
            guard: ExitGuard::default(),
        }
    }

    /// Installs a saturation guard over speculative exits (the default is an
    /// enabled guard with a zero band).
    pub fn with_guard(mut self, guard: ExitGuard) -> Self {
        self.guard = guard;
        self
    }

    /// Installs a calibrated thresholding model (quantizing its thresholds
    /// onto the datapath). `use_ordering` selects the silhouette probe
    /// order (Step 3) or natural index order (the Fig 3 ablation).
    ///
    /// # Panics
    ///
    /// Panics if the thresholding model's class count differs from the
    /// output rows.
    pub fn with_thresholding(mut self, ith: &ThresholdingModel, use_ordering: bool) -> Self {
        assert_eq!(
            ith.classes(),
            self.w_o.rows(),
            "thresholding classes vs output rows"
        );
        let order: Vec<usize> = if use_ordering {
            ith.order.clone()
        } else {
            (0..ith.classes()).collect()
        };
        self.plan = Some(
            order
                .into_iter()
                .map(|i| (i, ith.thresholds[i].theta.map(Fixed::from_f32)))
                .collect(),
        );
        self
    }

    /// Number of output classes `|I|`.
    pub fn classes(&self) -> usize {
        self.w_o.rows()
    }

    /// Whether a thresholding plan is installed (speculative search).
    pub fn is_thresholded(&self) -> bool {
        self.plan.is_some()
    }

    /// Weight-stream issue slots of one evaluated class row that a fused
    /// same-story query group shares (the BRAM row is fetched once for the
    /// whole group); the compare cycle stays per query.
    pub fn row_stream_cycles(&self) -> u64 {
        self.row_cycles - 1
    }

    /// Runs the search for hidden state `h`.
    ///
    /// # Panics
    ///
    /// Panics if `h` width differs from `E`.
    pub fn search(&self, h: &[f32]) -> OutputResult {
        assert_eq!(h.len(), self.w_o.cols(), "hidden width");
        let per_dot = self.row_cycles;
        let epilogue = self.tree.depth() + 2;
        let band = Fixed::from_f32(self.guard.band.max(0.0));

        let mut best = 0usize;
        let mut best_z = Fixed::MIN;
        let mut comparisons = 0usize;
        let mut vetoes = 0usize;
        let mut numeric = NumericStatus::default();
        // Whether any logit probed so far landed within the guard band of
        // its own threshold while carrying a flag.
        let mut band_flagged = false;

        match &self.plan {
            Some(plan) => {
                for &(class, theta) in plan {
                    let mut logit_st = NumericStatus::default();
                    let (z, _) = self
                        .tree
                        .fixed_dot_tracked(self.w_o.row(class), h, &mut logit_st);
                    comparisons += 1;
                    numeric.merge(&logit_st);
                    if let Some(t) = theta {
                        if logit_st.stressed() && z.saturating_sub(t).abs() <= band {
                            band_flagged = true;
                        }
                        if z > t {
                            if self.guard.vetoes(&logit_st, band_flagged) {
                                // Saturated speculative exit: veto it and
                                // let the sequential search continue.
                                vetoes += 1;
                            } else {
                                return OutputResult {
                                    label: class,
                                    comparisons,
                                    speculated: true,
                                    cycles: Cycles::new(comparisons as u64 * per_dot + epilogue),
                                    vetoes,
                                    numeric,
                                };
                            }
                        }
                    }
                    if z > best_z {
                        best_z = z;
                        best = class;
                    }
                }
            }
            None => {
                for class in 0..self.w_o.rows() {
                    let (z, _) = self
                        .tree
                        .fixed_dot_tracked(self.w_o.row(class), h, &mut numeric);
                    comparisons += 1;
                    if z > best_z {
                        best_z = z;
                        best = class;
                    }
                }
            }
        }
        OutputResult {
            label: best,
            comparisons,
            speculated: false,
            cycles: Cycles::new(comparisons as u64 * per_dot + epilogue),
            vetoes,
            numeric,
        }
    }

    /// Batched search for hidden states of queries sharing a fused compute
    /// phase. Without thresholding every query evaluates every class, so
    /// the class rows stream out of BRAM once for the whole group; each
    /// `(query, class)` dot product is the exact [`OutputModule::search`]
    /// computation, so every result is bit-identical to the per-query
    /// call. With a thresholding plan the searches retire at different
    /// rows and are delegated to per-query [`OutputModule::search`] (no
    /// stream sharing is claimed — see
    /// [`OutputModule::row_stream_cycles`]).
    ///
    /// # Panics
    ///
    /// Panics if any hidden width differs from `E`.
    pub fn search_batch(&self, hs: &[&[f32]]) -> Vec<OutputResult> {
        if self.plan.is_some() {
            return hs.iter().map(|h| self.search(h)).collect();
        }
        for h in hs {
            assert_eq!(h.len(), self.w_o.cols(), "hidden width");
        }
        let per_dot = self.row_cycles;
        let epilogue = self.tree.depth() + 2;
        let mut best = vec![0usize; hs.len()];
        let mut best_z = vec![Fixed::MIN; hs.len()];
        let mut numeric = vec![NumericStatus::default(); hs.len()];
        for class in 0..self.w_o.rows() {
            let row = self.w_o.row(class);
            for (q, h) in hs.iter().enumerate() {
                let (z, _) = self.tree.fixed_dot_tracked(row, h, &mut numeric[q]);
                if z > best_z[q] {
                    best_z[q] = z;
                    best[q] = class;
                }
            }
        }
        let comparisons = self.w_o.rows();
        (0..hs.len())
            .map(|q| OutputResult {
                label: best[q],
                comparisons,
                speculated: false,
                cycles: Cycles::new(comparisons as u64 * per_dot + epilogue),
                vetoes: 0,
                numeric: numeric[q],
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mann_ith::threshold::ClassThreshold;
    use mann_ith::Kernel;

    fn w_o() -> Matrix {
        // 5 classes, E = 4; class 3 has the largest row.
        let mut m = Matrix::zeros(5, 4);
        for i in 0..5 {
            for j in 0..4 {
                m[(i, j)] = if i == 3 { 1.0 } else { 0.1 * i as f32 };
            }
        }
        m
    }

    fn ith(thetas: Vec<Option<f32>>, order: Vec<usize>) -> ThresholdingModel {
        let n = thetas.len();
        ThresholdingModel {
            thresholds: thetas
                .into_iter()
                .map(|theta| ClassThreshold { theta })
                .collect(),
            order,
            silhouettes: vec![0.0; n],
            rho: 1.0,
            kernel: Kernel::Epanechnikov,
        }
    }

    #[test]
    fn exhaustive_search_finds_argmax() {
        let m = OutputModule::new(w_o(), &DatapathConfig::default());
        let r = m.search(&[1.0, 1.0, 1.0, 1.0]);
        assert_eq!(r.label, 3);
        assert_eq!(r.comparisons, 5);
        assert!(!r.speculated);
    }

    #[test]
    fn threshold_hit_stops_early() {
        let m = OutputModule::new(w_o(), &DatapathConfig::default()).with_thresholding(
            &ith(vec![None, None, None, Some(2.0), None], vec![3, 0, 1, 2, 4]),
            true,
        );
        let r = m.search(&[1.0, 1.0, 1.0, 1.0]); // z_3 = 4 > 2
        assert_eq!(r.label, 3);
        assert_eq!(r.comparisons, 1);
        assert!(r.speculated);
    }

    #[test]
    fn miss_falls_back_to_exact_argmax() {
        let m = OutputModule::new(w_o(), &DatapathConfig::default())
            .with_thresholding(&ith(vec![Some(100.0); 5], (0..5).collect()), true);
        let r = m.search(&[1.0, 1.0, 1.0, 1.0]);
        assert_eq!(r.label, 3);
        assert_eq!(r.comparisons, 5);
        assert!(!r.speculated);
    }

    #[test]
    fn cycles_track_comparisons() {
        let m = OutputModule::new(w_o(), &DatapathConfig::default());
        let full = m.search(&[1.0; 4]);
        let m_early = OutputModule::new(w_o(), &DatapathConfig::default())
            .with_thresholding(&ith(vec![Some(-100.0); 5], (0..5).collect()), true);
        let early = m_early.search(&[1.0; 4]);
        assert!(early.cycles < full.cycles);
        assert_eq!(early.comparisons, 1);
    }

    #[test]
    fn unordered_probing_uses_index_order() {
        let mut thetas = vec![None; 5];
        thetas[4] = Some(-100.0);
        let model = ith(thetas, vec![4, 0, 1, 2, 3]);
        let ordered = OutputModule::new(w_o(), &DatapathConfig::default())
            .with_thresholding(&model, true)
            .search(&[1.0; 4]);
        assert_eq!(ordered.comparisons, 1);
        let unordered = OutputModule::new(w_o(), &DatapathConfig::default())
            .with_thresholding(&model, false)
            .search(&[1.0; 4]);
        assert_eq!(unordered.comparisons, 5);
        assert_eq!(unordered.label, 4);
    }

    #[test]
    #[should_panic(expected = "classes")]
    fn class_count_mismatch_panics() {
        let _ = OutputModule::new(w_o(), &DatapathConfig::default())
            .with_thresholding(&ith(vec![None; 3], vec![0, 1, 2]), true);
    }

    /// A weight matrix engineered so class 0's logit saturates in an
    /// intermediate product (MAX then a large negative add) yet lands at a
    /// moderate value that clears θ_0, while class 2 holds the true argmax.
    fn saturating_w_o() -> Matrix {
        let mut m = Matrix::zeros(3, 2);
        // h = [30000, 30000]: p = 100*30000 saturates at Fixed::MAX, then
        // -1*30000 pulls the accumulator back to ≈ 2768 — a numerically
        // meaningless logit that still clears a threshold of 1000.
        m[(0, 0)] = 100.0;
        m[(0, 1)] = -1.0;
        m[(1, 0)] = 0.1;
        m[(1, 1)] = 0.1;
        m[(2, 0)] = 0.2;
        m[(2, 1)] = 0.2;
        m
    }

    /// The acceptance scenario: an unguarded search early-exits on the
    /// saturated logit and answers wrong; the guard vetoes that exit and the
    /// continued sequential pass returns the exhaustive search's answer.
    #[test]
    fn guard_vetoes_saturated_exit_and_changes_answer() {
        let h = [30000.0f32, 30000.0];
        let model = ith(vec![Some(1000.0), None, None], vec![0, 1, 2]);
        let dp = DatapathConfig::default();

        let exact = OutputModule::new(saturating_w_o(), &dp).search(&h);
        assert_eq!(exact.label, 2, "exhaustive argmax");

        let unguarded = OutputModule::new(saturating_w_o(), &dp)
            .with_thresholding(&model, true)
            .with_guard(ExitGuard::off())
            .search(&h);
        assert_eq!(unguarded.label, 0, "saturated early exit fires unguarded");
        assert!(unguarded.speculated);
        assert_eq!(unguarded.vetoes, 0);

        let guarded = OutputModule::new(saturating_w_o(), &dp)
            .with_thresholding(&model, true)
            .search(&h);
        assert_eq!(guarded.label, exact.label, "guard restores the answer");
        assert!(!guarded.speculated);
        assert_eq!(guarded.vetoes, 1);
        assert_eq!(guarded.comparisons, 3);
        assert!(guarded.numeric.mul_sat > 0, "flag recorded");
    }

    #[test]
    fn batched_search_matches_per_query() {
        let m = OutputModule::new(w_o(), &DatapathConfig::default());
        let hs: Vec<Vec<f32>> = (0..3)
            .map(|q| (0..4).map(|j| ((q * 4 + j) as f32 * 0.31).sin()).collect())
            .collect();
        let refs: Vec<&[f32]> = hs.iter().map(Vec::as_slice).collect();
        let batch = m.search_batch(&refs);
        assert_eq!(batch.len(), 3);
        for (h, got) in hs.iter().zip(&batch) {
            assert_eq!(got, &m.search(h));
        }
        assert!(m.search_batch(&[]).is_empty());
        // With thresholding the batch delegates per query and still agrees.
        let t = OutputModule::new(w_o(), &DatapathConfig::default()).with_thresholding(
            &ith(vec![None, None, None, Some(2.0), None], vec![3, 0, 1, 2, 4]),
            true,
        );
        assert!(t.is_thresholded());
        for (h, got) in hs.iter().zip(t.search_batch(&refs)) {
            assert_eq!(got, t.search(h));
        }
        // One shared stream slot fewer than the per-row occupancy.
        assert_eq!(
            m.row_stream_cycles() + 1,
            4usize.div_ceil(DatapathConfig::default().output_lanes) as u64 + 1
        );
    }

    /// With no saturation anywhere, the guard is invisible: guarded and
    /// unguarded searches agree on every field.
    #[test]
    fn guard_is_invisible_without_flags() {
        let model = ith(vec![None, None, None, Some(2.0), None], vec![3, 0, 1, 2, 4]);
        let h = [1.0f32, 1.0, 1.0, 1.0];
        let dp = DatapathConfig::default();
        let guarded = OutputModule::new(w_o(), &dp)
            .with_thresholding(&model, true)
            .search(&h);
        let unguarded = OutputModule::new(w_o(), &dp)
            .with_thresholding(&model, true)
            .with_guard(ExitGuard::off())
            .search(&h);
        assert_eq!(guarded, unguarded);
        assert!(guarded.numeric.is_clean());
        assert_eq!(guarded.vetoes, 0);
    }
}
