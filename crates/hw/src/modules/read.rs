//! The READ module: the recurrent controller (Eqs 3–4).
//!
//! The blue loop of Fig 1: the controller combines the read vector with
//! `W_r k` and feeds its output back as the next hop's key — the recurrent
//! path that makes MANNs awkward on batch-oriented accelerators and natural
//! on a dataflow architecture.

use mann_linalg::{Fixed, Matrix, NumericStatus};
use memn2n::GruParams;

use crate::adder_tree::AdderTree;
use crate::sigmoid_unit::SigmoidUnit;
use crate::{Cycles, DatapathConfig};

/// The controller datapath variant loaded into the READ module.
#[derive(Debug, Clone)]
enum ControllerHw {
    /// Eq 4: one `E x E` weight, one matvec per hop.
    Linear { w_r: Matrix },
    /// Gated: six `E x E` weights plus the σ/tanh unit.
    Gru {
        weights: Box<GruParams>,
        sigmoid: SigmoidUnit,
    },
}

/// The read-key controller.
#[derive(Debug, Clone)]
pub struct ReadModule {
    controller: ControllerHw,
    embed_dim: usize,
    tree: AdderTree,
}

impl ReadModule {
    /// Creates the linear controller (Eq 4) over a pre-quantized `E x E`
    /// weight.
    ///
    /// # Panics
    ///
    /// Panics if `w_r` is not square or the datapath is invalid.
    pub fn new(w_r: Matrix, dp: &DatapathConfig) -> Self {
        assert_eq!(w_r.rows(), w_r.cols(), "controller weight must be square");
        dp.validate().expect("valid datapath");
        let embed_dim = w_r.rows();
        Self {
            controller: ControllerHw::Linear { w_r },
            embed_dim,
            tree: AdderTree::new(dp.tree_width),
        }
    }

    /// Creates the gated (GRU) controller over pre-quantized gate weights.
    ///
    /// # Panics
    ///
    /// Panics if the gate weights are not square/consistent or the
    /// datapath is invalid.
    pub fn new_gru(weights: GruParams, dp: &DatapathConfig) -> Self {
        dp.validate().expect("valid datapath");
        let e = weights.w_z.rows();
        for m in weights.matrices() {
            assert_eq!(m.shape(), (e, e), "gate weight must be E x E");
        }
        Self {
            controller: ControllerHw::Gru {
                weights: Box::new(weights),
                sigmoid: SigmoidUnit::new(dp),
            },
            embed_dim: e,
            tree: AdderTree::new(dp.tree_width),
        }
    }

    /// Embedding dimension `E`.
    pub fn embed_dim(&self) -> usize {
        self.embed_dim
    }

    /// Whether the gated controller is loaded.
    pub fn is_gated(&self) -> bool {
        matches!(self.controller, ControllerHw::Gru { .. })
    }

    /// One controller step: Eq 4 (`h = r + W_r k`) or the GRU recurrence.
    ///
    /// Timing (linear): `E` pipelined row dot products plus the elementwise
    /// add. Timing (GRU): six matvecs, two sigmoid batches, one tanh batch,
    /// and the elementwise combines — the gating tax the paper's linear
    /// controller avoids.
    ///
    /// # Panics
    ///
    /// Panics if `r` or `k` width differs from `E`.
    pub fn step(&self, r: &[f32], k: &[f32]) -> (Vec<f32>, Cycles) {
        let mut h = Vec::new();
        let cycles = self.step_into(r, k, &mut h);
        (h, cycles)
    }

    /// [`ReadModule::step`] with the output written into a caller-owned
    /// buffer whose capacity is reused across hops. The linear controller —
    /// the paper's datapath — allocates nothing after warm-up; the GRU
    /// variant still builds its gate temporaries internally. Values and
    /// cycle counts are identical to [`ReadModule::step`].
    ///
    /// # Panics
    ///
    /// Panics if `r` or `k` width differs from `E`.
    pub fn step_into(&self, r: &[f32], k: &[f32], h: &mut Vec<f32>) -> Cycles {
        self.step_into_tracked(r, k, h, &mut NumericStatus::default())
    }

    /// [`ReadModule::step_into`] with numeric-event accounting across the
    /// matvecs, the combine adder and (for the gated controller) the σ/tanh
    /// unit and gate combines. Values and cycle counts are identical to the
    /// untracked step.
    ///
    /// # Panics
    ///
    /// Panics if `r` or `k` width differs from `E`.
    pub fn step_into_tracked(
        &self,
        r: &[f32],
        k: &[f32],
        h: &mut Vec<f32>,
        st: &mut NumericStatus,
    ) -> Cycles {
        let e = self.embed_dim();
        assert_eq!(r.len(), e, "read vector width");
        assert_eq!(k.len(), e, "key width");
        h.clear();
        h.reserve(e);
        match &self.controller {
            ControllerHw::Linear { w_r } => {
                let per_dot = (e.div_ceil(self.tree.width())) as u64;
                for (row, &rv) in w_r.iter_rows().zip(r) {
                    let (wk, _) = self.tree.fixed_dot_tracked(row, k, st);
                    let sum = Fixed::from_f32_tracked(rv, st).add_tracked(wk, st);
                    h.push(sum.to_f32());
                }
                Cycles::new(e as u64 * per_dot + self.tree.depth() + 2)
            }
            ControllerHw::Gru { weights, sigmoid } => {
                let (out, cycles) = self.gru_step(weights, sigmoid, r, k, st);
                h.extend_from_slice(&out);
                cycles
            }
        }
    }

    /// Fixed-point GRU step.
    fn gru_step(
        &self,
        w: &GruParams,
        sigmoid: &SigmoidUnit,
        r: &[f32],
        k: &[f32],
        st: &mut NumericStatus,
    ) -> (Vec<f32>, Cycles) {
        let e = self.embed_dim();
        let per_dot = (e.div_ceil(self.tree.width())) as u64;
        let matvec_cycles = Cycles::new(e as u64 * per_dot + self.tree.depth() + 1);
        let mut total = Cycles::ZERO;

        fn matvec(
            tree: &AdderTree,
            e: usize,
            m: &Matrix,
            x: &[f32],
            st: &mut NumericStatus,
        ) -> Vec<f32> {
            (0..e)
                .map(|row| tree.fixed_dot_tracked(m.row(row), x, st).0.to_f32())
                .collect()
        }
        // Gate pre-activations: a = W r + U k (the add overlaps the tree).
        let az: Vec<f32> = matvec(&self.tree, e, &w.w_z, r, st)
            .iter()
            .zip(matvec(&self.tree, e, &w.u_z, k, st))
            .map(|(a, b)| a + b)
            .collect();
        total += matvec_cycles * 2;
        let ag: Vec<f32> = matvec(&self.tree, e, &w.w_g, r, st)
            .iter()
            .zip(matvec(&self.tree, e, &w.u_g, k, st))
            .map(|(a, b)| a + b)
            .collect();
        total += matvec_cycles * 2;
        let (z, zc) = sigmoid.sigmoid_batch_tracked(&az, st);
        let (g, gc) = sigmoid.sigmoid_batch_tracked(&ag, st);
        total += zc + gc;

        let gk: Vec<f32> = g
            .iter()
            .zip(k)
            .map(|(gv, &kv)| gv.mul_tracked(Fixed::from_f32_tracked(kv, st), st).to_f32())
            .collect();
        total += Cycles::new(1); // elementwise, E parallel lanes
        let ah: Vec<f32> = matvec(&self.tree, e, &w.w_h, r, st)
            .iter()
            .zip(matvec(&self.tree, e, &w.u_h, &gk, st))
            .map(|(a, b)| a + b)
            .collect();
        total += matvec_cycles * 2;
        let (ht, hc) = sigmoid.tanh_batch_tracked(&ah, st);
        total += hc;

        let h: Vec<f32> = z
            .iter()
            .zip(k)
            .zip(ht)
            .map(|((zv, &kv), hv)| {
                Fixed::ONE
                    .sub_tracked(*zv, st)
                    .mul_tracked(Fixed::from_f32_tracked(kv, st), st)
                    .add_tracked(zv.mul_tracked(hv, st), st)
                    .to_f32()
            })
            .collect();
        total += Cycles::new(2);
        (h, total)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn module(e: usize) -> ReadModule {
        let mut w = Matrix::zeros(e, e);
        for i in 0..e {
            for j in 0..e {
                w[(i, j)] = if i == j { 0.5 } else { 0.0 };
            }
        }
        ReadModule::new(w, &DatapathConfig::default())
    }

    #[test]
    fn identity_like_controller() {
        let m = module(4);
        let r = vec![1.0, 2.0, 3.0, 4.0];
        let k = vec![2.0, 2.0, 2.0, 2.0];
        let (h, _) = m.step(&r, &k);
        // h = r + 0.5 * k.
        for (i, &x) in h.iter().enumerate() {
            assert!((x - (r[i] + 1.0)).abs() < 1e-3);
        }
    }

    #[test]
    fn cycles_scale_quadratically_with_dim() {
        let small = module(8).step(&[0.0; 8], &[0.0; 8]).1;
        let large = module(32).step(&[0.0; 32], &[0.0; 32]).1;
        assert!(large.get() > small.get() * 4, "{large} vs {small}");
    }

    #[test]
    #[should_panic(expected = "square")]
    fn non_square_weight_rejected() {
        let _ = ReadModule::new(Matrix::zeros(3, 4), &DatapathConfig::default());
    }

    #[test]
    #[should_panic(expected = "width")]
    fn wrong_operand_width_panics() {
        let m = module(4);
        let _ = m.step(&[0.0; 3], &[0.0; 4]);
    }
}
