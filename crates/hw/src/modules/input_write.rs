//! The INPUT & WRITE module: index-based embedding (Eq 2).
//!
//! For each input word the module reads *one column* of the embedding
//! weight from BRAM and accumulates it into the sentence register — the
//! paper's key efficiency point: no dense matrix-vector product, no
//! multiplications at all for a bag-of-words input.

use mann_linalg::{Fixed, Matrix, NumericStatus};

use crate::Cycles;

/// The embedding accumulator. Holds quantized address and content embedding
/// weights (the `emb_a` / `emb_c` blocks of Fig 1; `emb_q` shares the
/// address weights).
///
/// Weights are kept column-major in fixed point — the BRAM layout the
/// hardware reads: embedding word `w` is the contiguous column
/// `cols[w*E .. (w+1)*E]`, so accumulating a word is one sequential sweep
/// with no per-access quantization.
#[derive(Debug, Clone)]
pub struct InputWriteModule {
    cols_a: Vec<Fixed>,
    cols_c: Vec<Fixed>,
    vocab: usize,
    embed_dim: usize,
}

impl InputWriteModule {
    /// Creates the module over pre-quantized embedding weights
    /// (`E x V` each).
    ///
    /// # Panics
    ///
    /// Panics if the two weights disagree in shape.
    pub fn new(w_emb_a: Matrix, w_emb_c: Matrix) -> Self {
        Self::new_tracked(w_emb_a, w_emb_c, &mut NumericStatus::default())
    }

    /// [`InputWriteModule::new`] with numeric-event accounting at the BRAM
    /// load boundary: weights clipped (or non-finite) while being quantized
    /// into the column store are recorded in `st`. Stored columns are
    /// bit-identical to the untracked construction.
    ///
    /// # Panics
    ///
    /// Panics if the two weights disagree in shape.
    pub fn new_tracked(w_emb_a: Matrix, w_emb_c: Matrix, st: &mut NumericStatus) -> Self {
        assert_eq!(w_emb_a.shape(), w_emb_c.shape(), "embedding shape mismatch");
        let embed_dim = w_emb_a.rows();
        let vocab = w_emb_a.cols();
        let mut columnize = |m: &Matrix| {
            let mut cols = Vec::with_capacity(embed_dim * vocab);
            for w in 0..vocab {
                for r in 0..embed_dim {
                    cols.push(Fixed::from_f32_tracked(m[(r, w)], st));
                }
            }
            cols
        };
        let cols_a = columnize(&w_emb_a);
        let cols_c = columnize(&w_emb_c);
        Self {
            cols_a,
            cols_c,
            vocab,
            embed_dim,
        }
    }

    /// Embedding dimension `E`.
    pub fn embed_dim(&self) -> usize {
        self.embed_dim
    }

    /// Embeds one sentence into its address and content vectors.
    ///
    /// Timing: both accumulators run in parallel (independent BRAMs), one
    /// word per cycle at II = 1, plus two cycles to flush the accumulator
    /// into the memory row.
    ///
    /// # Panics
    ///
    /// Panics if a word index is out of vocabulary range.
    pub fn embed_sentence(&self, words: &[usize]) -> (Vec<f32>, Vec<f32>, Cycles) {
        self.embed_sentence_tracked(words, &mut NumericStatus::default())
    }

    /// [`InputWriteModule::embed_sentence`] with numeric-event accounting in
    /// the sentence accumulators. Values are bit-identical to the untracked
    /// embedding.
    ///
    /// # Panics
    ///
    /// Panics if a word index is out of vocabulary range.
    pub fn embed_sentence_tracked(
        &self,
        words: &[usize],
        st: &mut NumericStatus,
    ) -> (Vec<f32>, Vec<f32>, Cycles) {
        let a = self.accumulate(&self.cols_a, words, st);
        let c = self.accumulate(&self.cols_c, words, st);
        let cycles = Cycles::new(words.len() as u64 + 2);
        (a, c, cycles)
    }

    /// Embeds the question through the address embedding (`emb_q` in
    /// Fig 1) — the first read key of Eq 3.
    pub fn embed_question(&self, words: &[usize]) -> (Vec<f32>, Cycles) {
        self.embed_question_tracked(words, &mut NumericStatus::default())
    }

    /// [`InputWriteModule::embed_question`] with numeric-event accounting.
    pub fn embed_question_tracked(
        &self,
        words: &[usize],
        st: &mut NumericStatus,
    ) -> (Vec<f32>, Cycles) {
        let q = self.accumulate(&self.cols_a, words, st);
        (q, Cycles::new(words.len() as u64 + 2))
    }

    /// Fixed-point column accumulation.
    fn accumulate(&self, cols: &[Fixed], words: &[usize], st: &mut NumericStatus) -> Vec<f32> {
        let mut acc = vec![Fixed::ZERO; self.embed_dim];
        for &w in words {
            assert!(w < self.vocab, "word index {w} out of range");
            let col = &cols[w * self.embed_dim..(w + 1) * self.embed_dim];
            for (slot, x) in acc.iter_mut().zip(col) {
                *slot = slot.add_tracked(*x, st);
            }
        }
        acc.into_iter().map(Fixed::to_f32).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn module() -> InputWriteModule {
        let mut a = Matrix::zeros(3, 5);
        let mut c = Matrix::zeros(3, 5);
        for i in 0..3 {
            for j in 0..5 {
                a[(i, j)] = (i * 5 + j) as f32 * 0.25;
                c[(i, j)] = -((i * 5 + j) as f32) * 0.5;
            }
        }
        InputWriteModule::new(a, c)
    }

    #[test]
    fn embedding_sums_columns() {
        let m = module();
        let (a, c, _) = m.embed_sentence(&[1, 3]);
        // Column 1 + column 3 of each weight.
        for r in 0..3 {
            let expect_a = (r * 5 + 1) as f32 * 0.25 + (r * 5 + 3) as f32 * 0.25;
            assert!((a[r] - expect_a).abs() < 1e-3, "row {r}");
            let expect_c = -((r * 5 + 1) as f32) * 0.5 - ((r * 5 + 3) as f32) * 0.5;
            assert!((c[r] - expect_c).abs() < 1e-3, "row {r}");
        }
    }

    #[test]
    fn repeated_words_accumulate() {
        let m = module();
        let (a1, _, _) = m.embed_sentence(&[2]);
        let (a2, _, _) = m.embed_sentence(&[2, 2]);
        for (x1, x2) in a1.iter().zip(&a2) {
            assert!((x2 - 2.0 * x1).abs() < 1e-3);
        }
    }

    #[test]
    fn cycles_scale_with_word_count() {
        let m = module();
        let (_, _, c3) = m.embed_sentence(&[0, 1, 2]);
        let (_, _, c1) = m.embed_sentence(&[0]);
        assert_eq!(c3.get(), 5);
        assert_eq!(c1.get(), 3);
    }

    #[test]
    fn question_uses_address_embedding() {
        let m = module();
        let (q, _) = m.embed_question(&[4]);
        let (a, _, _) = m.embed_sentence(&[4]);
        assert_eq!(q, a);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_word_panics() {
        let _ = module().embed_sentence(&[5]);
    }
}
