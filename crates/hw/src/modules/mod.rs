//! The five modules of the Fig 1 dataflow pipeline.
//!
//! Each module is functional *and* timed: it computes its real outputs on
//! the fixed-point datapath and reports the [`Cycles`](crate::Cycles) it
//! occupied. The [`Accelerator`](crate::Accelerator) sequences them along
//! the write path (green in Fig 1) and the recurrent read path (blue).

mod control;
mod input_write;
mod mem;
mod output;
mod read;

pub use control::{decode_stream, encode_sample_stream, ControlModule, HostWord, StreamError};
pub use input_write::InputWriteModule;
pub use mem::MemModule;
pub use output::{OutputModule, OutputResult};
pub use read::ReadModule;
