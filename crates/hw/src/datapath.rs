//! Shared datapath configuration for all modules.

use serde::{Deserialize, Serialize};

/// Structural parameters of the fixed-point datapath.
///
/// These pick the area/latency point of the implementation and are the
/// knobs of the hardware ablation benches.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct DatapathConfig {
    /// Leaves of each dot-product adder tree (parallel MAC lanes).
    pub tree_width: usize,
    /// Pipeline latency of the exponential LUT unit.
    pub exp_latency: u64,
    /// Per-operation latency of the (non-pipelined) divider.
    pub div_latency: u64,
    /// Entries in the exponential LUT.
    pub exp_lut_entries: usize,
    /// Parallel MAC lanes in the OUTPUT module. The paper implements the
    /// output matrix multiplication "as a series of dot products because the
    /// hardware is insufficient to parallelize it directly", so this is
    /// deliberately narrow (2), which is what makes the output layer
    /// dominate inference time and inference thresholding effective
    /// (default 1: a single sequential MAC).
    pub output_lanes: usize,
    /// Fractional bits of the datapath quantization (Q`(31-frac)`.`frac`
    /// within a 32-bit word); 16 is the shipped Q16.16 design.
    pub frac_bits: u32,
}

impl Default for DatapathConfig {
    fn default() -> Self {
        Self {
            tree_width: 8,
            exp_latency: 4,
            div_latency: 24,
            exp_lut_entries: 256,
            output_lanes: 1,
            frac_bits: 16,
        }
    }
}

impl DatapathConfig {
    /// Validates the structural parameters.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated constraint.
    pub fn validate(&self) -> Result<(), String> {
        if self.tree_width == 0 {
            return Err("tree_width must be positive".into());
        }
        if self.div_latency == 0 {
            return Err("div_latency must be positive".into());
        }
        if self.exp_lut_entries < 2 {
            return Err("exp_lut_entries must be at least 2".into());
        }
        if self.output_lanes == 0 {
            return Err("output_lanes must be positive".into());
        }
        if self.frac_bits == 0 || self.frac_bits > 30 {
            return Err("frac_bits must be in 1..=30".into());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_valid() {
        assert!(DatapathConfig::default().validate().is_ok());
    }

    #[test]
    fn invalid_configs_are_rejected() {
        let base = DatapathConfig::default();
        assert!(DatapathConfig {
            tree_width: 0,
            ..base
        }
        .validate()
        .is_err());
        assert!(DatapathConfig {
            div_latency: 0,
            ..base
        }
        .validate()
        .is_err());
        assert!(DatapathConfig {
            exp_lut_entries: 1,
            ..base
        }
        .validate()
        .is_err());
        assert!(DatapathConfig {
            output_lanes: 0,
            ..base
        }
        .validate()
        .is_err());
        assert!(DatapathConfig {
            frac_bits: 31,
            ..base
        }
        .validate()
        .is_err());
    }
}
