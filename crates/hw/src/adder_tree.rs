//! Fixed-point adder tree — the reduction structure drawn inside the
//! INPUT & WRITE, MEM, READ and OUTPUT modules of Fig 1.

use mann_linalg::{Fixed, NumericStatus};

use crate::Cycles;

/// A `width`-leaf balanced adder tree.
///
/// One tree reduces up to `width` operands per issue; longer reductions are
/// folded over multiple issues with an accumulator. The latency model is the
/// classic pipelined-tree formula: `ceil(n / width)` issue cycles plus
/// `ceil(log2(width))` stages of register delay.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AdderTree {
    width: usize,
}

impl AdderTree {
    /// Creates a tree with `width` leaves.
    ///
    /// # Panics
    ///
    /// Panics if `width == 0`.
    pub fn new(width: usize) -> Self {
        assert!(width > 0, "adder tree needs at least one leaf");
        Self { width }
    }

    /// Number of leaves.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Register stages through the tree.
    pub fn depth(&self) -> u64 {
        (usize::BITS - (self.width - 1).leading_zeros()) as u64
    }

    /// Reduces `values`, returning the fixed-point sum and the cycles the
    /// reduction occupied the tree.
    pub fn reduce(&self, values: &[Fixed]) -> (Fixed, Cycles) {
        self.reduce_tracked(values, &mut NumericStatus::default())
    }

    /// [`AdderTree::reduce`] with numeric-event accounting: accumulator
    /// saturations are recorded in `st`. The sum is bit-identical to the
    /// untracked reduction.
    pub fn reduce_tracked(&self, values: &[Fixed], st: &mut NumericStatus) -> (Fixed, Cycles) {
        let mut acc = Fixed::ZERO;
        for v in values {
            acc = acc.add_tracked(*v, st);
        }
        (acc, self.reduce_cycles(values.len()))
    }

    /// Latency of reducing `n` operands without computing them.
    pub fn reduce_cycles(&self, n: usize) -> Cycles {
        if n == 0 {
            return Cycles::ZERO;
        }
        let issues = n.div_ceil(self.width) as u64;
        Cycles::new(issues + self.depth())
    }

    /// Dot product of two `f32` slices through the fixed-point datapath:
    /// quantize, multiply (one DSP cycle per issue, overlapped), reduce.
    ///
    /// # Panics
    ///
    /// Panics if the slices differ in length.
    pub fn fixed_dot(&self, a: &[f32], b: &[f32]) -> (Fixed, Cycles) {
        self.fixed_dot_tracked(a, b, &mut NumericStatus::default())
    }

    /// [`AdderTree::fixed_dot`] with numeric-event accounting: quantizer
    /// clamps, product saturations and accumulator saturations are recorded
    /// in `st`. The sum is bit-identical to the untracked dot.
    ///
    /// # Panics
    ///
    /// Panics if the slices differ in length.
    pub fn fixed_dot_tracked(
        &self,
        a: &[f32],
        b: &[f32],
        st: &mut NumericStatus,
    ) -> (Fixed, Cycles) {
        assert_eq!(a.len(), b.len(), "dot operand length mismatch");
        let products: Vec<Fixed> = a
            .iter()
            .zip(b)
            .map(|(&x, &y)| {
                Fixed::from_f32_tracked(x, st).mul_tracked(Fixed::from_f32_tracked(y, st), st)
            })
            .collect();
        let (sum, cycles) = self.reduce_tracked(&products, st);
        // One extra cycle for the multiplier stage ahead of the tree.
        (sum, cycles + Cycles::new(1))
    }
}

impl Default for AdderTree {
    /// Eight leaves — what comfortably fits next to a DSP column at
    /// 100 MHz.
    fn default() -> Self {
        Self::new(8)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn depth_is_log2_width() {
        assert_eq!(AdderTree::new(1).depth(), 0);
        assert_eq!(AdderTree::new(2).depth(), 1);
        assert_eq!(AdderTree::new(8).depth(), 3);
        assert_eq!(AdderTree::new(9).depth(), 4);
    }

    #[test]
    fn reduce_sums_correctly() {
        let tree = AdderTree::new(4);
        let vals: Vec<Fixed> = [1.0f32, 2.0, 3.0, 4.0, 5.0]
            .iter()
            .map(|&x| Fixed::from_f32(x))
            .collect();
        let (sum, cycles) = tree.reduce(&vals);
        assert!((sum.to_f32() - 15.0).abs() < 1e-3);
        // 5 operands over width 4 → 2 issues + depth 2.
        assert_eq!(cycles.get(), 2 + 2);
    }

    #[test]
    fn empty_reduction_is_free_zero() {
        let tree = AdderTree::default();
        let (sum, cycles) = tree.reduce(&[]);
        assert_eq!(sum, Fixed::ZERO);
        assert_eq!(cycles, Cycles::ZERO);
    }

    #[test]
    fn wider_trees_are_faster() {
        let narrow = AdderTree::new(2).reduce_cycles(64);
        let wide = AdderTree::new(16).reduce_cycles(64);
        assert!(wide < narrow);
    }

    #[test]
    fn fixed_dot_matches_float() {
        let tree = AdderTree::default();
        let a = [0.5f32, -1.0, 2.0];
        let b = [2.0f32, 3.0, 0.25];
        let (sum, cycles) = tree.fixed_dot(&a, &b);
        assert!((sum.to_f32() - (1.0 - 3.0 + 0.5)).abs() < 1e-3);
        assert!(cycles.get() > 0);
    }
}
