//! FPGA resource estimates.
//!
//! Closing the EDA loop: the simulator's structural parameters imply an area
//! footprint. The estimates below use standard per-primitive costs (a
//! 32-bit fixed-point adder ≈ 32 LUTs + 32 FFs, a 32×32 multiplier ≈ 4 DSP
//! slices, BRAM in 36 Kb tiles) so configurations can be sanity-checked
//! against the Virtex UltraScale part the paper used.

use serde::{Deserialize, Serialize};

use crate::DatapathConfig;

/// A bag of FPGA primitives.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct ResourceEstimate {
    /// 6-input LUTs.
    pub luts: u64,
    /// Flip-flops.
    pub ffs: u64,
    /// DSP48 slices.
    pub dsps: u64,
    /// 36 Kb block RAM tiles.
    pub bram36: u64,
}

impl ResourceEstimate {
    /// Component-wise sum.
    pub fn combined(self, other: Self) -> Self {
        Self {
            luts: self.luts + other.luts,
            ffs: self.ffs + other.ffs,
            dsps: self.dsps + other.dsps,
            bram36: self.bram36 + other.bram36,
        }
    }

    /// Utilization fractions against a device budget
    /// (`(luts, ffs, dsps, bram)`).
    pub fn utilization(&self, budget: &ResourceEstimate) -> (f64, f64, f64, f64) {
        (
            self.luts as f64 / budget.luts as f64,
            self.ffs as f64 / budget.ffs as f64,
            self.dsps as f64 / budget.dsps as f64,
            self.bram36 as f64 / budget.bram36 as f64,
        )
    }

    /// Whether the design fits the budget on every axis.
    pub fn fits(&self, budget: &ResourceEstimate) -> bool {
        let (l, f, d, b) = self.utilization(budget);
        l <= 1.0 && f <= 1.0 && d <= 1.0 && b <= 1.0
    }
}

/// The Virtex UltraScale XCVU095 (VCU107 board) budget.
pub const VCU107_BUDGET: ResourceEstimate = ResourceEstimate {
    luts: 537_600,
    ffs: 1_075_200,
    dsps: 768,
    bram36: 1_728,
};

const ADDER_LUTS: u64 = 32;
const ADDER_FFS: u64 = 32;
const MULT_DSPS: u64 = 4;
const WORD_BITS: u64 = 32;
const BRAM_BITS: u64 = 36 * 1024;

fn bram_tiles(words: u64) -> u64 {
    (words * WORD_BITS).div_ceil(BRAM_BITS).max(1)
}

/// Estimates the full accelerator for a model of `embed_dim` x `vocab_size`
/// with up to `max_story` memory slots.
pub fn estimate_accelerator(
    dp: &DatapathConfig,
    embed_dim: usize,
    vocab_size: usize,
    max_story: usize,
) -> ResourceEstimate {
    let e = embed_dim as u64;
    let v = vocab_size as u64;
    let l = max_story as u64;
    let w = dp.tree_width as u64;

    // INPUT & WRITE: two embedding BRAMs (E x V each) + E parallel adders
    // per accumulator (x3 accumulators: emb_a, emb_c, emb_q).
    let input_write = ResourceEstimate {
        luts: 3 * e * ADDER_LUTS,
        ffs: 3 * e * ADDER_FFS + 3 * e * WORD_BITS,
        dsps: 0,
        bram36: 2 * bram_tiles(e * v),
    };

    // MEM: address/content memories (L x E each), one MAC tree (w mults +
    // w-1 adders), exp LUT BRAM, one divider (~300 LUTs), softmax registers.
    let mem = ResourceEstimate {
        luts: (w - 1) * ADDER_LUTS + 300 + 4 * WORD_BITS,
        ffs: (w - 1) * ADDER_FFS + 2 * e * WORD_BITS,
        dsps: w * MULT_DSPS,
        bram36: 2 * bram_tiles(l * e) + bram_tiles(dp.exp_lut_entries as u64),
    };

    // READ: W_r BRAM (E x E) + its own MAC tree + h/k registers.
    let read = ResourceEstimate {
        luts: (w - 1) * ADDER_LUTS + 2 * e * WORD_BITS / 8,
        ffs: (w - 1) * ADDER_FFS + 2 * e * WORD_BITS,
        dsps: w * MULT_DSPS,
        bram36: bram_tiles(e * e),
    };

    // OUTPUT: W_o BRAM (V x E) + MAC tree + compare + threshold BRAM.
    let output = ResourceEstimate {
        luts: (w - 1) * ADDER_LUTS + 2 * WORD_BITS,
        ffs: (w - 1) * ADDER_FFS + 3 * WORD_BITS,
        dsps: w * MULT_DSPS,
        bram36: bram_tiles(v * e) + bram_tiles(v),
    };

    // CONTROL + FIFOs: decode logic and two 512-word stream FIFOs.
    let control = ResourceEstimate {
        luts: 500,
        ffs: 400,
        dsps: 0,
        bram36: 2 * bram_tiles(512),
    };

    input_write
        .combined(mem)
        .combined(read)
        .combined(output)
        .combined(control)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_scale_design_fits_vcu107() {
        let est = estimate_accelerator(&DatapathConfig::default(), 32, 180, 20);
        assert!(est.fits(&VCU107_BUDGET), "{est:?}");
        let (l, f, d, b) = est.utilization(&VCU107_BUDGET);
        // A bAbI-sized design is tiny on a VU095.
        assert!(l < 0.1 && f < 0.1 && d < 0.2 && b < 0.2, "{l} {f} {d} {b}");
    }

    #[test]
    fn wider_trees_cost_more_dsps() {
        let narrow = estimate_accelerator(
            &DatapathConfig {
                tree_width: 4,
                ..DatapathConfig::default()
            },
            32,
            100,
            20,
        );
        let wide = estimate_accelerator(
            &DatapathConfig {
                tree_width: 16,
                ..DatapathConfig::default()
            },
            32,
            100,
            20,
        );
        assert!(wide.dsps > narrow.dsps);
    }

    #[test]
    fn bigger_vocab_costs_more_bram() {
        let small = estimate_accelerator(&DatapathConfig::default(), 32, 50, 20);
        let large = estimate_accelerator(&DatapathConfig::default(), 32, 5000, 20);
        assert!(large.bram36 > small.bram36);
    }

    #[test]
    fn utilization_and_fits_agree() {
        let huge = ResourceEstimate {
            luts: VCU107_BUDGET.luts + 1,
            ..Default::default()
        };
        assert!(!huge.fits(&VCU107_BUDGET));
        assert!(
            ResourceEstimate::default()
                .combined(huge)
                .utilization(&VCU107_BUDGET)
                .0
                > 1.0
        );
    }
}
