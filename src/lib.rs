//! Facade crate for the MANN FPGA-accelerator reproduction (Park et al.,
//! DATE 2019).
//!
//! Re-exports every workspace crate under one roof so examples and
//! integration tests can depend on a single package:
//!
//! * [`linalg`] — vectors, matrices, fixed point, activation LUTs.
//! * [`babi`] — synthetic bAbI task generators and encoders.
//! * [`model`] — the end-to-end memory network with training.
//! * [`ith`] — inference thresholding (Algorithm 1).
//! * [`hw`] — the cycle-level dataflow accelerator simulator.
//! * [`platform`] — CPU/GPU analytic execution models and energy reports.
//! * [`core`] — end-to-end pipeline and Table I / Fig 3 / Fig 4 experiment
//!   runners.
//! * [`serve`] — batched multi-accelerator serving layer with simulated-time
//!   latency/energy reporting.
//!
//! # Quick start
//!
//! ```
//! use mann_accel::babi::{DatasetBuilder, TaskId};
//!
//! let data = DatasetBuilder::new().train_samples(5).test_samples(2).seed(1)
//!     .build_task(TaskId::SingleSupportingFact);
//! assert_eq!(data.train.len(), 5);
//! ```

pub use mann_babi as babi;
pub use mann_core as core;
pub use mann_hw as hw;
pub use mann_ith as ith;
pub use mann_linalg as linalg;
pub use mann_platform as platform;
pub use mann_serve as serve;
pub use memn2n as model;
