//! Offline stand-in for the `thiserror` crate.
//!
//! Re-exports the [`Error`] derive macro, which generates
//! `std::fmt::Display` (from `#[error("...")]` attributes),
//! `std::error::Error` (with `source()` chaining), and `From` impls (for
//! `#[from]` fields). See `vendor/thiserror_impl` for the supported
//! shapes.

pub use thiserror_impl::Error;
