//! Offline stand-in for `thiserror-impl`.
//!
//! Implements `#[derive(Error)]` for the error shapes present in this
//! workspace, by hand-parsing the item's token stream (no `syn`/`quote`
//! available offline):
//!
//! - enums whose variants are unit, tuple (any arity), or named-field
//! - structs with named fields or a single tuple field
//!
//! Per variant (or at struct level), a `#[error("...")]` attribute supplies
//! the `Display` format string; `{0}`/`{1}` reference tuple fields and
//! `{name}` references named fields (both with optional `:spec` suffixes).
//! A field named `source`, or a field marked `#[from]`, becomes the
//! `std::error::Error::source()`. `#[from]` on a variant's only field also
//! generates the matching `From` impl.
//!
//! Generics, `#[error(transparent)]`, and format strings referencing
//! fields that do not exist are rejected with a `compile_error!` so
//! unsupported shapes fail loudly at the definition site.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[derive(Debug)]
struct Field {
    /// `None` for tuple fields.
    name: Option<String>,
    /// Source text of the type, tokens joined by spaces.
    ty: String,
    /// Whether the field carries `#[from]`.
    from: bool,
}

#[derive(Debug)]
enum Fields {
    Unit,
    Tuple(Vec<Field>),
    Named(Vec<Field>),
}

#[derive(Debug)]
struct Variant {
    name: String,
    /// The `#[error("...")]` literal, source text including quotes.
    display: String,
    fields: Fields,
}

#[derive(Debug)]
enum Item {
    Enum {
        name: String,
        variants: Vec<Variant>,
    },
    Struct {
        name: String,
        variant: Variant,
    },
}

#[proc_macro_derive(Error, attributes(error, from, source))]
pub fn derive_error(input: TokenStream) -> TokenStream {
    let code = match parse_item(input).map(|item| generate(&item)) {
        Ok(code) => code,
        Err(msg) => format!("compile_error!({msg:?});"),
    };
    code.parse().expect("generated code must tokenize")
}

/// Collects leading attributes, returning the `#[error("...")]` literal if
/// one is present (other attributes — doc comments, `#[from]` markers at
/// this level — are skipped).
fn take_attrs(
    iter: &mut std::iter::Peekable<proc_macro::token_stream::IntoIter>,
) -> Result<(Option<String>, bool), String> {
    let mut display = None;
    let mut from = false;
    while matches!(iter.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '#') {
        iter.next();
        let Some(TokenTree::Group(g)) = iter.next() else {
            return Err("expected [...] after #".to_string());
        };
        let mut inner = g.stream().into_iter();
        match inner.next() {
            Some(TokenTree::Ident(id)) if id.to_string() == "error" => match inner.next() {
                Some(TokenTree::Group(args)) if args.delimiter() == Delimiter::Parenthesis => {
                    let mut lit = None;
                    for tt in args.stream() {
                        match tt {
                            TokenTree::Literal(l) if lit.is_none() => lit = Some(l.to_string()),
                            other => {
                                return Err(format!(
                                    "unsupported #[error(...)] argument `{other}` (only a \
                                         single format-string literal is supported)"
                                ))
                            }
                        }
                    }
                    let lit = lit.ok_or("empty #[error()] attribute")?;
                    if !lit.starts_with('"') {
                        return Err(format!(
                            "#[error({lit})] is not a string literal (transparent and \
                                 computed messages are not supported)"
                        ));
                    }
                    display = Some(lit);
                }
                other => return Err(format!("malformed #[error] attribute: {other:?}")),
            },
            Some(TokenTree::Ident(id)) if id.to_string() == "from" => from = true,
            _ => {} // doc comments, cfgs, etc.
        }
    }
    Ok((display, from))
}

fn tokens_to_string(tokens: &[TokenTree]) -> String {
    // Join without spaces except between adjacent word-like tokens, so
    // `std::io::Error` round-trips as a valid path while `dyn Error` keeps
    // its separating space.
    let mut out = String::new();
    let mut prev_wordy = false;
    for tt in tokens {
        let wordy = matches!(tt, TokenTree::Ident(_) | TokenTree::Literal(_));
        if prev_wordy && wordy {
            out.push(' ');
        }
        out.push_str(&tt.to_string());
        prev_wordy = wordy;
    }
    out
}

/// Parses tuple-variant fields: `#[from]? Type (, #[from]? Type)*`.
fn parse_tuple_fields(body: TokenStream) -> Result<Vec<Field>, String> {
    let mut fields = Vec::new();
    let mut iter = body.into_iter().peekable();
    while iter.peek().is_some() {
        let (_, from) = take_attrs(&mut iter)?;
        // `pub` visibility on tuple fields.
        if matches!(iter.peek(), Some(TokenTree::Ident(id)) if id.to_string() == "pub") {
            iter.next();
            if matches!(iter.peek(), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
            {
                iter.next();
            }
        }
        let mut ty = Vec::new();
        let mut angle = 0i32;
        for tt in iter.by_ref() {
            match &tt {
                TokenTree::Punct(p) if p.as_char() == '<' => angle += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => angle -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && angle == 0 => break,
                _ => {}
            }
            ty.push(tt);
        }
        if ty.is_empty() {
            break;
        }
        fields.push(Field {
            name: None,
            ty: tokens_to_string(&ty),
            from,
        });
    }
    Ok(fields)
}

/// Parses named fields: `#[from]? pub? name: Type (, ...)*`.
fn parse_named_fields(body: TokenStream) -> Result<Vec<Field>, String> {
    let mut fields = Vec::new();
    let mut iter = body.into_iter().peekable();
    while iter.peek().is_some() {
        let (_, from) = take_attrs(&mut iter)?;
        if matches!(iter.peek(), Some(TokenTree::Ident(id)) if id.to_string() == "pub") {
            iter.next();
            if matches!(iter.peek(), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
            {
                iter.next();
            }
        }
        let Some(tt) = iter.next() else { break };
        let TokenTree::Ident(name) = tt else {
            return Err(format!("expected field name, got `{tt}`"));
        };
        match iter.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => return Err(format!("expected `:` after field, got {other:?}")),
        }
        let mut ty = Vec::new();
        let mut angle = 0i32;
        for tt in iter.by_ref() {
            match &tt {
                TokenTree::Punct(p) if p.as_char() == '<' => angle += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => angle -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && angle == 0 => break,
                _ => {}
            }
            ty.push(tt);
        }
        fields.push(Field {
            name: Some(name.to_string()),
            ty: tokens_to_string(&ty),
            from,
        });
    }
    Ok(fields)
}

fn parse_variants(body: TokenStream) -> Result<Vec<Variant>, String> {
    let mut variants = Vec::new();
    let mut iter = body.into_iter().peekable();
    loop {
        let (display, _) = take_attrs(&mut iter)?;
        let Some(tt) = iter.next() else { break };
        let TokenTree::Ident(name) = tt else {
            return Err(format!("expected variant name, got `{tt}`"));
        };
        let name = name.to_string();
        let display = display
            .ok_or_else(|| format!("variant `{name}` is missing its #[error(\"...\")] message"))?;
        let fields = match iter.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let g = g.stream();
                iter.next();
                Fields::Tuple(parse_tuple_fields(g)?)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let g = g.stream();
                iter.next();
                Fields::Named(parse_named_fields(g)?)
            }
            _ => Fields::Unit,
        };
        variants.push(Variant {
            name,
            display,
            fields,
        });
        match iter.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ',' => {}
            Some(other) => return Err(format!("expected `,` after variant, got `{other}`")),
            None => break,
        }
    }
    Ok(variants)
}

fn parse_item(input: TokenStream) -> Result<Item, String> {
    let mut iter = input.into_iter().peekable();
    let (item_display, _) = take_attrs(&mut iter)?;
    let kind = loop {
        match iter.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                iter.next();
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                if matches!(iter.peek(), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
                {
                    iter.next();
                }
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "struct" => break "struct",
            Some(TokenTree::Ident(id)) if id.to_string() == "enum" => break "enum",
            Some(other) => return Err(format!("unexpected token `{other}` before item")),
            None => return Err("empty derive input".to_string()),
        }
    };
    let name = match iter.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected item name, got {other:?}")),
    };
    if matches!(iter.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        return Err(format!("cannot derive Error for generic type `{name}`"));
    }
    if kind == "enum" {
        let Some(TokenTree::Group(g)) = iter.next() else {
            return Err(format!("expected enum body for `{name}`"));
        };
        let variants = parse_variants(g.stream())?;
        if variants.is_empty() {
            return Err(format!("enum `{name}` has no variants"));
        }
        return Ok(Item::Enum { name, variants });
    }
    let display = item_display.ok_or_else(|| format!("struct `{name}` needs #[error(\"...\")]"))?;
    let fields = match iter.next() {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
            Fields::Named(parse_named_fields(g.stream())?)
        }
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
            let fields = parse_tuple_fields(g.stream())?;
            if fields.len() != 1 {
                return Err(format!("tuple struct `{name}` must have exactly one field"));
            }
            Fields::Tuple(fields)
        }
        _ => Fields::Unit,
    };
    Ok(Item::Struct {
        name,
        variant: Variant {
            name: String::new(),
            display,
            fields,
        },
    })
}

/// Rewrites `{0}` / `{0:spec}` positional references in the format literal
/// to the generated binding names `{__f0}`, leaving named references
/// (inline ident capture) alone.
fn rewrite_positional(lit: &str, arity: usize) -> String {
    let mut out = lit.to_string();
    for i in 0..arity {
        out = out.replace(&format!("{{{i}}}"), &format!("{{__f{i}}}"));
        out = out.replace(&format!("{{{i}:"), &format!("{{__f{i}:"));
    }
    out
}

/// The field acting as `source()`: named `source`, or marked `#[from]`.
fn source_index(fields: &[Field]) -> Option<usize> {
    fields
        .iter()
        .position(|f| f.name.as_deref() == Some("source"))
        .or_else(|| fields.iter().position(|f| f.from))
}

fn generate(item: &Item) -> String {
    let (name, variants, is_enum) = match item {
        Item::Enum { name, variants } => (name.as_str(), variants.as_slice(), true),
        Item::Struct { name, variant } => (name.as_str(), std::slice::from_ref(variant), false),
    };

    let mut display_arms = Vec::new();
    let mut source_arms = Vec::new();
    let mut from_impls = Vec::new();

    for v in variants {
        // `Self::Variant` for enums, `Self` for the struct pseudo-variant.
        let path = if is_enum {
            format!("Self::{}", v.name)
        } else {
            "Self".to_string()
        };
        let (pattern, lit, fields) = match &v.fields {
            Fields::Unit => (path.clone(), v.display.clone(), &[][..]),
            Fields::Tuple(fields) => {
                let binds: Vec<String> = (0..fields.len()).map(|i| format!("__f{i}")).collect();
                (
                    format!("{path}({})", binds.join(", ")),
                    rewrite_positional(&v.display, fields.len()),
                    fields.as_slice(),
                )
            }
            Fields::Named(fields) => {
                let binds: Vec<String> = fields.iter().filter_map(|f| f.name.clone()).collect();
                (
                    format!("{path} {{ {} }}", binds.join(", ")),
                    v.display.clone(),
                    fields.as_slice(),
                )
            }
        };
        display_arms.push(format!("{pattern} => ::std::write!(__formatter, {lit}),"));
        match source_index(fields) {
            Some(idx) => {
                let bind = match &fields[idx].name {
                    Some(n) => n.clone(),
                    None => format!("__f{idx}"),
                };
                source_arms.push(format!(
                    "{pattern} => ::std::option::Option::Some({bind} \
                     as &(dyn ::std::error::Error + 'static)),"
                ));
            }
            None => source_arms.push(format!("{pattern} => ::std::option::Option::None,")),
        }
        // `#[from]` on a variant's only field generates the From impl.
        if let Some(idx) = fields.iter().position(|f| f.from) {
            if fields.len() != 1 {
                return format!(
                    "compile_error!(\"#[from] requires `{}::{}` to have exactly one field\");",
                    name, v.name
                );
            }
            let ty = &fields[idx].ty;
            let construct = match (&v.fields, &fields[idx].name) {
                (Fields::Named(_), Some(n)) => format!("{path} {{ {n}: __value }}"),
                _ => format!("{path}(__value)"),
            };
            // `Self` is not in scope inside a free `From` impl; spell the
            // constructor through the concrete type name.
            let construct = construct.replacen("Self", name, 1);
            from_impls.push(format!(
                "impl ::std::convert::From<{ty}> for {name} {{\n\
                 fn from(__value: {ty}) -> Self {{ {construct} }}\n\
                 }}"
            ));
        }
    }

    format!(
        "impl ::std::fmt::Display for {name} {{\n\
         #[allow(unused_variables, clippy::used_underscore_binding)]\n\
         fn fmt(&self, __formatter: &mut ::std::fmt::Formatter<'_>) -> ::std::fmt::Result {{\n\
         match self {{ {display} }}\n\
         }}\n\
         }}\n\
         impl ::std::error::Error for {name} {{\n\
         #[allow(unused_variables, clippy::match_single_binding)]\n\
         fn source(&self) -> ::std::option::Option<&(dyn ::std::error::Error + 'static)> {{\n\
         match self {{ {source} }}\n\
         }}\n\
         }}\n\
         {from}",
        display = display_arms.join(" "),
        source = source_arms.join(" "),
        from = from_impls.join("\n"),
    )
}
