//! The JSON data model: value tree, parser, and printers.

use std::fmt;

/// A parsed JSON value.
///
/// Numbers keep their literal text so that values round-trip exactly and
/// integer/float interpretation is deferred to the deserializer. Objects
/// are ordered key/value lists — order is whatever the producer emitted,
/// which the serializers in this workspace keep deterministic.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// A numeric literal, kept as text.
    Num(String),
    /// A string (unescaped).
    Str(String),
    /// `[ ... ]`
    Array(Vec<Value>),
    /// `{ ... }` as an ordered key/value list.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// A short name of the value's kind, for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Num(_) => "number",
            Value::Str(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Looks up a field of an object, erroring on missing keys or
    /// non-object values.
    ///
    /// # Errors
    ///
    /// Returns [`Error`] if `self` is not an object or lacks `name`.
    pub fn field(&self, name: &str) -> Result<&Value, Error> {
        match self {
            Value::Object(pairs) => pairs
                .iter()
                .find(|(k, _)| k == name)
                .map(|(_, v)| v)
                .ok_or_else(|| Error::msg(format!("missing field `{name}`"))),
            other => Err(Error::msg(format!(
                "expected object with field `{name}`, got {}",
                other.kind()
            ))),
        }
    }

    /// Compact single-line rendering.
    pub fn print(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Pretty rendering with 2-space indentation.
    pub fn print_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, level: usize) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(true) => out.push_str("true"),
            Value::Bool(false) => out.push_str("false"),
            Value::Num(raw) => out.push_str(raw),
            Value::Str(s) => write_escaped(out, s),
            Value::Array(items) => {
                write_seq(out, indent, level, '[', ']', items.len(), |out, i, lvl| {
                    items[i].write(out, indent, lvl);
                });
            }
            Value::Object(pairs) => {
                write_seq(out, indent, level, '{', '}', pairs.len(), |out, i, lvl| {
                    write_escaped(out, &pairs[i].0);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    pairs[i].1.write(out, indent, lvl);
                });
            }
        }
    }
}

fn write_seq(
    out: &mut String,
    indent: Option<usize>,
    level: usize,
    open: char,
    close: char,
    len: usize,
    mut item: impl FnMut(&mut String, usize, usize),
) {
    out.push(open);
    if len == 0 {
        out.push(close);
        return;
    }
    for i in 0..len {
        if i > 0 {
            out.push(',');
        }
        if let Some(w) = indent {
            out.push('\n');
            out.push_str(&" ".repeat(w * (level + 1)));
        }
        item(out, i, level + 1);
    }
    if let Some(w) = indent {
        out.push('\n');
        out.push_str(&" ".repeat(w * level));
    }
    out.push(close);
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A (de)serialization error: malformed JSON or a schema mismatch.
#[derive(Debug, Clone)]
pub struct Error {
    msg: String,
}

impl Error {
    /// Creates an error from a message.
    pub fn msg(msg: impl Into<String>) -> Self {
        Self { msg: msg.into() }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for Error {}

/// Parses one JSON document, rejecting trailing garbage.
///
/// # Errors
///
/// Returns [`Error`] on any syntax error.
pub fn parse(text: &str) -> Result<Value, Error> {
    let bytes = text.as_bytes();
    let mut pos = 0;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(Error::msg(format!("trailing characters at byte {pos}")));
    }
    Ok(value)
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, c: u8) -> Result<(), Error> {
    if *pos < bytes.len() && bytes[*pos] == c {
        *pos += 1;
        Ok(())
    } else {
        Err(Error::msg(format!(
            "expected `{}` at byte {}",
            c as char, *pos
        )))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Value, Error> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        Some(b'n') => parse_keyword(bytes, pos, "null", Value::Null),
        Some(b't') => parse_keyword(bytes, pos, "true", Value::Bool(true)),
        Some(b'f') => parse_keyword(bytes, pos, "false", Value::Bool(false)),
        Some(b'"') => Ok(Value::Str(parse_string(bytes, pos)?)),
        Some(b'[') => parse_array(bytes, pos),
        Some(b'{') => parse_object(bytes, pos),
        Some(c) if c.is_ascii_digit() || *c == b'-' => parse_number(bytes, pos),
        Some(c) => Err(Error::msg(format!(
            "unexpected character `{}` at byte {}",
            *c as char, *pos
        ))),
        None => Err(Error::msg("unexpected end of input")),
    }
}

fn parse_keyword(bytes: &[u8], pos: &mut usize, word: &str, value: Value) -> Result<Value, Error> {
    if bytes[*pos..].starts_with(word.as_bytes()) {
        *pos += word.len();
        Ok(value)
    } else {
        Err(Error::msg(format!("bad literal at byte {}", *pos)))
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Value, Error> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    let digits_start = *pos;
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
    {
        *pos += 1;
    }
    if *pos == digits_start {
        return Err(Error::msg(format!("bad number at byte {start}")));
    }
    let raw =
        std::str::from_utf8(&bytes[start..*pos]).map_err(|_| Error::msg("non-utf8 number"))?;
    // Validate by parsing as f64 (covers every literal this crate emits).
    raw.parse::<f64>()
        .map_err(|_| Error::msg(format!("bad number literal `{raw}`")))?;
    Ok(Value::Num(raw.to_string()))
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, Error> {
    expect(bytes, pos, b'"')?;
    let mut out = String::new();
    loop {
        let Some(&c) = bytes.get(*pos) else {
            return Err(Error::msg("unterminated string"));
        };
        *pos += 1;
        match c {
            b'"' => return Ok(out),
            b'\\' => {
                let Some(&esc) = bytes.get(*pos) else {
                    return Err(Error::msg("unterminated escape"));
                };
                *pos += 1;
                match esc {
                    b'"' => out.push('"'),
                    b'\\' => out.push('\\'),
                    b'/' => out.push('/'),
                    b'b' => out.push('\u{8}'),
                    b'f' => out.push('\u{c}'),
                    b'n' => out.push('\n'),
                    b'r' => out.push('\r'),
                    b't' => out.push('\t'),
                    b'u' => {
                        let hex = bytes
                            .get(*pos..*pos + 4)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .ok_or_else(|| Error::msg("bad \\u escape"))?;
                        let code = u32::from_str_radix(hex, 16)
                            .map_err(|_| Error::msg("bad \\u escape"))?;
                        *pos += 4;
                        out.push(
                            char::from_u32(code).ok_or_else(|| Error::msg("bad \\u code point"))?,
                        );
                    }
                    other => return Err(Error::msg(format!("bad escape `\\{}`", other as char))),
                }
            }
            _ => {
                // Re-sync to char boundaries for multi-byte UTF-8.
                let s = std::str::from_utf8(&bytes[*pos - 1..])
                    .map_err(|_| Error::msg("non-utf8 string"))?;
                let ch = s.chars().next().ok_or_else(|| Error::msg("empty char"))?;
                out.push(ch);
                *pos += ch.len_utf8() - 1;
            }
        }
    }
}

fn parse_array(bytes: &[u8], pos: &mut usize) -> Result<Value, Error> {
    expect(bytes, pos, b'[')?;
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Value::Array(items));
    }
    loop {
        items.push(parse_value(bytes, pos)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Value::Array(items));
            }
            _ => return Err(Error::msg(format!("expected `,` or `]` at byte {}", *pos))),
        }
    }
}

fn parse_object(bytes: &[u8], pos: &mut usize) -> Result<Value, Error> {
    expect(bytes, pos, b'{')?;
    let mut pairs = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Value::Object(pairs));
    }
    loop {
        skip_ws(bytes, pos);
        let key = parse_string(bytes, pos)?;
        skip_ws(bytes, pos);
        expect(bytes, pos, b':')?;
        let value = parse_value(bytes, pos)?;
        pairs.push((key, value));
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Value::Object(pairs));
            }
            _ => return Err(Error::msg(format!("expected `,` or `}}` at byte {}", *pos))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_print_round_trip() {
        let text = r#"{"a":[1,2.5,-3e2],"b":{"nested":true},"s":"hi\nthere","n":null}"#;
        let v = parse(text).unwrap();
        assert_eq!(parse(&v.print()).unwrap(), v);
        assert_eq!(parse(&v.print_pretty()).unwrap(), v);
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in ["{not json", "[1,", "\"open", "{\"a\" 1}", "12 34", ""] {
            assert!(parse(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn escapes_round_trip() {
        let v = Value::Str("line\n\"quoted\"\tπ \u{1}".to_string());
        assert_eq!(parse(&v.print()).unwrap(), v);
    }

    #[test]
    fn field_lookup() {
        let v = parse(r#"{"x":1}"#).unwrap();
        assert_eq!(v.field("x").unwrap(), &Value::Num("1".into()));
        assert!(v.field("y").is_err());
        assert!(Value::Null.field("x").is_err());
    }
}
