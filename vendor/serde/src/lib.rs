//! Offline stand-in for the `serde` crate.
//!
//! The build environment has no access to a crates registry, so this
//! vendored crate provides the (much smaller) data-model this workspace
//! needs: a [`Serialize`]/[`Deserialize`] trait pair over an in-tree JSON
//! [`json::Value`], plus derive macros re-exported from `serde_derive`.
//!
//! Design points that matter to the rest of the workspace:
//!
//! - **Float round-tripping**: floats are printed with Rust's `Display`,
//!   which emits the shortest string that parses back to the identical
//!   bits, so `to_string` → `from_str` is lossless for finite values.
//! - **Deterministic output**: `HashMap`s serialize with sorted keys and
//!   struct fields serialize in declaration order, so equal values always
//!   produce byte-identical JSON (several tests and the on-disk suite
//!   cache rely on this).

pub mod json;

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

use std::collections::HashMap;

use json::{Error, Value};

/// Conversion into the JSON data model.
pub trait Serialize {
    /// The JSON value representing `self`.
    fn to_value(&self) -> Value;
}

/// Conversion from the JSON data model.
pub trait Deserialize: Sized {
    /// Rebuilds `Self` from a JSON value.
    ///
    /// # Errors
    ///
    /// Returns [`Error`] when `v` does not match the expected shape.
    fn from_value(v: &Value) -> Result<Self, Error>;
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(Error::msg(format!("expected bool, got {}", other.kind()))),
        }
    }
}

macro_rules! impl_int {
    ($($t:ty),* $(,)?) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Num(self.to_string())
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::Num(raw) => raw.parse().map_err(|_| {
                        Error::msg(format!(
                            "number {raw} out of range for {}",
                            stringify!($t)
                        ))
                    }),
                    other => Err(Error::msg(format!(
                        "expected {}, got {}",
                        stringify!($t),
                        other.kind()
                    ))),
                }
            }
        }
    )*};
}

impl_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float {
    ($($t:ident),* $(,)?) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                // JSON has no Inf/NaN; mirror serde_json and emit null.
                if self.is_finite() {
                    Value::Num(self.to_string())
                } else {
                    Value::Null
                }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::Num(raw) => raw.parse().map_err(|_| {
                        Error::msg(format!("bad {} literal: {raw}", stringify!($t)))
                    }),
                    Value::Null => Ok($t::NAN),
                    other => Err(Error::msg(format!(
                        "expected {}, got {}",
                        stringify!($t),
                        other.kind()
                    ))),
                }
            }
        }
    )*};
}

impl_float!(f32, f64);

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => Err(Error::msg(format!("expected string, got {}", other.kind()))),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Array(items) => items.iter().map(Deserialize::from_value).collect(),
            other => Err(Error::msg(format!("expected array, got {}", other.kind()))),
        }
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => Ok(Some(T::from_value(other)?)),
        }
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn to_value(&self) -> Value {
        Value::Array(vec![self.0.to_value(), self.1.to_value()])
    }
}

impl<A: Deserialize, B: Deserialize> Deserialize for (A, B) {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Array(items) if items.len() == 2 => {
                Ok((A::from_value(&items[0])?, B::from_value(&items[1])?))
            }
            other => Err(Error::msg(format!(
                "expected 2-element array, got {}",
                other.kind()
            ))),
        }
    }
}

impl<V: Serialize> Serialize for HashMap<String, V> {
    fn to_value(&self) -> Value {
        // Sorted keys keep the output deterministic regardless of hash
        // iteration order.
        let mut pairs: Vec<(String, Value)> = self
            .iter()
            .map(|(k, v)| (k.clone(), v.to_value()))
            .collect();
        pairs.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Object(pairs)
    }
}

impl<V: Deserialize> Deserialize for HashMap<String, V> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Object(pairs) => pairs
                .iter()
                .map(|(k, v)| Ok((k.clone(), V::from_value(v)?)))
                .collect(),
            other => Err(Error::msg(format!("expected object, got {}", other.kind()))),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        assert_eq!(u64::from_value(&42u64.to_value()).unwrap(), 42);
        assert_eq!(i32::from_value(&(-7i32).to_value()).unwrap(), -7);
        assert!(bool::from_value(&true.to_value()).unwrap());
        let x = 0.1f32;
        assert_eq!(f32::from_value(&x.to_value()).unwrap(), x);
        let y = std::f64::consts::PI;
        assert_eq!(f64::from_value(&y.to_value()).unwrap(), y);
    }

    #[test]
    fn float_shortest_form_survives() {
        for &x in &[0.1f32, 1e-8, 16_777_216.0, -3.4e38, f32::MIN_POSITIVE] {
            let v = x.to_value();
            assert_eq!(f32::from_value(&v).unwrap().to_bits(), x.to_bits());
        }
    }

    #[test]
    fn containers_round_trip() {
        let v = vec![vec![1usize, 2], vec![3]];
        assert_eq!(Vec::<Vec<usize>>::from_value(&v.to_value()).unwrap(), v);
        let o: Option<f32> = Some(2.5);
        assert_eq!(Option::<f32>::from_value(&o.to_value()).unwrap(), o);
        let n: Option<f32> = None;
        assert_eq!(Option::<f32>::from_value(&n.to_value()).unwrap(), n);
        let t = (1.5f32, -2.25f32);
        assert_eq!(<(f32, f32)>::from_value(&t.to_value()).unwrap(), t);
    }

    #[test]
    fn hashmap_serializes_sorted() {
        let mut m = HashMap::new();
        m.insert("zebra".to_string(), 1usize);
        m.insert("ant".to_string(), 2usize);
        let v = m.to_value();
        match &v {
            Value::Object(pairs) => {
                assert_eq!(pairs[0].0, "ant");
                assert_eq!(pairs[1].0, "zebra");
            }
            other => panic!("expected object, got {}", other.kind()),
        }
        assert_eq!(HashMap::<String, usize>::from_value(&v).unwrap(), m);
    }

    #[test]
    fn shape_mismatches_error() {
        assert!(u64::from_value(&Value::Str("x".into())).is_err());
        assert!(String::from_value(&Value::Num("1".into())).is_err());
        assert!(Vec::<u64>::from_value(&Value::Bool(false)).is_err());
    }
}
