//! Offline stand-in for the `serde_json` crate: `to_string`,
//! `to_string_pretty`, and `from_str` over the in-tree `serde` data model.
//!
//! Floats always print in shortest-round-trip form (Rust's `Display`), so
//! the `float_roundtrip` feature flag is accepted but has nothing to do.

pub use serde::json::{Error, Value};

use serde::{Deserialize, Serialize};

/// Serializes `value` as compact JSON.
///
/// # Errors
///
/// Infallible for the in-tree data model; the `Result` mirrors the real
/// `serde_json` signature.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    Ok(value.to_value().print())
}

/// Serializes `value` as 2-space-indented JSON.
///
/// # Errors
///
/// Infallible for the in-tree data model; the `Result` mirrors the real
/// `serde_json` signature.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    Ok(value.to_value().print_pretty())
}

/// Parses JSON text into `T`.
///
/// # Errors
///
/// Returns [`Error`] on malformed JSON or a schema mismatch.
pub fn from_str<T: Deserialize>(text: &str) -> Result<T, Error> {
    T::from_value(&serde::json::parse(text)?)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vec_round_trip() {
        let v = vec![1.5f32, -0.25, 1e-7];
        let json = to_string(&v).unwrap();
        let back: Vec<f32> = from_str(&json).unwrap();
        assert_eq!(v, back);
        assert_eq!(json, to_string(&back).unwrap());
    }

    #[test]
    fn pretty_output_parses_back() {
        let v = vec![vec![1u64, 2], vec![3]];
        let back: Vec<Vec<u64>> = from_str(&to_string_pretty(&v).unwrap()).unwrap();
        assert_eq!(v, back);
    }

    #[test]
    fn garbage_is_an_error() {
        assert!(from_str::<Vec<u64>>("{not json").is_err());
        assert!(from_str::<Vec<u64>>("true").is_err());
    }
}
