//! Offline stand-in for the `proptest` crate.
//!
//! Provides the API subset this workspace uses — the `proptest!` macro,
//! `prop_assert!`/`prop_assert_eq!`, range/`any`/tuple strategies,
//! `prop_map`/`prop_flat_map`, `collection::vec`, and `option::of` — with
//! one deliberate simplification: inputs are sampled from a generator
//! seeded by the test's name, so every run explores the same deterministic
//! case set, and failures panic immediately instead of shrinking. That
//! trades minimal counterexamples for reproducibility without a registry
//! dependency.

use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

use test_runner::TestRng;

/// Per-`proptest!` block configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of cases generated per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 64 }
    }
}

/// A source of random values of an associated type.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transforms generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Builds a dependent strategy from each generated value.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;

    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, T: Strategy, F: Fn(S::Value) -> T> Strategy for FlatMap<S, F> {
    type Value = T::Value;

    fn generate(&self, rng: &mut TestRng) -> T::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

impl<T> Strategy for Range<T>
where
    Range<T>: rand::distributions::SampleRange<T> + Clone,
{
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        rand::Rng::gen_range(rng, self.clone())
    }
}

impl<T> Strategy for RangeInclusive<T>
where
    RangeInclusive<T>: rand::distributions::SampleRange<T> + Clone,
{
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        rand::Rng::gen_range(rng, self.clone())
    }
}

macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                #[allow(non_snake_case)]
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

tuple_strategy!(A);
tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);

/// Types with a canonical full-domain strategy (see [`any`]).
pub trait Arbitrary {
    /// Draws one value from the type's full domain.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arbitrary_uint {
    ($($t:ty),* $(,)?) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rand::RngCore::next_u64(rng) as $t
            }
        }
    )*};
}

arbitrary_uint!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rand::RngCore::next_u64(rng) & 1 == 1
    }
}

/// The full-domain strategy for `T` (`any::<u64>()` etc.).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

/// See [`any`].
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// A strategy that always yields a clone of one value.
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

pub mod collection {
    //! Collection strategies (`vec`).

    use super::{Strategy, TestRng};
    use std::ops::{Range, RangeInclusive};

    /// A length specification: a fixed size or a size range.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi_inclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            Self {
                lo: n,
                hi_inclusive: n,
            }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty vec size range");
            Self {
                lo: r.start,
                hi_inclusive: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            Self {
                lo: *r.start(),
                hi_inclusive: *r.end(),
            }
        }
    }

    /// See [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// A strategy for `Vec`s of `element` values with a length drawn from
    /// `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rand::Rng::gen_range(rng, self.size.lo..=self.size.hi_inclusive);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod option {
    //! `Option` strategies (`of`).

    use super::{Strategy, TestRng};

    /// See [`of`].
    pub struct OptionStrategy<S>(S);

    /// A strategy yielding `Some` (3 times in 4) or `None`.
    pub fn of<S: Strategy>(element: S) -> OptionStrategy<S> {
        OptionStrategy(element)
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rand::Rng::gen_bool(rng, 0.75) {
                Some(self.0.generate(rng))
            } else {
                None
            }
        }
    }
}

pub mod test_runner {
    //! The deterministic generator behind every strategy.

    /// Random source for one property test, seeded from the test's name so
    /// runs are reproducible without any registry or persistence files.
    pub struct TestRng(rand::StdRng);

    impl TestRng {
        /// A generator whose stream is a pure function of `test_name`.
        pub fn for_test(test_name: &str) -> Self {
            // FNV-1a.
            let mut h = 0xcbf2_9ce4_8422_2325u64;
            for b in test_name.bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
            Self(rand::SeedableRng::seed_from_u64(h))
        }
    }

    impl rand::RngCore for TestRng {
        fn next_u64(&mut self) -> u64 {
            self.0.next_u64()
        }
    }
}

pub mod prelude {
    //! The glob-import surface: `use proptest::prelude::*;`.

    pub use crate::{
        any, prop_assert, prop_assert_eq, proptest, Arbitrary, Just, ProptestConfig, Strategy,
    };
}

/// Defines `#[test]` functions whose arguments are drawn from strategies.
///
/// Each property runs `config.cases` deterministic cases; assertion
/// failures panic immediately (no shrinking).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat_param in $strat:expr),+ $(,)?) $body:block
    )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::ProptestConfig = $cfg;
                let mut __rng = $crate::test_runner::TestRng::for_test(stringify!($name));
                for _ in 0..__config.cases {
                    $(let $pat = $crate::Strategy::generate(&($strat), &mut __rng);)+
                    $body
                }
            }
        )*
    };
}

/// Asserts a condition inside a property body.
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)+) => { assert!($($args)+) };
}

/// Asserts equality inside a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)+) => { assert_eq!($($args)+) };
}
