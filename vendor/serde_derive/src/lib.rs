//! Offline stand-in for `serde_derive`.
//!
//! Implements `#[derive(Serialize)]` / `#[derive(Deserialize)]` for the
//! type shapes present in this workspace, by hand-parsing the item's token
//! stream (no `syn`/`quote` available offline):
//!
//! - structs with named fields → JSON objects, fields in declaration order
//! - newtype structs (`struct Cycles(u64);`) → the inner value, transparent
//! - enums whose variants all carry no data → the variant name as a string
//!
//! Generics, data-carrying enum variants, and `#[serde(...)]` attributes
//! are rejected with a `compile_error!` so unsupported shapes fail loudly
//! at the definition site instead of producing wrong JSON.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// The supported item shapes.
enum Shape {
    /// Struct with named fields (field names in declaration order).
    Named(Vec<String>),
    /// Tuple struct with exactly one field.
    Newtype,
    /// Enum whose variants all carry no data.
    UnitEnum(Vec<String>),
}

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    expand(input, true)
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    expand(input, false)
}

fn expand(input: TokenStream, serialize: bool) -> TokenStream {
    let code = match parse_item(input) {
        Ok((name, shape)) => {
            if serialize {
                gen_serialize(&name, &shape)
            } else {
                gen_deserialize(&name, &shape)
            }
        }
        Err(msg) => format!("compile_error!({:?});", msg),
    };
    code.parse().expect("generated code must tokenize")
}

/// Parses the derive input down to (type name, shape).
fn parse_item(input: TokenStream) -> Result<(String, Shape), String> {
    let mut iter = input.into_iter().peekable();
    let kind = loop {
        match iter.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                iter.next(); // the [...] attribute group
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                if let Some(TokenTree::Group(g)) = iter.peek() {
                    if g.delimiter() == Delimiter::Parenthesis {
                        iter.next(); // pub(crate) etc.
                    }
                }
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "struct" => break "struct",
            Some(TokenTree::Ident(id)) if id.to_string() == "enum" => break "enum",
            Some(other) => return Err(format!("unexpected token `{other}` before item")),
            None => return Err("empty derive input".to_string()),
        }
    };
    let name = match iter.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected item name, got {other:?}")),
    };
    if matches!(iter.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        return Err(format!("cannot derive for generic type `{name}`"));
    }
    let body = match iter.next() {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
            if kind == "struct" {
                Shape::Named(parse_named_fields(g.stream())?)
            } else {
                Shape::UnitEnum(parse_unit_variants(g.stream(), &name)?)
            }
        }
        Some(TokenTree::Group(g))
            if g.delimiter() == Delimiter::Parenthesis && kind == "struct" =>
        {
            if count_top_level_fields(g.stream()) == 1 {
                Shape::Newtype
            } else {
                return Err(format!("tuple struct `{name}` must have exactly one field"));
            }
        }
        other => return Err(format!("unexpected item body for `{name}`: {other:?}")),
    };
    Ok((name, body))
}

/// Extracts field names from the braces of a named-field struct.
fn parse_named_fields(body: TokenStream) -> Result<Vec<String>, String> {
    let mut fields = Vec::new();
    let mut iter = body.into_iter().peekable();
    loop {
        // Skip doc comments / attributes and visibility.
        loop {
            match iter.peek() {
                Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                    iter.next();
                    iter.next();
                }
                Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                    iter.next();
                    if let Some(TokenTree::Group(g)) = iter.peek() {
                        if g.delimiter() == Delimiter::Parenthesis {
                            iter.next();
                        }
                    }
                }
                _ => break,
            }
        }
        let Some(tt) = iter.next() else { break };
        let TokenTree::Ident(field) = tt else {
            return Err(format!("expected field name, got `{tt}`"));
        };
        match iter.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => return Err(format!("expected `:` after field, got {other:?}")),
        }
        // Consume the type: everything up to the next comma outside angle
        // brackets (commas inside `(...)`/`[...]` are nested groups already).
        let mut angle_depth = 0i32;
        for tt in iter.by_ref() {
            match tt {
                TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => break,
                _ => {}
            }
        }
        fields.push(field.to_string());
    }
    Ok(fields)
}

/// Extracts variant names from an enum body, rejecting payload variants.
fn parse_unit_variants(body: TokenStream, enum_name: &str) -> Result<Vec<String>, String> {
    let mut variants = Vec::new();
    let mut iter = body.into_iter().peekable();
    loop {
        while matches!(iter.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '#') {
            iter.next();
            iter.next();
        }
        let Some(tt) = iter.next() else { break };
        let TokenTree::Ident(variant) = tt else {
            return Err(format!(
                "expected variant name in `{enum_name}`, got `{tt}`"
            ));
        };
        match iter.next() {
            None => {
                variants.push(variant.to_string());
                break;
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ',' => {
                variants.push(variant.to_string());
            }
            Some(other) => {
                return Err(format!(
                    "variant `{enum_name}::{variant}` carries data ({other}); only unit variants are supported"
                ));
            }
        }
    }
    Ok(variants)
}

fn count_top_level_fields(body: TokenStream) -> usize {
    let mut fields = 0;
    let mut saw_token = false;
    let mut angle_depth = 0i32;
    for tt in body {
        match tt {
            TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                fields += 1;
                saw_token = false;
                continue;
            }
            _ => {}
        }
        saw_token = true;
    }
    if saw_token {
        fields += 1;
    }
    fields
}

fn gen_serialize(name: &str, shape: &Shape) -> String {
    let body = match shape {
        Shape::Named(fields) => {
            let pairs: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "(::std::string::String::from({f:?}), ::serde::Serialize::to_value(&self.{f}))"
                    )
                })
                .collect();
            format!(
                "::serde::json::Value::Object(::std::vec![{}])",
                pairs.join(", ")
            )
        }
        Shape::Newtype => "::serde::Serialize::to_value(&self.0)".to_string(),
        Shape::UnitEnum(variants) => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| format!("Self::{v} => {v:?},"))
                .collect();
            format!(
                "::serde::json::Value::Str(::std::string::String::from(match self {{ {} }}))",
                arms.join(" ")
            )
        }
    };
    format!(
        "impl ::serde::Serialize for {name} {{\n\
         fn to_value(&self) -> ::serde::json::Value {{ {body} }}\n\
         }}"
    )
}

fn gen_deserialize(name: &str, shape: &Shape) -> String {
    let body = match shape {
        Shape::Named(fields) => {
            let inits: Vec<String> = fields
                .iter()
                .map(|f| format!("{f}: ::serde::Deserialize::from_value(__v.field({f:?})?)?"))
                .collect();
            format!("::std::result::Result::Ok(Self {{ {} }})", inits.join(", "))
        }
        Shape::Newtype => {
            "::std::result::Result::Ok(Self(::serde::Deserialize::from_value(__v)?))".to_string()
        }
        Shape::UnitEnum(variants) => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| {
                    format!("::std::option::Option::Some({v:?}) => ::std::result::Result::Ok(Self::{v}),")
                })
                .collect();
            format!(
                "match __v.as_str() {{ {} _ => ::std::result::Result::Err(\
                 ::serde::json::Error::msg(::std::format!(\
                 \"unknown {name} variant: {{}}\", __v.print()))) }}",
                arms.join(" ")
            )
        }
    };
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
         fn from_value(__v: &::serde::json::Value) -> \
         ::std::result::Result<Self, ::serde::json::Error> {{ {body} }}\n\
         }}"
    )
}
