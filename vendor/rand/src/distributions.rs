//! Uniform range sampling (the `gen_range` machinery).
//!
//! Mirrors upstream rand's structure: a blanket [`SampleRange`] impl over
//! any [`SampleUniform`] element type. The blanket impl matters for type
//! inference — it forces the range literal's type to unify with
//! `gen_range`'s return type, so `let n = rng.gen_range(1..=2); f(2 * n)`
//! infers `n` from the call site just as with the real crate.

use core::ops::{Range, RangeInclusive};

use crate::RngCore;

/// Element types `gen_range` can sample uniformly.
pub trait SampleUniform: Sized {
    /// A uniform sample from `[lo, hi)` (`inclusive = false`) or
    /// `[lo, hi]` (`inclusive = true`). The caller guarantees a non-empty
    /// range.
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self, inclusive: bool) -> Self;
}

/// A range that can produce a single uniform sample of `T`.
pub trait SampleRange<T> {
    /// Draws one uniform sample from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform + PartialOrd> SampleRange<T> for Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "cannot sample empty range");
        T::sample_range(rng, self.start, self.end, false)
    }
}

impl<T: SampleUniform + PartialOrd> SampleRange<T> for RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        assert!(lo <= hi, "cannot sample empty range");
        T::sample_range(rng, lo, hi, true)
    }
}

macro_rules! int_sample_uniform {
    ($($t:ty),* $(,)?) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(
                rng: &mut R,
                lo: Self,
                hi: Self,
                inclusive: bool,
            ) -> Self {
                let span = (hi as i128).wrapping_sub(lo as i128) as u128
                    + u128::from(inclusive);
                let v = (rng.next_u64() as u128) % span;
                ((lo as i128) + v as i128) as $t
            }
        }
    )*};
}

int_sample_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Uniform `f32` in `[0, 1)` from the top 24 bits of one draw.
fn unit_f32<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
    ((rng.next_u64() >> 40) as f32) * (1.0 / (1u64 << 24) as f32)
}

/// Uniform `f64` in `[0, 1)` from the top 53 bits of one draw.
fn unit_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    ((rng.next_u64() >> 11) as f64) * (1.0 / (1u64 << 53) as f64)
}

macro_rules! float_sample_uniform {
    ($t:ty, $unit:ident) => {
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(
                rng: &mut R,
                lo: Self,
                hi: Self,
                _inclusive: bool,
            ) -> Self {
                lo + $unit(rng) * (hi - lo)
            }
        }
    };
}

float_sample_uniform!(f32, unit_f32);
float_sample_uniform!(f64, unit_f64);
