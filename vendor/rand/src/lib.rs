//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to a crates registry, so this
//! vendored crate provides the exact `rand` 0.8 API subset the workspace
//! uses — `StdRng`, `SeedableRng::seed_from_u64`, `Rng::{gen_range,
//! gen_bool}`, and `seq::SliceRandom::{choose, shuffle}` — backed by a
//! deterministic xoshiro256++ generator seeded through SplitMix64.
//!
//! The stream differs from upstream `rand`'s `StdRng` (ChaCha12), but every
//! consumer in this workspace only requires *determinism per seed*, which
//! this implementation guarantees: the same seed always yields the same
//! sequence, on every platform, forever (the algorithm is frozen).

pub mod distributions;
pub mod rngs;
pub mod seq;

pub use rngs::StdRng;

/// Low-level uniform bit source.
pub trait RngCore {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 uniformly random bits (upper half of [`next_u64`]).
    ///
    /// [`next_u64`]: RngCore::next_u64
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Seedable generators (the `seed_from_u64` subset).
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is a pure function of `state`.
    fn seed_from_u64(state: u64) -> Self;
}

/// User-facing sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform sample from `range` (half-open or inclusive, ints or floats).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: distributions::SampleRange<T>,
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Bernoulli sample: `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        debug_assert!((0.0..=1.0).contains(&p), "gen_bool p out of range: {p}");
        ((self.next_u64() >> 11) as f64) * (1.0 / (1u64 << 53) as f64) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 4, "{same} collisions in 64 draws");
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            let v: usize = rng.gen_range(3..7);
            assert!((3..7).contains(&v));
            let w: i32 = rng.gen_range(-5..=5);
            assert!((-5..=5).contains(&w));
            let x: f32 = rng.gen_range(-1.0f32..1.0);
            assert!((-1.0..1.0).contains(&x));
            let y: f64 = rng.gen_range(0.25f64..=0.75);
            assert!((0.25..=0.75).contains(&y));
        }
    }

    #[test]
    fn gen_range_covers_the_support() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut seen = [false; 5];
        for _ in 0..500 {
            seen[rng.gen_range(0usize..5)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(5);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((2_700..3_300).contains(&hits), "{hits}");
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn uniform_mean_is_centered() {
        let mut rng = StdRng::seed_from_u64(6);
        let n = 20_000;
        let sum: f64 = (0..n).map(|_| rng.gen_range(0.0f64..1.0)).sum();
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "{mean}");
    }
}
