//! Slice sampling helpers (`choose`, `shuffle`).

use crate::RngCore;

/// Random selection and permutation on slices.
pub trait SliceRandom {
    /// Element type.
    type Item;

    /// A uniformly random element, or `None` for an empty slice.
    fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;

    /// In-place Fisher–Yates shuffle.
    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
}

impl<T> SliceRandom for [T] {
    type Item = T;

    fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
        if self.is_empty() {
            None
        } else {
            self.get((rng.next_u64() % self.len() as u64) as usize)
        }
    }

    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            let j = (rng.next_u64() % (i as u64 + 1)) as usize;
            self.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{SeedableRng, StdRng};

    #[test]
    fn choose_is_none_on_empty_and_in_range_otherwise() {
        let mut rng = StdRng::seed_from_u64(1);
        let empty: [u8; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
        let pool = [10, 20, 30];
        for _ in 0..100 {
            assert!(pool.contains(pool.choose(&mut rng).unwrap()));
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        // And it actually moved things.
        assert_ne!(v, (0..50).collect::<Vec<_>>());
    }
}
