//! Offline stand-in for the `criterion` crate.
//!
//! Runs each registered benchmark for a fixed, small number of timed
//! iterations and prints a median per-iteration wall-clock time. No
//! statistics, warm-up scheduling, or HTML reports — the point is that
//! `cargo bench` compiles and produces comparable numbers offline, not
//! that it matches criterion's rigor. (The `perf_gate` binary in
//! `mann-bench` is the regression gate; these benches are exploratory.)

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// The benchmark driver handed to `criterion_group!` targets.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.into(),
            sample_size: 10,
        }
    }
}

/// A named set of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Times `f`'s `Bencher::iter` closure.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher {
            samples: Vec::new(),
            sample_size: self.sample_size,
        };
        f(&mut bencher);
        bencher.report(&self.name, &id.into());
        self
    }

    /// Times `f` with an explicit input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut bencher = Bencher {
            samples: Vec::new(),
            sample_size: self.sample_size,
        };
        f(&mut bencher, input);
        bencher.report(&self.name, &id.0);
        self
    }

    /// Ends the group (kept for API compatibility).
    pub fn finish(self) {}
}

/// An identifier combining a function name and a parameter.
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// `function_name/parameter`.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        Self(format!("{}/{parameter}", function_name.into()))
    }

    /// Just the parameter as the identifier.
    pub fn from_parameter(parameter: impl Display) -> Self {
        Self(parameter.to_string())
    }
}

/// Collects timing samples for one benchmark.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Runs `f` repeatedly, recording per-iteration wall-clock times.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // One untimed warm-up iteration.
        black_box(f());
        for _ in 0..self.sample_size {
            let start = Instant::now();
            black_box(f());
            self.samples.push(start.elapsed());
        }
    }

    fn report(&mut self, group: &str, id: &str) {
        if self.samples.is_empty() {
            println!("{group}/{id}: no samples recorded");
            return;
        }
        self.samples.sort_unstable();
        let median = self.samples[self.samples.len() / 2];
        println!(
            "{group}/{id}: median {median:?} over {} samples",
            self.samples.len()
        );
    }
}

/// Declares a function running the listed benchmark targets in order.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
